//! Online model adaptation: a blastn interference model trained on local
//! storage is deployed on a host whose storage moved behind a congested
//! iSCSI path. Watch the prediction error surge, the drift detector fire,
//! and the periodic rebuilds pull the error back down — the paper's
//! Fig 7 scenario.
//!
//! ```text
//! cargo run --release --example model_adaptation
//! ```

use tracon::dcsim::experiments::fig7::{run, Fig7Config};

fn main() {
    let cfg = Fig7Config {
        initial_points: 300,
        stream_points: 360,
        rebuild_every: 120,
        time_scale: 0.25,
        seed: 0xADA97,
    };
    println!(
        "training initial blastn models on {} local-storage observations...",
        cfg.initial_points
    );
    let fig = run(&cfg);

    println!(
        "\ninitial training error: runtime {:.1}%, IOPS {:.1}%",
        fig.initial_runtime_error * 100.0,
        fig.initial_iops_error * 100.0
    );
    println!("\nstorage switched to iSCSI; streaming fresh observations:");
    println!(
        "{:>8} {:>18} {:>18}    (control run on local storage stays flat)",
        "obs", "runtime error", "IOPS error"
    );
    for (a, c) in fig.adapted.iter().zip(&fig.control) {
        let marker = if a.runtime_error > 0.3 {
            "  <- drifted"
        } else {
            ""
        };
        println!(
            "{:>8} {:>17.1}% {:>17.1}%    control: {:.1}% / {:.1}%{}",
            a.index,
            a.runtime_error * 100.0,
            a.iops_error * 100.0,
            c.runtime_error * 100.0,
            c.iops_error * 100.0,
            marker
        );
    }
    let (early_rt, early_io) = fig.early_error();
    let (late_rt, late_io) = fig.late_error();
    println!(
        "\nsummary: error surged to {:.0}% (runtime) / {:.0}% (IOPS) after the switch,",
        early_rt * 100.0,
        early_io * 100.0
    );
    println!(
        "then {} rebuild(s) on fresh data brought it back to {:.0}% / {:.0}%.",
        fig.rebuilds,
        late_rt * 100.0,
        late_io * 100.0
    );
}
