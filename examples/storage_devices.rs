//! Storage-device sensitivity: the same co-located workloads on a SATA
//! disk, a RAID-0 stripe, an SSD, and a congested iSCSI path — the
//! paper's future-work question, answered with the extension experiment.
//!
//! ```text
//! cargo run --release --example storage_devices
//! ```

use tracon::dcsim::experiments::ext_storage;
use tracon::vmsim::{apps, Benchmark, Engine, HostConfig};

fn main() {
    // Headline sweep: Table-1-style cells and scheduler room per device.
    let fig = ext_storage::run(0.25, 7);
    fig.print();

    // A closer look at one pairing across devices.
    println!("\nvideo + dedup on each device (runtime and served IOPS of video):");
    let video = Benchmark::Video.model().time_scaled(0.25);
    let dedup = Benchmark::Dedup.model().time_scaled(0.25).as_endless();
    for (name, host) in [
        ("SATA disk", HostConfig::testbed()),
        ("RAID-0 x4", HostConfig::class("raid0x4")),
        ("SSD", HostConfig::class("ssd")),
        ("iSCSI", HostConfig::class("iscsi")),
    ] {
        let engine = Engine::new(host);
        let solo = engine.solo_run(&video, 1);
        let co = engine.co_run(&video, &dedup, 2);
        println!(
            "  {name:10} solo {:6.0} s @ {:5.0} IOPS | with dedup {:6.0} s @ {:5.0} IOPS ({:4.1}x)",
            solo.runtime[0],
            solo.iops[0],
            co.runtime[0],
            co.iops[0],
            co.runtime[0] / solo.runtime[0]
        );
    }

    // The Table 1 killer cell, re-run on the SSD: the motivating
    // interference disappears with the seek.
    let engine = Engine::new(HostConfig::class("ssd"));
    let sr = apps::seq_read();
    let solo = engine.solo_run(&sr, 3).runtime[0];
    let io_high = engine
        .co_run(&sr, &apps::synthetic(0.0, 1.0, 1.0), 4)
        .runtime[0];
    println!(
        "\nSeqRead vs I/O-high on SSD: {:.2}x (was ~7.5x on the SATA disk, 10.23x in the paper)",
        io_high / solo
    );
    println!("An interference-aware scheduler buys little on seek-free devices —");
    println!("TRACON's value is tied to storage whose positioning cost amplifies mixing.");
}
