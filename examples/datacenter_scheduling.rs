//! Dynamic data-center scheduling: Poisson arrivals on a 32-machine
//! cluster for two hours, comparing FIFO, MIOS, MIBS_8, and MIX_8 across
//! arrival rates — a miniature of the paper's Figs 9-11.
//!
//! ```text
//! cargo run --release --example datacenter_scheduling
//! ```

use tracon::core::Objective;
use tracon::dcsim::arrival::{poisson_trace, WorkloadMix};
use tracon::dcsim::{SchedulerKind, Simulation, Testbed, TestbedConfig};

fn main() {
    println!("building testbed...");
    let testbed = Testbed::build(&TestbedConfig {
        time_scale: 0.25,
        ..TestbedConfig::full()
    });

    let machines = 32;
    let horizon = 2.0 * 3600.0;
    let schedulers = [
        SchedulerKind::Fifo,
        SchedulerKind::Mios,
        SchedulerKind::Mibs(8),
        SchedulerKind::Mix(8),
    ];

    println!(
        "\n{} machines x 2 VMs, medium I/O mix, {} h horizon",
        machines,
        horizon / 3600.0
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "lambda", "scheduler", "completed", "mean wait", "mean runtime"
    );
    for lambda in [10.0, 25.0, 40.0] {
        let trace = poisson_trace(lambda, horizon, WorkloadMix::Medium, 7);
        for kind in schedulers {
            let r = Simulation::new(&testbed, machines, kind)
                .with_objective(Objective::MinRuntime)
                .run(&trace, Some(horizon));
            let mean_rt = if r.completed > 0 {
                r.total_runtime / r.completed as f64
            } else {
                0.0
            };
            println!(
                "{:>10.0} {:>10} {:>12} {:>11.0}s {:>11.0}s",
                lambda, r.scheduler, r.completed, r.mean_wait, mean_rt
            );
        }
        println!();
    }
    println!("At low arrival rates every scheduler keeps up (the cluster is mostly idle);");
    println!("as the rate approaches capacity, placement quality shows up first in mean");
    println!("runtime and then in completed-task throughput.");
}
