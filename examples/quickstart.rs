//! Quickstart: build the testbed, train TRACON's models, and schedule a
//! batch of data-intensive tasks with MIBS versus FIFO.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tracon::dcsim::arrival::{static_batch, WorkloadMix};
use tracon::dcsim::{io_boost, speedup, SchedulerKind, Simulation, Testbed, TestbedConfig};

fn main() {
    // 1. Build the testbed: profile the eight benchmarks against the 125
    //    synthetic calibration workloads, train the nonlinear interference
    //    models, and measure the pairwise interference matrix.
    println!("building testbed (profiling campaign + model training)...");
    let testbed = Testbed::build(&TestbedConfig {
        time_scale: 0.25,
        ..TestbedConfig::full()
    });

    // 2. Inspect what the testbed learned: how badly does each benchmark
    //    suffer next to the most I/O-intensive neighbour (video)?
    println!("\nmeasured slowdown next to `video` (vs running alone):");
    let video = testbed
        .perf
        .names
        .iter()
        .position(|n| n == "video")
        .expect("video is profiled");
    for (i, name) in testbed.perf.names.iter().enumerate() {
        println!("  {name:10} {:5.2}x", testbed.perf.slowdown(i, video));
    }

    // 3. Ask the prediction module the same question; it has never seen
    //    these exact pairings — it generalizes from the synthetic profiles.
    println!("\nNLM-predicted runtime of `dedup` next to each neighbour:");
    for name in testbed.perf.names.clone() {
        let predicted = testbed.predictor.predict_pair_runtime("dedup", &name);
        println!("  next to {name:10} {predicted:7.1} s");
    }

    // 4. Schedule a batch of 32 mixed tasks onto 16 machines (two VMs
    //    each) and compare MIBS against the FIFO baseline.
    let trace = static_batch(32, WorkloadMix::Medium, 42);
    let fifo = Simulation::new(&testbed, 16, SchedulerKind::Fifo).run(&trace, None);
    let mibs = Simulation::new(&testbed, 16, SchedulerKind::Mibs(32)).run(&trace, None);

    println!("\nscheduling 32 tasks on 16 machines (medium I/O mix):");
    println!(
        "  FIFO    total runtime {:8.0} s   total IOPS {:7.1}",
        fifo.total_runtime, fifo.total_iops
    );
    println!(
        "  MIBS    total runtime {:8.0} s   total IOPS {:7.1}",
        mibs.total_runtime, mibs.total_iops
    );
    println!(
        "  speedup {:.2}x, IOBoost {:.2}x",
        speedup(&fifo, &mibs),
        io_boost(&fifo, &mibs)
    );
}
