//! Interference profiling on the virtualized testbed: reproduce the
//! paper's motivating Table 1 measurement and inspect what the monitor
//! observes while two data-intensive applications collide on one host.
//!
//! ```text
//! cargo run --release --example interference_profiling
//! ```

use tracon::vmsim::{apps, Engine, HostConfig};

fn main() {
    let engine = Engine::new(HostConfig::testbed()).with_sampling(30.0);

    // --- Table 1: Calc and SeqRead against the four synthetic neighbours.
    println!("Table 1 reproduction (normalized runtime of App1):");
    for (name, app1) in [("Calc", apps::calc()), ("SeqRead", apps::seq_read())] {
        let solo = engine.solo_run(&app1, 1).runtime[0];
        print!("  {name:8}");
        for (bg_name, bg) in apps::table1_backgrounds() {
            let out = engine.co_run(&app1, &bg, 2);
            print!("  {bg_name}: {:5.2}x", out.runtime[0] / solo);
        }
        println!();
    }

    // --- Two real benchmarks colliding: watch the monitor's samples.
    println!("\nvideo encoding vs dedup on one host (monitor samples):");
    let video = apps::Benchmark::Video.model();
    let dedup = apps::Benchmark::Dedup.model();
    let solo_video = engine.solo_run(&video, 3);
    let out = engine.co_run(&video, &dedup, 4);
    println!(
        "  video solo: {:.0} s at {:.0} IOPS; next to dedup: {:.0} s at {:.0} IOPS ({:.1}x slower)",
        solo_video.runtime[0],
        solo_video.iops[0],
        out.runtime[0],
        out.iops[0],
        out.runtime[0] / solo_video.runtime[0]
    );
    println!("  first monitor samples (30 s interval):");
    println!(
        "  {:>6} {:>24} {:>24} {:>8}",
        "t (s)", "video [r/s w/s cpu]", "dedup [r/s w/s cpu]", "dom0"
    );
    for s in out.samples.iter().take(6) {
        println!(
            "  {:6.0} [{:6.1} {:5.1} {:4.2}]      [{:6.1} {:5.1} {:4.2}]      {:6.3}",
            s.time,
            s.vms[0].read_rps,
            s.vms[0].write_rps,
            s.vms[0].cpu_util,
            s.vms[1].read_rps,
            s.vms[1].write_rps,
            s.vms[1].cpu_util,
            s.dom0_total,
        );
    }

    // --- The same pair on a friendlier arrangement: video next to email.
    let email = apps::Benchmark::Email.model();
    let good = engine.co_run(&video, &email, 5);
    println!(
        "\n  video next to email instead: {:.0} s ({:.1}x) — the pairing the scheduler hunts for",
        good.runtime[0],
        good.runtime[0] / solo_video.runtime[0]
    );
}
