//! # TRACON
//!
//! A from-scratch Rust reproduction of **"TRACON: Interference-Aware
//! Scheduling for Data-Intensive Applications in Virtualized
//! Environments"** (Chiang & Huang, SC'11).
//!
//! TRACON is a Task and Resource Allocation CONtrol framework for
//! virtualized data centers. Co-located data-intensive applications
//! interfere through the shared I/O path far more severely than through
//! the CPU (the paper measures up to 16x slowdowns); TRACON mitigates
//! this with three components:
//!
//! 1. **Interference prediction models** ([`core::model`]) that map the
//!    resource characteristics of two co-located VMs to an application's
//!    runtime or IOPS — a weighted-mean baseline (PCA + 3-NN), a linear
//!    model, and the paper's nonlinear (quadratic, Gauss-Newton,
//!    stepwise-AIC) model.
//! 2. **Interference-aware schedulers** ([`core::sched`]) — MIOS
//!    (online), MIBS (batch Min-Min pairing), and MIX (best-first-job
//!    batch) — that place tasks where the models predict the least
//!    interference.
//! 3. A **task & resource monitor** ([`core::monitor`]) that tracks
//!    prediction error and rebuilds models online when the environment
//!    drifts.
//!
//! This crate is a facade over the workspace:
//!
//! * [`stats`] ([`tracon_stats`]) — the statistics substrate (QR,
//!   Jacobi eigen, PCA, OLS, Gauss-Newton, stepwise AICc, k-NN,
//!   distributions, drift detection), all implemented from scratch.
//! * [`vmsim`] ([`tracon_vmsim`]) — the virtualized-host interference
//!   testbed that substitutes for the paper's Xen hardware: a credit-
//!   scheduler CPU model, a driver-domain I/O path, a mechanical-disk
//!   model with stream-mixing interference, and behaviour models for the
//!   paper's eight data-intensive benchmarks.
//! * [`core`] ([`tracon_core`]) — the paper's contribution: models,
//!   monitor, predictor, schedulers.
//! * [`dcsim`] ([`tracon_dcsim`]) — the discrete-event data-center
//!   simulator (8 to 10,000 machines) and one experiment driver per
//!   table/figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```no_run
//! use tracon::dcsim::{SchedulerKind, Simulation, Testbed, TestbedConfig};
//! use tracon::dcsim::arrival::{static_batch, WorkloadMix};
//!
//! // Profile the benchmarks, train the NLM models, measure the pair matrix.
//! let testbed = Testbed::build(&TestbedConfig::full());
//!
//! // Schedule a batch of 32 tasks onto 16 machines with MIBS vs FIFO.
//! let trace = static_batch(32, WorkloadMix::Medium, 42);
//! let fifo = Simulation::new(&testbed, 16, SchedulerKind::Fifo).run(&trace, None);
//! let mibs = Simulation::new(&testbed, 16, SchedulerKind::Mibs(32)).run(&trace, None);
//! println!("speedup over FIFO: {:.2}", tracon::dcsim::speedup(&fifo, &mibs));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

#![warn(missing_docs)]

pub use tracon_core as core;
pub use tracon_dcsim as dcsim;
pub use tracon_stats as stats;
pub use tracon_vmsim as vmsim;

pub use tracon_core::{
    Characteristics, InterferenceModel, ModelKind, Objective, Predictor, Response, TrainingData,
};
pub use tracon_dcsim::{SchedulerKind, SimResult, Simulation, Testbed, TestbedConfig};
pub use tracon_vmsim::{AppModel, Benchmark, Engine, HostConfig};
