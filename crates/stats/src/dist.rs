//! Random sampling utilities: Gaussian (Box-Muller), Poisson (Knuth /
//! normal approximation), exponential inter-arrival times, and the
//! Gaussian-over-ranks discrete sampler the paper uses to build light,
//! medium, and heavy I/O workload mixes.

use rand::Rng;

/// Samples a standard normal via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std_dev^2)`.
///
/// # Panics
/// Panics when `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "negative std_dev");
    mean + std_dev * standard_normal(rng)
}

/// Samples a Poisson-distributed count with the given mean.
///
/// Uses Knuth's multiplication method for small means and a clamped normal
/// approximation for large means (lambda > 30), which is plenty accurate
/// for arrival batching.
///
/// # Panics
/// Panics when `lambda` is negative.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "negative lambda");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Defensive bound; probability of reaching this is vanishing.
        if k > 10_000 {
            return k;
        }
    }
}

/// Samples an exponential inter-arrival time with the given `rate`
/// (events per unit time). A Poisson arrival process with rate `lambda`
/// has `Exp(lambda)` gaps between events.
///
/// # Panics
/// Panics when `rate` is not positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples an integer rank in `[1, n_ranks]` from a Gaussian with the given
/// mean and standard deviation, rounding and clamping to the valid range.
///
/// The paper builds its light / medium / heavy I/O mixes by sampling the
/// IOPS rank of the next application from Gaussians with means 2.5, 4.0,
/// and 5.5 over the 8 ranked benchmarks.
pub fn gaussian_rank<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    n_ranks: usize,
) -> usize {
    assert!(n_ranks >= 1);
    let x = normal(rng, mean, std_dev);
    (x.round() as i64).clamp(1, n_ranks as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.05, "mean = {}", mean(&xs));
        assert!((std_dev(&xs) - 2.0).abs() < 0.05, "sd = {}", std_dev(&xs));
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50_000).map(|_| poisson(&mut rng, 3.0) as f64).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.05);
        // Poisson variance equals the mean.
        assert!((std_dev(&xs).powi(2) - 3.0).abs() < 0.15);
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| poisson(&mut rng, 200.0) as f64)
            .collect();
        assert!((mean(&xs) - 200.0).abs() < 1.0);
        assert!((std_dev(&xs).powi(2) - 200.0).abs() < 10.0);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, 4.0)).collect();
        assert!((mean(&xs) - 0.25).abs() < 0.01);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gaussian_rank_in_bounds_and_centered() {
        let mut rng = StdRng::seed_from_u64(6);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| gaussian_rank(&mut rng, 4.0, 1.5, 8) as f64)
            .collect();
        assert!(xs.iter().all(|&x| (1.0..=8.0).contains(&x)));
        assert!((mean(&xs) - 4.0).abs() < 0.1, "mean = {}", mean(&xs));
    }

    #[test]
    fn gaussian_rank_mixes_are_ordered() {
        // Light (2.5), medium (4.0), heavy (5.5) mixes should have ordered
        // average I/O ranks - the property the experiments rely on.
        let mut rng = StdRng::seed_from_u64(7);
        let avg = |mean_rank: f64, rng: &mut StdRng| -> f64 {
            let xs: Vec<f64> = (0..10_000)
                .map(|_| gaussian_rank(rng, mean_rank, 1.5, 8) as f64)
                .collect();
            mean(&xs)
        };
        let light = avg(2.5, &mut rng);
        let medium = avg(4.0, &mut rng);
        let heavy = avg(5.5, &mut rng);
        assert!(light < medium && medium < heavy);
    }
}
