//! Stepwise model selection scored by the Akaike information criterion.
//!
//! The paper uses a bidirectional stepwise algorithm (Draper & Smith) with
//! AIC scoring to choose which of the candidate terms enter the linear and
//! nonlinear interference models: terms are added or removed one at a time
//! and the move with the best AIC is kept, until no move improves.

use crate::matrix::Matrix;
use crate::ols;

/// Akaike information criterion for a Gaussian-error least-squares model.
///
/// For least squares with unknown error variance the maximized
/// log-likelihood reduces (up to an additive constant that cancels when
/// comparing models on the same data) to `-n/2 * ln(SSE/n)`, giving
/// `AIC = n * ln(SSE / n) + 2k` where `k` counts the free parameters
/// (coefficients plus the error variance). Lower is better.
pub fn aic_gaussian(sse: f64, n: usize, k: usize) -> f64 {
    assert!(n > 0, "AIC needs at least one observation");
    // Guard against log(0) for perfect fits: clamp to a tiny positive SSE.
    let mean_sq = (sse / n as f64).max(1e-300);
    n as f64 * mean_sq.ln() + 2.0 * (k as f64 + 1.0)
}

/// Small-sample-corrected AIC (AICc, Burnham & Anderson — the reference
/// the paper cites for the accuracy/flexibility trade-off).
///
/// `AICc = AIC + 2k(k+1)/(n-k-1)`; the correction term diverges as the
/// parameter count approaches the sample size, which is exactly the
/// regime where plain AIC lets a quadratic basis overfit a small
/// profiling set. Returns infinity when `n <= k + 2` (such a model can
/// never be selected).
pub fn aicc_gaussian(sse: f64, n: usize, k: usize) -> f64 {
    let kk = k as f64 + 1.0; // + error variance
    if (n as f64) <= kk + 2.0 {
        return f64::INFINITY;
    }
    aic_gaussian(sse, n, k) + 2.0 * kk * (kk + 1.0) / (n as f64 - kk - 1.0)
}

/// Result of a stepwise search.
#[derive(Debug, Clone)]
pub struct StepwiseFit {
    /// Indices of the selected candidate columns (in the caller's space).
    pub selected: Vec<usize>,
    /// Intercept of the chosen model.
    pub intercept: f64,
    /// Coefficients aligned with `selected`.
    pub coefficients: Vec<f64>,
    /// AIC of the chosen model.
    pub aic: f64,
    /// SSE of the chosen model on the training data.
    pub sse: f64,
    /// Number of stepwise moves performed.
    pub steps: usize,
}

impl StepwiseFit {
    /// Predicts the response for a full candidate row (the same column
    /// layout the search was given; unselected columns are ignored).
    pub fn predict(&self, full_row: &[f64]) -> f64 {
        let mut y = self.intercept;
        for (c, &j) in self.coefficients.iter().zip(&self.selected) {
            y += c * full_row[j];
        }
        y
    }
}

/// Options for the stepwise search.
#[derive(Debug, Clone, Copy)]
pub struct StepwiseOptions {
    /// Upper bound on selected terms (keeps models parsimonious and the
    /// search bounded). Defaults to 24.
    pub max_terms: usize,
    /// Maximum add/remove moves before giving up. Defaults to 200.
    pub max_steps: usize,
}

impl Default for StepwiseOptions {
    fn default() -> Self {
        StepwiseOptions {
            max_terms: 24,
            max_steps: 200,
        }
    }
}

/// `(intercept, coefficients, sse, aicc)` of a candidate subset fit.
type SubsetFit = (f64, Vec<f64>, f64, f64);

fn fit_subset(x: &Matrix, y: &[f64], subset: &[usize]) -> Option<SubsetFit> {
    // Intercept-only model when the subset is empty.
    let n = y.len();
    if subset.is_empty() {
        let ybar = y.iter().sum::<f64>() / n as f64;
        let sse: f64 = y.iter().map(|v| (v - ybar) * (v - ybar)).sum();
        return Some((ybar, Vec::new(), sse, aicc_gaussian(sse, n, 1)));
    }
    let sub = x.select_columns(subset);
    let fit = ols::fit_with_intercept(&sub, y).ok()?;
    if !fit.coefficients.iter().all(|c| c.is_finite()) {
        return None;
    }
    let k = subset.len() + 1; // + intercept
    Some((
        fit.coefficients[0],
        fit.coefficients[1..].to_vec(),
        fit.sse,
        aicc_gaussian(fit.sse, n, k),
    ))
}

/// Bidirectional stepwise selection over the columns of `x`, scored by
/// small-sample-corrected AIC (AICc).
///
/// Starts from the empty (intercept-only) model; at each step evaluates
/// every single-column addition and every single-column removal and applies
/// the best-scoring move if it improves the current AIC.
///
/// # Panics
/// Panics when `x` has no rows or `y` length mismatches.
pub fn stepwise_aic(x: &Matrix, y: &[f64], opts: StepwiseOptions) -> StepwiseFit {
    assert!(x.rows() > 0, "stepwise on empty data");
    assert_eq!(x.rows(), y.len(), "design/response mismatch");
    let p = x.cols();

    let (mut intercept, mut coeffs, mut sse, mut aic) =
        fit_subset(x, y, &[]).expect("intercept-only fit cannot fail");
    let mut selected: Vec<usize> = Vec::new();
    let mut steps = 0usize;

    loop {
        if steps >= opts.max_steps {
            break;
        }
        // (aicc, subset, intercept, coefficients, sse) of the best move.
        #[allow(clippy::type_complexity)]
        let mut best: Option<(f64, Vec<usize>, f64, Vec<f64>, f64)> = None;

        // Candidate additions.
        if selected.len() < opts.max_terms {
            for j in 0..p {
                if selected.contains(&j) {
                    continue;
                }
                let mut cand = selected.clone();
                cand.push(j);
                if let Some((ic, cf, s, a)) = fit_subset(x, y, &cand) {
                    if a < aic - 1e-9 && best.as_ref().is_none_or(|b| a < b.0) {
                        best = Some((a, cand, ic, cf, s));
                    }
                }
            }
        }
        // Candidate removals.
        for (i, _) in selected.iter().enumerate() {
            let mut cand = selected.clone();
            cand.remove(i);
            if let Some((ic, cf, s, a)) = fit_subset(x, y, &cand) {
                if a < aic - 1e-9 && best.as_ref().is_none_or(|b| a < b.0) {
                    best = Some((a, cand, ic, cf, s));
                }
            }
        }

        match best {
            Some((a, cand, ic, cf, s)) => {
                aic = a;
                selected = cand;
                intercept = ic;
                coeffs = cf;
                sse = s;
                steps += 1;
            }
            None => break,
        }
    }

    StepwiseFit {
        selected,
        intercept,
        coefficients: coeffs,
        aic,
        sse,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn aic_penalizes_parameters() {
        // Same SSE, more parameters -> worse (higher) AIC.
        let a1 = aic_gaussian(10.0, 100, 2);
        let a2 = aic_gaussian(10.0, 100, 5);
        assert!(a2 > a1);
    }

    #[test]
    fn aic_rewards_fit() {
        let a1 = aic_gaussian(10.0, 100, 3);
        let a2 = aic_gaussian(5.0, 100, 3);
        assert!(a2 < a1);
    }

    #[test]
    fn selects_true_variables() {
        // y depends on columns 0 and 2 only; columns 1 and 3 are noise.
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 2.0 + 3.0 * r[0] - 4.0 * r[2] + rng.gen_range(-0.05..0.05))
            .collect();
        let x = Matrix::from_rows(&rows);
        let fit = stepwise_aic(&x, &y, StepwiseOptions::default());
        let mut sel = fit.selected.clone();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 2], "selected {sel:?}");
        assert!((fit.intercept - 2.0).abs() < 0.05);
    }

    #[test]
    fn predict_consistent_with_selection() {
        // Enough points that AICc does not veto single-variable models.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64, ((i * 7) % 11) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 10.0 + 2.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let fit = stepwise_aic(&x, &y, StepwiseOptions::default());
        // Prediction should reproduce the generating function regardless of
        // which (sufficient) subset was chosen.
        assert!((fit.predict(&[6.0, 3.0]) - 22.0).abs() < 1e-6);
    }

    #[test]
    fn pure_noise_keeps_model_small() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let fit = stepwise_aic(&Matrix::from_rows(&rows), &y, StepwiseOptions::default());
        assert!(
            fit.selected.len() <= 2,
            "noise fit selected {:?}",
            fit.selected
        );
    }

    #[test]
    fn respects_max_terms() {
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        // Response uses all 8 columns.
        let y: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>()).collect();
        let opts = StepwiseOptions {
            max_terms: 3,
            max_steps: 100,
        };
        let fit = stepwise_aic(&Matrix::from_rows(&rows), &y, opts);
        assert!(fit.selected.len() <= 3);
    }

    #[test]
    fn collinear_duplicate_column_chosen_once() {
        let mut rng = StdRng::seed_from_u64(21);
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|_| {
                let a = rng.gen_range(-1.0..1.0);
                vec![a, a] // identical columns
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 3.0 * r[0] + rng.gen_range(-0.01..0.01))
            .collect();
        let fit = stepwise_aic(&Matrix::from_rows(&rows), &y, StepwiseOptions::default());
        assert_eq!(
            fit.selected.len(),
            1,
            "should keep only one of two identical columns"
        );
    }
}
