//! Dense row-major matrix type used throughout the statistics substrate.
//!
//! The modeling workloads in TRACON are small (design matrices of a few
//! hundred rows and at most ~45 columns for the quadratic basis), so a
//! simple contiguous `Vec<f64>` representation with explicit loops is both
//! fast enough and easy to audit. All higher-level routines (QR, Cholesky,
//! eigen decomposition, PCA, OLS, Gauss-Newton) are built on this type.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major flat slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a matrix from a vector of rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        assert!(cols > 0, "cannot build a matrix with zero columns");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a column vector (n x 1) from a slice.
    pub fn col_vector(data: &[f64]) -> Self {
        Matrix {
            rows: data.len(),
            cols: 1,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order keeps the inner loop walking contiguous memory in
        // both `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Computes `self^T * self` (the Gram matrix), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Computes `self^T * v` for a vector with `rows` entries.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * w;
            }
        }
        out
    }

    /// Returns a new matrix keeping only the listed columns, in order.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
                out[(r, j)] = self[(r, c)];
            }
        }
        out
    }

    /// Returns a new matrix keeping only the listed rows, in order.
    #[allow(clippy::needless_range_loop)]
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Appends a column on the right, returning a new matrix.
    pub fn hstack_col(&self, col: &[f64]) -> Matrix {
        assert_eq!(col.len(), self.rows, "hstack_col length mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out[(r, self.cols)] = col[r];
        }
        out
    }

    /// Scales every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Elementwise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(10) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(10) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 10 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert!(c.approx_eq(
            &Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]),
            1e-12
        ));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.5, 3.0], vec![0.0, 4.0, 9.5]]);
        let i = Matrix::identity(3);
        assert!(a.matmul(&i).approx_eq(&a, 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = vec![2.0, -1.0];
        let got = a.matvec(&v);
        let want = a.matmul(&Matrix::col_vector(&v));
        for (i, g) in got.iter().enumerate() {
            assert!((g - want[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn t_matvec_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = vec![1.0, -2.0, 0.5];
        let got = a.t_matvec(&v);
        let want = a.transpose().matvec(&v);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn select_columns_and_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let c = m.select_columns(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert_eq!(c.row(1), &[6.0, 4.0]);
        let r = m.select_rows(&[1]);
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn hstack_col_appends() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let h = m.hstack_col(&[9.0, 8.0]);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h[(0, 1)], 9.0);
        assert_eq!(h[(1, 1)], 8.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert!((&a + &b).approx_eq(&Matrix::from_rows(&[vec![4.0, 7.0]]), 0.0));
        assert!((&b - &a).approx_eq(&Matrix::from_rows(&[vec![2.0, 3.0]]), 0.0));
        let mut c = a.clone();
        c.scale_in_place(-2.0);
        assert!(c.approx_eq(&Matrix::from_rows(&[vec![-2.0, -4.0]]), 0.0));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m[(1, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }
}
