//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA (used by TRACON's weighted-mean model) only needs eigenpairs of small
//! covariance matrices (8x8 for the two-VM characteristics space), for which
//! Jacobi rotation is simple, robust, and accurate.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `a = V diag(values) V^T`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, matching `values` order.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix using cyclic Jacobi sweeps.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is assumed; only the upper triangle
/// is trusted (the matrix is symmetrized internally).
pub fn sym_eigen(a: &Matrix) -> SymEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eigen requires a square matrix");
    // Work on a symmetrized copy to be robust to tiny asymmetries from
    // accumulated floating-point error in covariance computations.
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    let mut v = Matrix::identity(n);

    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        let scale = m.max_abs().max(1e-300);
        if off.sqrt() <= 1e-14 * scale * n as f64 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan(phi) for the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation: A <- J^T A J for the (p, q) plane.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending by eigenvalue.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.0],
            vec![-2.0, 0.0, 5.0, -1.0],
            vec![0.5, 1.0, -1.0, 2.0],
        ]);
        let e = sym_eigen(&a);
        // V diag V^T == A
        let n = 4;
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        let recon = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        assert!(
            recon.approx_eq(&a, 1e-8),
            "reconstruction failed: {recon:?}"
        );
        // Columns orthonormal.
        for i in 0..n {
            for j in 0..n {
                let ci = e.vectors.col(i);
                let cj = e.vectors.col(j);
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot(&ci, &cj) - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.2, 0.1],
            vec![0.2, 7.0, 0.3],
            vec![0.1, 0.3, 4.0],
        ]);
        let e = sym_eigen(&a);
        assert!(e.values[0] >= e.values[1] && e.values[1] >= e.values[2]);
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_rows(&[
            vec![2.5, -0.4, 0.9],
            vec![-0.4, 1.5, 0.2],
            vec![0.9, 0.2, 3.0],
        ]);
        let e = sym_eigen(&a);
        let trace = 2.5 + 1.5 + 3.0;
        let sum: f64 = e.values.iter().sum();
        assert!((sum - trace).abs() < 1e-9);
    }

    #[test]
    fn handles_rank_deficient() {
        // Rank-1 outer product: one nonzero eigenvalue = |v|^2.
        let v = [1.0, 2.0, 3.0];
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = v[i] * v[j];
            }
        }
        let e = sym_eigen(&a);
        assert!((e.values[0] - 14.0).abs() < 1e-9);
        assert!(e.values[1].abs() < 1e-9);
        assert!(e.values[2].abs() < 1e-9);
    }
}
