//! # tracon-stats
//!
//! The statistics and linear-algebra substrate for the TRACON
//! reproduction. Everything TRACON's interference models need is
//! implemented here from scratch:
//!
//! * [`matrix`] — dense row-major matrices and vector helpers,
//! * [`correlation`] — Pearson and Spearman correlation,
//! * [`decomp`] — Householder QR and Cholesky, least squares,
//! * [`eigen`] — cyclic Jacobi symmetric eigendecomposition,
//! * [`pca`] — principal component analysis (for the weighted-mean model),
//! * [`ols`] — ordinary least squares (for the linear model),
//! * [`gauss_newton`] — damped Gauss-Newton (for the nonlinear model),
//! * [`stepwise`] — bidirectional stepwise selection scored by AIC,
//! * [`knn`] — k-nearest-neighbour inverse-distance regression,
//! * [`descriptive`] — means, variances, percentiles, scalers,
//! * [`dist`] — Gaussian / Poisson / exponential sampling,
//! * [`online`] — Welford accumulators, sliding windows, drift detection,
//! * [`queueing`] — M/M/1 shared-bandwidth contention factors (the
//!   network resource dimension's analytic interference model).
//!
//! The crate is deliberately dependency-light (only `rand` and `serde`)
//! and sized for TRACON's workloads: design matrices of a few hundred
//! rows and at most ~45 columns (the full degree-2 expansion of the eight
//! controlled variables).

#![warn(missing_docs)]

pub mod correlation;
pub mod decomp;
pub mod descriptive;
pub mod dist;
pub mod eigen;
pub mod gauss_newton;
pub mod knn;
pub mod matrix;
pub mod ols;
pub mod online;
pub mod pca;
pub mod queueing;
pub mod stepwise;

pub use correlation::{pearson, spearman};
pub use decomp::{lstsq, solve, Cholesky, DecompError, Qr};
pub use descriptive::{mean, median, percentile, std_dev, summarize, variance, Scaler, Summary};
pub use eigen::{sym_eigen, SymEigen};
pub use gauss_newton::{GaussNewtonFit, GaussNewtonOptions, LinearInParams, ParametricModel};
pub use knn::KnnRegressor;
pub use matrix::{dot, euclidean_distance, norm2, Matrix};
pub use ols::OlsFit;
pub use online::{DriftDetector, DriftKind, SlidingWindow, Welford};
pub use pca::Pca;
pub use queueing::{mm1_slowdown, mm1_throughput_factor};
pub use stepwise::{aic_gaussian, aicc_gaussian, stepwise_aic, StepwiseFit, StepwiseOptions};
