//! k-nearest-neighbour inverse-distance regression.
//!
//! TRACON's weighted-mean model (WMM) predicts a response by finding the
//! three nearest profiled data points in PCA space and averaging their
//! responses weighted by the reciprocal of the Euclidean distance.

use crate::matrix::euclidean_distance;

/// A k-NN inverse-distance-weighted regressor over fixed training points.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    points: Vec<Vec<f64>>,
    responses: Vec<f64>,
    k: usize,
}

impl KnnRegressor {
    /// Builds a regressor over `points` (feature rows) and their `responses`.
    ///
    /// # Panics
    /// Panics when inputs are empty, mismatched, ragged, or `k == 0`.
    pub fn new(points: Vec<Vec<f64>>, responses: Vec<f64>, k: usize) -> Self {
        assert!(!points.is_empty(), "knn with no training points");
        assert_eq!(points.len(), responses.len(), "points/responses mismatch");
        assert!(k >= 1, "k must be at least 1");
        let d = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == d),
            "ragged training points"
        );
        KnnRegressor {
            points,
            responses,
            k,
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no training points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Predicts the response at `query` as the inverse-distance-weighted
    /// mean of the `k` nearest training points. An exact match (distance 0)
    /// returns that point's response directly.
    pub fn predict(&self, query: &[f64]) -> f64 {
        let k = self.k.min(self.points.len());
        // Partial selection of the k smallest distances. n is small
        // (hundreds of profile points) so a simple scan with a bounded
        // insertion buffer is fastest in practice.
        let mut nearest: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        for (i, p) in self.points.iter().enumerate() {
            let d = euclidean_distance(query, p);
            if nearest.len() < k {
                nearest.push((d, i));
                nearest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            } else if d < nearest[k - 1].0 {
                nearest[k - 1] = (d, i);
                nearest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            }
        }
        // Exact hits: avoid division by zero and return the mean response
        // of *all* coincident training points (repeated observations of
        // the same configuration must average, not pick one arbitrarily).
        if nearest[0].0 < 1e-12 {
            let mut sum = 0.0;
            let mut count = 0usize;
            for (i, p) in self.points.iter().enumerate() {
                if euclidean_distance(query, p) < 1e-12 {
                    sum += self.responses[i];
                    count += 1;
                }
            }
            return sum / count as f64;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for &(d, i) in &nearest {
            let w = 1.0 / d;
            num += w * self.responses[i];
            den += w;
        }
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_returns_stored_response() {
        let knn = KnnRegressor::new(
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]],
            vec![10.0, 20.0, 30.0],
            3,
        );
        assert_eq!(knn.predict(&[1.0, 1.0]), 20.0);
    }

    #[test]
    fn duplicate_points_average_on_exact_match() {
        let knn = KnnRegressor::new(
            vec![vec![1.0], vec![1.0], vec![1.0], vec![5.0]],
            vec![10.0, 20.0, 30.0, 99.0],
            3,
        );
        assert!((knn.predict(&[1.0]) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn interpolates_between_neighbours() {
        let knn = KnnRegressor::new(vec![vec![0.0], vec![2.0]], vec![0.0, 2.0], 2);
        // Midpoint: equal weights -> mean response.
        let y = knn.predict(&[1.0]);
        assert!((y - 1.0).abs() < 1e-12);
        // Closer to the right point -> pulled toward 2.0.
        let y = knn.predict(&[1.5]);
        assert!(y > 1.0 && y < 2.0);
    }

    #[test]
    fn k_larger_than_data_is_clamped() {
        let knn = KnnRegressor::new(vec![vec![0.0], vec![1.0]], vec![4.0, 8.0], 10);
        let y = knn.predict(&[0.5]);
        assert!((y - 6.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_bounded_by_neighbour_responses() {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let rs: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let knn = KnnRegressor::new(pts, rs, 3);
        let y = knn.predict(&[7.3]);
        // Neighbours are 7, 8, 6 -> responses 49, 64, 36.
        assert!((36.0..=64.0).contains(&y), "y = {y}");
    }

    #[test]
    fn weights_favor_nearest() {
        let knn = KnnRegressor::new(
            vec![vec![0.0], vec![10.0], vec![11.0]],
            vec![100.0, 0.0, 0.0],
            3,
        );
        // Query at 1.0 is far closer to the 100.0 point.
        let y = knn.predict(&[1.0]);
        assert!(y > 80.0, "y = {y}");
    }

    #[test]
    #[should_panic(expected = "knn with no training points")]
    fn empty_training_panics() {
        KnnRegressor::new(vec![], vec![], 3);
    }
}
