//! Online statistics and drift detection.
//!
//! TRACON's task & resource monitor tracks the prediction error of the
//! deployed interference model and fires a rebuild event when the error
//! distribution shifts — "a significant shift of the mean or a large surge
//! in the variance" in the paper's words. The primitives here are a
//! Welford online accumulator, a fixed-size sliding window, and a drift
//! detector comparing a recent window against a reference distribution.

use std::collections::VecDeque;

/// Numerically stable online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Fixed-capacity sliding window of the most recent observations.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: VecDeque<f64>,
    capacity: usize,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` observations.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes an observation, evicting the oldest when full. Returns the
    /// evicted value, if any.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(x);
        evicted
    }

    /// Current number of stored observations.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when the window is at capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Copies the window contents (oldest first).
    pub fn to_vec(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }

    /// Mean of the stored observations.
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        self.buf.iter().sum::<f64>() / self.buf.len() as f64
    }

    /// Unbiased sample variance of the stored observations.
    pub fn variance(&self) -> f64 {
        if self.buf.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.buf.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (self.buf.len() - 1) as f64
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// Kind of distribution drift detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// The recent mean shifted significantly from the reference mean.
    MeanShift,
    /// The recent variance surged above the reference variance.
    VarianceSurge,
}

/// Detects drift of a recent window against a frozen reference distribution.
///
/// * Mean shift: `|recent_mean - ref_mean| > mean_threshold * max(ref_std, floor)`
/// * Variance surge: `recent_var > var_threshold * ref_var` (with floor)
#[derive(Debug, Clone)]
pub struct DriftDetector {
    ref_mean: f64,
    ref_std: f64,
    /// Mean-shift threshold in reference standard deviations.
    pub mean_threshold: f64,
    /// Variance-surge multiplier.
    pub var_threshold: f64,
    /// Numerical floor used when the reference spread is ~0.
    pub floor: f64,
}

impl DriftDetector {
    /// Creates a detector calibrated to the reference sample.
    ///
    /// # Panics
    /// Panics when `reference` is empty.
    pub fn from_reference(reference: &[f64], mean_threshold: f64, var_threshold: f64) -> Self {
        assert!(!reference.is_empty(), "empty reference sample");
        let m = crate::descriptive::mean(reference);
        let s = crate::descriptive::std_dev(reference);
        DriftDetector {
            ref_mean: m,
            ref_std: s,
            mean_threshold,
            var_threshold,
            floor: 1e-9,
        }
    }

    /// Reference mean captured at calibration time.
    pub fn reference_mean(&self) -> f64 {
        self.ref_mean
    }

    /// Tests a recent window; returns the first drift kind triggered.
    pub fn check(&self, recent: &[f64]) -> Option<DriftKind> {
        if recent.len() < 2 {
            return None;
        }
        let m = crate::descriptive::mean(recent);
        let spread = self.ref_std.max(self.floor);
        if (m - self.ref_mean).abs() > self.mean_threshold * spread {
            return Some(DriftKind::MeanShift);
        }
        let v = crate::descriptive::variance(recent);
        let ref_var = (self.ref_std * self.ref_std).max(self.floor);
        if v > self.var_threshold * ref_var {
            return Some(DriftKind::VarianceSurge);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - crate::descriptive::mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - crate::descriptive::variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut win = SlidingWindow::new(3);
        assert_eq!(win.push(1.0), None);
        assert_eq!(win.push(2.0), None);
        assert_eq!(win.push(3.0), None);
        assert!(win.is_full());
        assert_eq!(win.push(4.0), Some(1.0));
        assert_eq!(win.to_vec(), vec![2.0, 3.0, 4.0]);
        assert!((win.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn window_variance_matches_batch() {
        let mut win = SlidingWindow::new(10);
        let xs = [1.0, 5.0, 3.0, 8.0];
        for &x in &xs {
            win.push(x);
        }
        assert!((win.variance() - crate::descriptive::variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn drift_detects_mean_shift() {
        let mut rng = StdRng::seed_from_u64(1);
        let reference: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let det = DriftDetector::from_reference(&reference, 3.0, 4.0);
        // Same distribution: no drift.
        let same: Vec<f64> = (0..100).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert_eq!(det.check(&same), None);
        // Shifted by many reference sigmas: mean shift.
        let shifted: Vec<f64> = (0..100).map(|_| 10.0 + rng.gen_range(-1.0..1.0)).collect();
        assert_eq!(det.check(&shifted), Some(DriftKind::MeanShift));
    }

    #[test]
    fn drift_detects_variance_surge() {
        let mut rng = StdRng::seed_from_u64(2);
        let reference: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let det = DriftDetector::from_reference(&reference, 10.0, 4.0);
        let noisy: Vec<f64> = (0..200).map(|_| rng.gen_range(-10.0..10.0)).collect();
        assert_eq!(det.check(&noisy), Some(DriftKind::VarianceSurge));
    }

    #[test]
    fn drift_requires_two_points() {
        let det = DriftDetector::from_reference(&[1.0, 2.0, 3.0], 1.0, 1.0);
        assert_eq!(det.check(&[100.0]), None);
    }
}
