//! Shared-bandwidth queueing primitives for the network resource
//! dimension: M/M/1-style throughput degradation on a contended link.
//!
//! When several VMs on a host push their storage traffic through one
//! shared network path (the iSCSI initiator, a NIC), per-request latency
//! inflates with the offered load. The classic M/M/1 response-time
//! factor `1 / (1 - rho)` captures the shape: negligible below ~50%
//! utilization, then a sharp knee as the link saturates. The utilization
//! is clamped below 1 so the factor stays finite when demand exceeds
//! capacity — the simulator models an overloaded link as *very* slow,
//! not infinitely slow.

/// Highest utilization the slowdown model evaluates at; offered load
/// beyond capacity saturates here. At `rho = 0.95` the M/M/1 factor is
/// 20x, comfortably past the worst pairwise interference the paper
/// measures (~16x), so the clamp never hides a contention signal.
pub const MAX_UTILIZATION: f64 = 0.95;

/// Link utilization `rho = demand / capacity`, clamped to
/// `[0, MAX_UTILIZATION]`. A non-positive capacity saturates.
pub fn utilization(demand: f64, capacity: f64) -> f64 {
    if demand <= 0.0 {
        return 0.0;
    }
    if capacity <= 0.0 {
        return MAX_UTILIZATION;
    }
    (demand / capacity).min(MAX_UTILIZATION)
}

/// M/M/1 response-time inflation of a shared link carrying `demand`
/// (MB/s) over `capacity` (MB/s): `1 / (1 - rho)` with `rho` clamped.
///
/// Exactly `1.0` when `demand <= 0` — a zero-demand network dimension
/// never perturbs a simulation, which is what makes the N-dim resource
/// API a bit-identical generalization of the 2-dim one.
pub fn mm1_slowdown(demand: f64, capacity: f64) -> f64 {
    let rho = utilization(demand, capacity);
    if rho == 0.0 {
        return 1.0;
    }
    1.0 / (1.0 - rho)
}

/// Effective throughput share of the link under the same model:
/// `1 / mm1_slowdown` (so a component pushing through a contended link
/// progresses at this fraction of its uncontended rate).
pub fn mm1_throughput_factor(demand: f64, capacity: f64) -> f64 {
    1.0 / mm1_slowdown(demand, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_demand_is_exactly_one() {
        assert_eq!(mm1_slowdown(0.0, 100.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(mm1_slowdown(-5.0, 100.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(mm1_slowdown(0.0, 0.0).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn slowdown_is_monotone_in_demand() {
        let mut prev = 1.0;
        for d in [10.0, 25.0, 50.0, 75.0, 90.0, 120.0] {
            let s = mm1_slowdown(d, 100.0);
            assert!(s >= prev, "slowdown must not decrease: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn half_utilization_doubles_latency() {
        assert!((mm1_slowdown(50.0, 100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overload_saturates_at_the_clamp() {
        let at_cap = mm1_slowdown(100.0, 100.0);
        let over = mm1_slowdown(1e9, 100.0);
        assert_eq!(at_cap.to_bits(), over.to_bits());
        assert!((over - 1.0 / (1.0 - MAX_UTILIZATION)).abs() < 1e-9);
        assert!(over.is_finite());
    }

    #[test]
    fn zero_capacity_saturates() {
        let s = mm1_slowdown(10.0, 0.0);
        assert!((s - 1.0 / (1.0 - MAX_UTILIZATION)).abs() < 1e-9);
    }

    #[test]
    fn throughput_factor_inverts_slowdown() {
        for (d, c) in [(0.0, 50.0), (20.0, 50.0), (49.0, 50.0), (80.0, 50.0)] {
            let f = mm1_throughput_factor(d, c);
            assert!((f * mm1_slowdown(d, c) - 1.0).abs() < 1e-12);
            assert!(f > 0.0 && f <= 1.0);
        }
    }
}
