//! Matrix decompositions: Householder QR and Cholesky, plus the
//! least-squares and linear solves built on them.
//!
//! QR is the workhorse for the regression models in TRACON — it is
//! numerically stabler than forming normal equations, which matters because
//! the quadratic basis used by the nonlinear interference model produces
//! highly correlated columns.

use crate::matrix::Matrix;

/// Error type for decomposition failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// The matrix (or its implied system) is singular / rank deficient
    /// beyond what the solver tolerates.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// Shape requirements were violated (e.g. more columns than rows in a
    /// least-squares problem).
    BadShape(String),
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompError::Singular => write!(f, "matrix is singular or rank deficient"),
            DecompError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            DecompError::BadShape(s) => write!(f, "bad shape: {s}"),
        }
    }
}

impl std::error::Error for DecompError {}

/// Householder QR decomposition of an `m x n` matrix with `m >= n`.
///
/// Stores the Householder vectors in the lower trapezoid of `qr` and the
/// upper-triangular factor `R` on and above the diagonal.
pub struct Qr {
    qr: Matrix,
    /// Scalar `beta` for each Householder reflector.
    betas: Vec<f64>,
}

impl Qr {
    /// Computes the QR decomposition of `a`.
    ///
    /// # Errors
    /// Returns [`DecompError::BadShape`] when `a` has more columns than rows.
    pub fn new(a: &Matrix) -> Result<Self, DecompError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(DecompError::BadShape(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k below row k.
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] > 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, a[k+1..m, k]]; beta = 2 / (v^T v)
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            if vtv == 0.0 {
                betas[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vtv;
            betas[k] = beta;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta;
                qr[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            // Store alpha on the diagonal and v (normalized so v[0]=v0) below.
            qr[(k, k)] = alpha;
            // The sub-diagonal entries already hold v[i] = a[i,k]; we keep v0
            // separately through the stored diagonal trick: recompute when
            // applying. To keep application simple we stash v0 by scaling:
            // store v_i / v0 below the diagonal and fold v0^2 into beta.
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    qr[(i, k)] /= v0;
                }
                betas[k] = beta * v0 * v0;
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Applies `Q^T` to a vector `b` in place (length `m`).
    #[allow(clippy::needless_range_loop)] // reflector application reads clearer indexed
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        assert_eq!(b.len(), m);
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v = [1, qr[k+1..m, k]]
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= beta;
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ||a x - b||` using the stored
    /// factorization.
    ///
    /// # Errors
    /// Returns [`DecompError::Singular`] when `R` has a near-zero diagonal.
    #[allow(clippy::needless_range_loop)] // substitution reads clearer indexed
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, DecompError> {
        let (m, n) = self.qr.shape();
        assert_eq!(b.len(), m, "rhs length mismatch");
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        // Back substitution on R.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let d = self.qr[(k, k)];
            if d.abs() < 1e-12 * (1.0 + self.qr.max_abs()) {
                return Err(DecompError::Singular);
            }
            let mut s = qtb[k];
            for j in (k + 1)..n {
                s -= self.qr[(k, j)] * x[j];
            }
            x[k] = s / d;
        }
        Ok(x)
    }

    /// Returns the upper-triangular factor `R` (n x n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix.
pub struct Cholesky {
    /// Lower-triangular factor `L` with `A = L L^T`.
    l: Matrix,
}

impl Cholesky {
    /// Computes the Cholesky factor of symmetric positive-definite `a`.
    ///
    /// # Errors
    /// Returns [`DecompError::NotPositiveDefinite`] when a non-positive pivot
    /// is encountered.
    pub fn new(a: &Matrix) -> Result<Self, DecompError> {
        let (m, n) = a.shape();
        if m != n {
            return Err(DecompError::BadShape(format!(
                "Cholesky requires square, got {m}x{n}"
            )));
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(DecompError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` via forward/back substitution.
    #[allow(clippy::needless_range_loop)] // substitution reads clearer indexed
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back: L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Returns the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

/// Convenience: least-squares solve `min ||a x - b||` via Householder QR,
/// falling back to ridge-regularized normal equations when `a` is rank
/// deficient (the stepwise search can propose collinear candidate bases).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, DecompError> {
    match Qr::new(a).and_then(|qr| qr.solve(b)) {
        Ok(x) => Ok(x),
        Err(DecompError::Singular) => {
            // Tikhonov fallback: (A^T A + eps I) x = A^T b.
            let mut g = a.gram();
            let eps = 1e-8 * (1.0 + g.max_abs());
            for i in 0..g.rows() {
                g[(i, i)] += eps;
            }
            let atb = a.t_matvec(b);
            let chol = Cholesky::new(&g).map_err(|_| DecompError::Singular)?;
            Ok(chol.solve(&atb))
        }
        Err(e) => Err(e),
    }
}

/// Solves the square system `a x = b` via QR (works for any nonsingular `a`).
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, DecompError> {
    let (m, n) = a.shape();
    if m != n {
        return Err(DecompError::BadShape(format!(
            "solve requires square, got {m}x{n}"
        )));
    }
    Qr::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn qr_reconstructs_r_norm() {
        let a = Matrix::from_rows(&[vec![2.0, -1.0], vec![1.0, 3.0], vec![0.0, 1.0]]);
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        // ||R||_F == ||A||_F since Q is orthogonal.
        assert!((r.frobenius_norm() - a.frobenius_norm()).abs() < 1e-10);
    }

    #[test]
    fn qr_solves_square_system() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let b = [9.0, 8.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn qr_least_squares_matches_known_fit() {
        // Fit y = 1 + 2x on noiseless data: exact recovery expected.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = xs.iter().map(|&x| 1.0 + 2.0 * x).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5],
            vec![1.0, 1.5],
            vec![1.0, 2.5],
            vec![1.0, 4.0],
        ]);
        let b = [1.0, 2.0, 2.0, 5.0];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
        for c in 0..a.cols() {
            let col = a.col(c);
            assert!(dot(&col, &resid).abs() < 1e-9, "residual not orthogonal");
        }
    }

    #[test]
    fn lstsq_handles_collinear_columns_via_ridge() {
        // Second and third columns identical: rank deficient.
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 2.0],
            vec![1.0, 3.0, 3.0],
            vec![1.0, 5.0, 5.0],
            vec![1.0, 7.0, 7.0],
        ]);
        let b = [5.0, 7.0, 11.0, 15.0]; // y = 1 + 2*(col2)
        let x = lstsq(&a, &b).unwrap();
        // Prediction should still be accurate even if coefficients split.
        assert!(residual_norm(&a, &x, &b) < 1e-3);
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Qr::new(&a), Err(DecompError::BadShape(_))));
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let b = [10.0, 8.0];
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&b);
        // Verify A x = b
        let ax = a.matvec(&x);
        assert!((ax[0] - b[0]).abs() < 1e-10);
        assert!((ax[1] - b[1]).abs() < 1e-10);
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![25.0, 15.0, -5.0],
            vec![15.0, 18.0, 0.0],
            vec![-5.0, 0.0, 11.0],
        ]);
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        let llt = l.matmul(&l.transpose());
        assert!(llt.approx_eq(&a, 1e-9));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(DecompError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(DecompError::Singular)));
    }
}
