//! Damped Gauss-Newton for nonlinear least squares.
//!
//! TRACON fits its quadratic (degree-2) interference model with the
//! Gauss-Newton method. We implement the general algorithm for any
//! parametric model `f(params, x)` with a user-supplied (or numerical)
//! Jacobian, plus a Levenberg-style damping fallback so the iteration is
//! robust when `J^T J` is ill conditioned — which happens routinely with
//! correlated quadratic basis terms.

use crate::decomp::Cholesky;
use crate::matrix::Matrix;

/// A parametric residual model for nonlinear least squares.
pub trait ParametricModel {
    /// Number of free parameters.
    fn n_params(&self) -> usize;
    /// Model output for one input row given the parameter vector.
    fn eval(&self, params: &[f64], x: &[f64]) -> f64;
    /// Partial derivatives of `eval` w.r.t. each parameter at (`params`, `x`).
    ///
    /// The default implementation uses central finite differences; models
    /// that are linear in their parameters (like the quadratic basis
    /// expansion) should override with the exact gradient.
    fn gradient(&self, params: &[f64], x: &[f64], out: &mut [f64]) {
        let h = 1e-6;
        let mut p = params.to_vec();
        for i in 0..params.len() {
            let orig = p[i];
            let step = h * (1.0 + orig.abs());
            p[i] = orig + step;
            let fp = self.eval(&p, x);
            p[i] = orig - step;
            let fm = self.eval(&p, x);
            p[i] = orig;
            out[i] = (fp - fm) / (2.0 * step);
        }
    }
}

/// Options controlling the Gauss-Newton iteration.
#[derive(Debug, Clone, Copy)]
pub struct GaussNewtonOptions {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Stop when the relative SSE improvement falls below this.
    pub tolerance: f64,
    /// Initial Levenberg damping (0 gives pure Gauss-Newton first).
    pub initial_damping: f64,
}

impl Default for GaussNewtonOptions {
    fn default() -> Self {
        GaussNewtonOptions {
            max_iterations: 50,
            tolerance: 1e-10,
            initial_damping: 1e-8,
        }
    }
}

/// Result of a Gauss-Newton fit.
#[derive(Debug, Clone)]
pub struct GaussNewtonFit {
    /// Optimized parameter vector.
    pub params: Vec<f64>,
    /// Final sum of squared errors.
    pub sse: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance criterion was met before `max_iterations`.
    pub converged: bool,
}

fn sse_of<M: ParametricModel>(model: &M, params: &[f64], xs: &[Vec<f64>], ys: &[f64]) -> f64 {
    xs.iter()
        .zip(ys)
        .map(|(x, &y)| {
            let e = y - model.eval(params, x);
            e * e
        })
        .sum()
}

/// Minimizes `sum_i (y_i - f(params, x_i))^2` starting from `initial`.
///
/// Each iteration solves the damped normal equations
/// `(J^T J + lambda I) delta = J^T r` and accepts the step only when it
/// reduces the SSE, increasing `lambda` otherwise (Levenberg safeguard).
///
/// # Panics
/// Panics when `xs` and `ys` lengths differ or `initial` has the wrong size.
pub fn fit<M: ParametricModel>(
    model: &M,
    xs: &[Vec<f64>],
    ys: &[f64],
    initial: &[f64],
    opts: GaussNewtonOptions,
) -> GaussNewtonFit {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert_eq!(
        initial.len(),
        model.n_params(),
        "initial parameter size mismatch"
    );
    let n = xs.len();
    let p = model.n_params();
    let mut params = initial.to_vec();
    let mut sse = sse_of(model, &params, xs, ys);
    let mut lambda = opts.initial_damping;
    let mut grad = vec![0.0; p];
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iterations {
        iterations += 1;
        // Build J^T J and J^T r without materializing J (n can be large).
        let mut jtj = Matrix::zeros(p, p);
        let mut jtr = vec![0.0; p];
        for i in 0..n {
            let r = ys[i] - model.eval(&params, &xs[i]);
            model.gradient(&params, &xs[i], &mut grad);
            for a in 0..p {
                let ga = grad[a];
                if ga == 0.0 {
                    continue;
                }
                jtr[a] += ga * r;
                for b in a..p {
                    jtj[(a, b)] += ga * grad[b];
                }
            }
        }
        for a in 0..p {
            for b in 0..a {
                jtj[(a, b)] = jtj[(b, a)];
            }
        }

        // Try steps with increasing damping until SSE improves.
        let mut accepted = false;
        for _try in 0..12 {
            let mut damped = jtj.clone();
            let scale = 1.0 + damped.max_abs();
            for d in 0..p {
                damped[(d, d)] += lambda * scale;
            }
            let delta = match Cholesky::new(&damped) {
                Ok(ch) => ch.solve(&jtr),
                Err(_) => {
                    lambda = (lambda * 10.0).max(1e-10);
                    continue;
                }
            };
            let candidate: Vec<f64> = params.iter().zip(&delta).map(|(p, d)| p + d).collect();
            let new_sse = sse_of(model, &candidate, xs, ys);
            if new_sse.is_finite() && new_sse <= sse {
                let rel_improvement = if sse > 0.0 {
                    (sse - new_sse) / sse
                } else {
                    0.0
                };
                params = candidate;
                sse = new_sse;
                lambda = (lambda * 0.3).max(1e-12);
                accepted = true;
                if rel_improvement < opts.tolerance {
                    converged = true;
                }
                break;
            }
            lambda = (lambda * 10.0).max(1e-10);
        }
        if !accepted {
            // No improving step found even with heavy damping: local optimum.
            converged = true;
        }
        if converged {
            break;
        }
    }

    GaussNewtonFit {
        params,
        sse,
        iterations,
        converged,
    }
}

/// A model that is linear in its parameters over a fixed basis expansion:
/// `f(params, x) = sum_j params[j] * basis_j(x)`.
///
/// Gauss-Newton converges on these in a single step, but routing them
/// through the same machinery keeps the NLM training path identical to the
/// paper's description.
pub struct LinearInParams<F: Fn(&[f64], &mut Vec<f64>)> {
    n_params: usize,
    /// Fills the basis expansion of `x` into the output vector.
    expand: F,
}

impl<F: Fn(&[f64], &mut Vec<f64>)> LinearInParams<F> {
    /// Creates a linear-in-parameters model with `n_params` basis functions.
    pub fn new(n_params: usize, expand: F) -> Self {
        LinearInParams { n_params, expand }
    }
}

impl<F: Fn(&[f64], &mut Vec<f64>)> ParametricModel for LinearInParams<F> {
    fn n_params(&self) -> usize {
        self.n_params
    }

    fn eval(&self, params: &[f64], x: &[f64]) -> f64 {
        let mut basis = Vec::with_capacity(self.n_params);
        (self.expand)(x, &mut basis);
        debug_assert_eq!(basis.len(), self.n_params);
        crate::matrix::dot(params, &basis)
    }

    fn gradient(&self, _params: &[f64], x: &[f64], out: &mut [f64]) {
        let mut basis = Vec::with_capacity(self.n_params);
        (self.expand)(x, &mut basis);
        out.copy_from_slice(&basis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y = a * exp(b * x): genuinely nonlinear in parameters.
    struct ExpModel;

    impl ParametricModel for ExpModel {
        fn n_params(&self) -> usize {
            2
        }
        fn eval(&self, p: &[f64], x: &[f64]) -> f64 {
            p[0] * (p[1] * x[0]).exp()
        }
        fn gradient(&self, p: &[f64], x: &[f64], out: &mut [f64]) {
            let e = (p[1] * x[0]).exp();
            out[0] = e;
            out[1] = p[0] * x[0] * e;
        }
    }

    #[test]
    fn fits_exponential_exactly() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (0.8 * x[0]).exp()).collect();
        let fit = fit(
            &ExpModel,
            &xs,
            &ys,
            &[1.0, 0.1],
            GaussNewtonOptions::default(),
        );
        assert!(fit.converged, "did not converge: {fit:?}");
        assert!((fit.params[0] - 2.0).abs() < 1e-6, "{:?}", fit.params);
        assert!((fit.params[1] - 0.8).abs() < 1e-6, "{:?}", fit.params);
        assert!(fit.sse < 1e-10);
    }

    #[test]
    fn fits_exponential_with_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<Vec<f64>> = (0..100).map(|_| vec![rng.gen_range(0.0..2.0)]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.5 * (0.5 * x[0]).exp() + rng.gen_range(-0.01..0.01))
            .collect();
        let fit = fit(
            &ExpModel,
            &xs,
            &ys,
            &[1.0, 0.1],
            GaussNewtonOptions::default(),
        );
        assert!((fit.params[0] - 1.5).abs() < 0.05);
        assert!((fit.params[1] - 0.5).abs() < 0.05);
    }

    #[test]
    fn linear_in_params_one_step_quadratic() {
        // y = 1 + 2x + 3x^2 through the basis [1, x, x^2].
        let model = LinearInParams::new(3, |x: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.push(1.0);
            out.push(x[0]);
            out.push(x[0] * x[0]);
        });
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.25]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.0 + 2.0 * x[0] + 3.0 * x[0] * x[0])
            .collect();
        let fit = fit(
            &model,
            &xs,
            &ys,
            &[0.0, 0.0, 0.0],
            GaussNewtonOptions::default(),
        );
        assert!((fit.params[0] - 1.0).abs() < 1e-6);
        assert!((fit.params[1] - 2.0).abs() < 1e-6);
        assert!((fit.params[2] - 3.0).abs() < 1e-6);
        // Linear-in-params: Gauss-Newton needs very few iterations (a couple
        // of damping refinements at most).
        assert!(fit.iterations <= 5, "iterations = {}", fit.iterations);
    }

    #[test]
    fn default_numeric_gradient_agrees_with_exact() {
        struct NoGrad;
        impl ParametricModel for NoGrad {
            fn n_params(&self) -> usize {
                2
            }
            fn eval(&self, p: &[f64], x: &[f64]) -> f64 {
                p[0] * (p[1] * x[0]).exp()
            }
        }
        let p = [1.3, 0.4];
        let x = [0.7];
        let mut numeric = [0.0; 2];
        NoGrad.gradient(&p, &x, &mut numeric);
        let mut exact = [0.0; 2];
        ExpModel.gradient(&p, &x, &mut exact);
        assert!((numeric[0] - exact[0]).abs() < 1e-5);
        assert!((numeric[1] - exact[1]).abs() < 1e-5);
    }

    #[test]
    fn zero_residual_start_terminates_quickly() {
        let model = LinearInParams::new(1, |x: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.push(x[0]);
        });
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![3.0, 6.0];
        let fit = fit(&model, &xs, &ys, &[3.0], GaussNewtonOptions::default());
        assert!(fit.sse < 1e-20);
        assert!(fit.iterations <= 2);
    }
}
