//! Principal component analysis.
//!
//! TRACON's weighted-mean model (WMM) projects the 8-dimensional joint
//! characteristics vector onto the first four principal components before
//! running nearest-neighbour interpolation — exactly the construction in
//! Koh et al. (ISPASS'07) that the paper cites.

use crate::descriptive::Scaler;
use crate::eigen::sym_eigen;
use crate::matrix::Matrix;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    scaler: Scaler,
    /// Component directions as columns (d x k).
    components: Matrix,
    /// Eigenvalues (variance explained) per retained component.
    explained: Vec<f64>,
    /// Total variance across all original dimensions.
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA on `rows`, retaining the top `k` components.
    ///
    /// Data are centered and scaled to unit variance first so that
    /// differently-scaled characteristics (requests/s vs CPU fraction)
    /// contribute comparably.
    ///
    /// # Panics
    /// Panics when `rows` is empty, ragged, or `k` exceeds the dimension.
    pub fn fit(rows: &[Vec<f64>], k: usize) -> Self {
        assert!(!rows.is_empty(), "Pca::fit on empty data");
        let d = rows[0].len();
        assert!(k >= 1 && k <= d, "k={k} out of range for dimension {d}");
        let scaler = Scaler::fit(rows);
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        let x = Matrix::from_rows(&scaled);
        // Covariance of the scaled data (population normalization matches the
        // scaler, which also uses n).
        let mut cov = x.gram();
        cov.scale_in_place(1.0 / rows.len() as f64);
        let eig = sym_eigen(&cov);
        let total_variance: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let mut components = Matrix::zeros(d, k);
        for c in 0..k {
            for r in 0..d {
                components[(r, c)] = eig.vectors[(r, c)];
            }
        }
        let explained = eig.values[..k].to_vec();
        Pca {
            scaler,
            components,
            explained,
            total_variance,
        }
    }

    /// Projects a raw (unscaled) observation onto the retained components.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        let z = self.scaler.transform(row);
        let k = self.components.cols();
        let mut out = vec![0.0; k];
        for (i, zi) in z.iter().enumerate() {
            if *zi == 0.0 {
                continue;
            }
            for (c, o) in out.iter_mut().enumerate() {
                *o += zi * self.components[(i, c)];
            }
        }
        out
    }

    /// Projects many rows at once.
    pub fn project_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.project(r)).collect()
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Variance explained by each retained component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// Fraction of total variance captured by the retained components,
    /// in `[0, 1]`.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 0.0;
        }
        self.explained.iter().map(|v| v.max(0.0)).sum::<f64>() / self.total_variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_dominant_direction() {
        // Points along the line y = 2x with small noise: PC1 should align
        // with (1, 2) after scaling (which makes it (1,1)/sqrt2 direction).
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let t: f64 = rng.gen_range(-1.0..1.0);
                let noise: f64 = rng.gen_range(-0.01..0.01);
                vec![t, 2.0 * t + noise]
            })
            .collect();
        let pca = Pca::fit(&rows, 1);
        assert!(pca.explained_variance_ratio() > 0.99);
        // Projection of two points far apart along the line differ strongly.
        let p1 = pca.project(&[1.0, 2.0]);
        let p2 = pca.project(&[-1.0, -2.0]);
        assert!((p1[0] - p2[0]).abs() > 1.0);
    }

    #[test]
    fn full_rank_projection_preserves_distances() {
        // With k = d on scaled data, PCA is an orthogonal transform of the
        // z-scores, so pairwise distances in z-space are preserved.
        let rows = vec![
            vec![1.0, 5.0, 2.0],
            vec![2.0, 3.0, 8.0],
            vec![0.5, 9.0, 1.0],
            vec![4.0, 1.0, 3.0],
            vec![2.5, 4.0, 4.0],
        ];
        let pca = Pca::fit(&rows, 3);
        let sc = Scaler::fit(&rows);
        let za = sc.transform(&rows[0]);
        let zb = sc.transform(&rows[3]);
        let dz = crate::matrix::euclidean_distance(&za, &zb);
        let pa = pca.project(&rows[0]);
        let pb = pca.project(&rows[3]);
        let dp = crate::matrix::euclidean_distance(&pa, &pb);
        assert!((dz - dp).abs() < 1e-8, "dz={dz} dp={dp}");
        assert!((pca.explained_variance_ratio() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn explained_variance_sorted() {
        let mut rng = StdRng::seed_from_u64(42);
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let pca = Pca::fit(&rows, 4);
        let ev = pca.explained_variance();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn project_all_matches_project() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 1.0], vec![2.0, 2.0]];
        let pca = Pca::fit(&rows, 2);
        let all = pca.project_all(&rows);
        for (r, p) in rows.iter().zip(&all) {
            let q = pca.project(r);
            assert_eq!(&q, p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_too_large_panics() {
        Pca::fit(&[vec![1.0, 2.0]], 3);
    }
}
