//! Correlation measures: Pearson's r and Spearman's rank correlation.
//!
//! The experiment analysis uses Spearman's rho to quantify how well the
//! interference models preserve the *ordering* of co-location choices —
//! the property the schedulers actually consume. A model can have a
//! sizable absolute error yet still schedule perfectly if its rankings
//! are right.

use crate::descriptive::{mean, std_dev};

/// Pearson's product-moment correlation coefficient in `[-1, 1]`.
/// Returns 0.0 when either sample is constant or shorter than 2.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx < 1e-300 || sy < 1e-300 {
        return 0.0;
    }
    let cov: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64;
    (cov / (sx * sy)).clamp(-1.0, 1.0)
}

/// Fractional ranks (average ranks for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie run [i, j).
        let mut j = i + 1;
        while j < n && (xs[order[j]] - xs[order[i]]).abs() < 1e-300 {
            j += 1;
        }
        // Average rank of the run (1-based).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            out[idx] = avg;
        }
        i = j;
    }
    out
}

/// Spearman's rank correlation coefficient in `[-1, 1]` (Pearson on the
/// fractional ranks; handles ties by average ranking).
///
/// # Panics
/// Panics when the slices differ in length.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[5.0], &[2.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| f64::exp(*x)).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [9.0, 7.0, 4.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        // Ranks of ties are averaged.
        let r = ranks(&xs);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_uncorrelated_near_zero() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(spearman(&xs, &ys).abs() < 0.08);
    }
}
