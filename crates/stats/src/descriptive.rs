//! Descriptive statistics: means, variances, percentiles, z-score
//! normalization. These feed both the modeling pipeline (feature scaling
//! for PCA/k-NN) and the experiment drivers (error bars in the figures).

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n-1 denominator); 0.0 when fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population variance (n denominator); 0.0 for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Minimum; returns +inf for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; returns -inf for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Percentile via linear interpolation between order statistics.
/// `p` is in `[0, 100]`.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Per-column mean and standard deviation of a design matrix given as rows.
/// Columns with zero spread get a standard deviation of 1.0 so that scaling
/// is always well defined.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    /// Per-column means.
    pub means: Vec<f64>,
    /// Per-column standard deviations (>= tiny positive).
    pub stds: Vec<f64>,
}

impl Scaler {
    /// Fits a scaler on the given rows.
    ///
    /// # Panics
    /// Panics when `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "Scaler::fit on empty data");
        let d = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; d];
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows in Scaler::fit");
            for (m, x) in means.iter_mut().zip(r) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for r in rows {
            for ((s, x), m) in stds.iter_mut().zip(r).zip(&means) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n.max(1.0)).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Scaler { means, stds }
    }

    /// Applies z-score scaling to a single row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len());
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((x, m), s)| (x - m) / s)
            .collect()
    }

    /// Applies the inverse transform to a scaled row.
    pub fn inverse_transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len());
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((z, m), s)| z * s + m)
            .collect()
    }
}

/// Summary of a sample: used for figure error bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

/// Computes a [`Summary`] of a sample (empty samples produce a zeroed
/// summary with infinite min / -infinite max clamped to 0).
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary {
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            n: 0,
        };
    }
    Summary {
        mean: mean(xs),
        std_dev: std_dev(xs),
        min: min(xs),
        max: max(xs),
        n: xs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert!((median(&xs) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn scaler_roundtrip() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let sc = Scaler::fit(&rows);
        let z = sc.transform(&[3.0, 30.0]);
        assert!(z[0].abs() < 1e-12 && z[1].abs() < 1e-12, "center maps to 0");
        let back = sc.inverse_transform(&z);
        assert!((back[0] - 3.0).abs() < 1e-12);
        assert!((back[1] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn scaler_constant_column_does_not_blow_up() {
        let rows = vec![vec![7.0, 1.0], vec![7.0, 2.0], vec![7.0, 3.0]];
        let sc = Scaler::fit(&rows);
        let z = sc.transform(&[7.0, 2.0]);
        assert!(z[0].abs() < 1e-12);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn summary_fields() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}
