//! Ordinary least squares regression with fit-quality metrics.
//!
//! Used directly by TRACON's linear interference model (LM) and as the
//! inner solver of the stepwise AIC search.

use crate::decomp::{lstsq, DecompError};
use crate::matrix::{dot, Matrix};

/// A fitted ordinary-least-squares model `y ≈ X beta`.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Fitted coefficients, one per design-matrix column.
    pub coefficients: Vec<f64>,
    /// Sum of squared errors on the training data.
    pub sse: f64,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Number of observations used.
    pub n: usize,
}

impl OlsFit {
    /// Predicts the response for one design row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        dot(&self.coefficients, row)
    }
}

/// Fits `y ≈ X beta` by least squares.
///
/// # Errors
/// Propagates decomposition failures ([`DecompError`]).
///
/// # Panics
/// Panics if `y.len() != x.rows()`.
pub fn fit(x: &Matrix, y: &[f64]) -> Result<OlsFit, DecompError> {
    assert_eq!(x.rows(), y.len(), "design/response length mismatch");
    let beta = lstsq(x, y)?;
    let pred = x.matvec(&beta);
    let sse: f64 = pred.iter().zip(y).map(|(p, q)| (p - q) * (p - q)).sum();
    let ybar = y.iter().sum::<f64>() / y.len().max(1) as f64;
    let sst: f64 = y.iter().map(|v| (v - ybar) * (v - ybar)).sum();
    let r_squared = if sst > 0.0 { 1.0 - sse / sst } else { 1.0 };
    Ok(OlsFit {
        coefficients: beta,
        sse,
        r_squared,
        n: y.len(),
    })
}

/// Fits with an explicit intercept: prepends a constant-1 column and returns
/// `(intercept, slope coefficients)` packaged in an [`OlsFit`] whose first
/// coefficient is the intercept.
pub fn fit_with_intercept(x: &Matrix, y: &[f64]) -> Result<OlsFit, DecompError> {
    let ones = vec![1.0; x.rows()];
    let mut cols: Vec<Vec<f64>> = vec![ones];
    for c in 0..x.cols() {
        cols.push(x.col(c));
    }
    let rows: Vec<Vec<f64>> = (0..x.rows())
        .map(|r| cols.iter().map(|c| c[r]).collect())
        .collect();
    fit(&Matrix::from_rows(&rows), y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_linear_recovery() {
        // y = 3 + 2a - b, noiseless.
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let fit = fit_with_intercept(&x, &y).unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-8);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-8);
        assert!((fit.coefficients[2] + 1.0).abs() < 1e-8);
        assert!(fit.sse < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_r_squared_reasonable() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen_range(0.0..1.0)]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 5.0 * r[0] + rng.gen_range(-0.1..0.1))
            .collect();
        let fit = fit_with_intercept(&Matrix::from_rows(&rows), &y).unwrap();
        assert!(fit.r_squared > 0.95, "r2={}", fit.r_squared);
        assert!((fit.coefficients[1] - 5.0).abs() < 0.1);
    }

    #[test]
    fn predict_matches_training_fit() {
        let rows = vec![vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]];
        let y = [1.0, 3.0, 5.0]; // y = 1 + 2x with intercept column inline
        let fit = fit(&Matrix::from_rows(&rows), &y).unwrap();
        assert!((fit.predict(&[1.0, 3.0]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn constant_response_r_squared_one() {
        let rows = vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![1.0, 4.0]];
        let y = [7.0, 7.0, 7.0];
        let fit = fit(&Matrix::from_rows(&rows), &y).unwrap();
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.sse < 1e-18);
    }
}
