//! Chaos integration tests: attack a live tracond with the adversarial
//! load mode and assert the task-conservation invariant, then crash a
//! WAL-backed daemon and verify a fresh process recovers its state.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tracon_dcsim::{Testbed, TestbedConfig};
use tracon_serve::daemon::start;
use tracon_serve::{
    run_chaos, ChaosConfig, Client, ErrorKind, NetConfig, Reply, Request, Role, SchedKind,
    ServeConfig,
};

/// Same scale as the serve crate's unit tests: fast to profile, still a
/// real 8-app interference matrix.
fn tiny_testbed() -> Testbed {
    let mut cfg = TestbedConfig::small();
    cfg.calibration_points = 6;
    cfg.time_scale = 0.05;
    Testbed::build(&cfg)
}

/// Lease settings tight enough that orphaned tasks cycle through
/// requeue and dead-lettering within a test-sized settle window.
fn fast_lease_cfg() -> ServeConfig {
    ServeConfig {
        machines: 2,
        slots_per_machine: 2,
        scheduler: SchedKind::Mios,
        lease_base_ms: 150,
        lease_per_predicted_s_ms: 0,
        max_attempts: 2,
        backoff_base_ms: 10,
        backoff_cap_ms: 50,
        ..ServeConfig::default()
    }
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracon-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// All counters from ONE status reply — a consistent snapshot taken
/// under the service mutex. Reading fields via separate requests would
/// race the daemon's dispatch ticker and double-count moving tasks.
/// Returns `(admitted, completed, dead_lettered, outstanding)`.
fn status_counts(client: &mut Client) -> (u64, u64, u64, u64) {
    let reply = client.request(Request::Status).expect("status roundtrip");
    let Reply::Ok { result, .. } = reply else {
        panic!("status failed");
    };
    let field = |name: &str| -> u64 {
        result
            .get(name)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("status lacks '{name}': {result}"))
    };
    (
        field("admitted"),
        field("completed"),
        field("dead_lettered"),
        field("queued") + field("delayed") + field("running"),
    )
}

#[test]
fn chaos_run_holds_conservation_and_settles() {
    let testbed = tiny_testbed();
    let handle = start(&testbed, fast_lease_cfg(), NetConfig::default()).expect("daemon must bind");

    let cfg = ChaosConfig {
        addrs: vec![handle.addr.to_string()],
        requests: 60,
        seed: 0xC4A05,
        settle_timeout_ms: 20_000,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg).expect("daemon stayed reachable");

    assert!(report.passed(), "chaos run failed:\n{}", report.render());
    assert!(
        report.acked_submits > 0,
        "no work admitted:\n{}",
        report.render()
    );
    assert!(report.orphaned > 0, "probe cadence produced no orphans");
    assert_eq!(
        report.unexpected_replies,
        0,
        "garbage/oversized probes must get structured errors:\n{}",
        report.render()
    );
    assert!(report.garbage_probes > 0 && report.oversized_probes > 0);
    // Orphans (and any tasks whose completion raced a lease expiry) must
    // end up dead-lettered rather than lost.
    let (admitted, completed, dead) = report.final_counts;
    assert_eq!(
        admitted,
        completed + dead,
        "settled daemon must be terminal"
    );
    assert!(dead > 0, "orphaned tasks must reach the dead-letter queue");

    handle.stop();
    handle.join();
}

#[test]
fn killed_daemon_recovers_queue_and_counters_from_wal() {
    let testbed = tiny_testbed();
    let dir = wal_dir("restart");
    let app = testbed.perf.names[0].clone();

    // First incarnation: admit four tasks, complete one, then stop
    // without draining — queued and running work is abandoned exactly as
    // in a crash, surviving only in the WAL. Leases are long here so no
    // expiry races the explicit completion below.
    let mut cfg = fast_lease_cfg();
    cfg.machines = 1;
    cfg.slots_per_machine = 1;
    cfg.wal_dir = Some(dir.clone());
    cfg.lease_base_ms = 60_000;
    let handle = start(&testbed, cfg.clone(), NetConfig::default()).expect("first daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    let mut first_task = None;
    for _ in 0..4 {
        match client
            .request(Request::Submit {
                app: app.clone(),
                demand: None,
            })
            .expect("submit")
        {
            Reply::Ok { result, .. } => {
                if first_task.is_none() {
                    first_task = result.get("task").and_then(|v| v.as_u64());
                }
            }
            other => panic!("submit refused: {other:?}"),
        }
    }
    let first_task = first_task.expect("first submit returns a task id");
    let done = client
        .request(Request::Complete {
            task: first_task,
            runtime: 8.0,
            iops: 90.0,
        })
        .expect("complete");
    assert!(
        matches!(done, Reply::Ok { .. }),
        "completion rejected: {done:?}"
    );
    handle.stop();
    handle.join();
    drop(client);

    // Second incarnation on a fresh ephemeral port, same WAL directory,
    // with leases tight enough for the recovered work to drain unaided.
    cfg.lease_base_ms = 150;
    let handle = start(&testbed, cfg, NetConfig::default()).expect("restarted daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("reconnect");

    let (admitted, completed, dead, outstanding) = status_counts(&mut client);
    assert_eq!(admitted, 4, "admissions lost across restart");
    assert_eq!(completed, 1, "completion lost across restart");
    assert_eq!(
        outstanding + completed + dead,
        4,
        "tasks lost or duplicated"
    );

    // Task ids must not be reused across the restart.
    match client
        .request(Request::Submit {
            app: app.clone(),
            demand: None,
        })
        .expect("post-restart submit")
    {
        Reply::Ok { result, .. } => {
            let task = result
                .get("task")
                .and_then(|v| v.as_u64())
                .expect("task id");
            assert!(task > 4, "task id {task} reused after restart");
        }
        other => panic!("post-restart submit refused: {other:?}"),
    }

    // Left alone, the recovered work must reach a terminal state through
    // the lease machinery (this client never completes anything).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (admitted, completed, dead, outstanding) = status_counts(&mut client);
        assert_eq!(
            admitted,
            completed + dead + outstanding,
            "conservation violated"
        );
        if outstanding == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "recovered work never settled");
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.stop();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end failover over real sockets: a leader ships its WAL to a
/// warm follower; killing the leader promotes the follower within the
/// lease TTL with every counter intact, and the new leader keeps
/// admitting with fresh task ids.
#[test]
fn follower_promotes_with_counters_intact_when_leader_dies() {
    use std::sync::atomic::Ordering;

    let testbed = tiny_testbed();
    let app = testbed.perf.names[0].clone();
    let leader_dir = wal_dir("failover-leader");
    let follower_dir = wal_dir("failover-follower");

    // Leader: long leases so nothing expires under the assertions.
    let mut leader_cfg = fast_lease_cfg();
    leader_cfg.wal_dir = Some(leader_dir.clone());
    leader_cfg.lease_base_ms = 60_000;
    let leader = start(&testbed, leader_cfg, NetConfig::default()).expect("leader boots");

    // Warm follower pulling from the leader, with a lease tight enough
    // to promote inside the test but slack enough to survive poll jitter.
    let mut follower_cfg = fast_lease_cfg();
    follower_cfg.wal_dir = Some(follower_dir.clone());
    follower_cfg.replica_of = Some(leader.addr.to_string());
    follower_cfg.repl_ttl_ms = 1_200;
    follower_cfg.repl_poll_ms = 40;
    let follower = start(&testbed, follower_cfg, NetConfig::default()).expect("follower boots");

    // Drive the leader: four admissions, one completion.
    let mut client = Client::connect(&leader.addr.to_string()).expect("connect leader");
    let mut first_task = None;
    for _ in 0..4 {
        match client
            .request(Request::Submit {
                app: app.clone(),
                demand: None,
            })
            .expect("submit")
        {
            Reply::Ok { result, .. } => {
                if first_task.is_none() {
                    first_task = result.get("task").and_then(|v| v.as_u64());
                }
            }
            other => panic!("leader refused submit: {other:?}"),
        }
    }
    let first_task = first_task.expect("first submit returns a task id");
    let done = client
        .request(Request::Complete {
            task: first_task,
            runtime: 8.0,
            iops: 90.0,
        })
        .expect("complete");
    assert!(
        matches!(done, Reply::Ok { .. }),
        "completion rejected: {done:?}"
    );

    // A mutating request against the follower is redirected, not served.
    let mut fclient = Client::connect(&follower.addr.to_string()).expect("connect follower");
    match fclient
        .request(Request::Submit {
            app: app.clone(),
            demand: None,
        })
        .expect("follower submit roundtrip")
    {
        Reply::Error {
            kind, leader: hint, ..
        } => {
            assert_eq!(
                kind,
                ErrorKind::NotLeader,
                "follower must redirect mutations"
            );
            let hint = hint.expect("not_leader carries a leader hint");
            assert_eq!(
                hint.leader_addr.as_deref(),
                Some(leader.addr.to_string().as_str()),
                "hint must name the live leader"
            );
        }
        other => panic!("follower served a mutation while following: {other:?}"),
    }
    drop(fclient);

    // Wait until every leader record has been shipped and fsync'd on the
    // follower: 5 WAL records (4 admits + 1 completion) and zero lag on
    // the follower's own gauge.
    let metrics = std::sync::Arc::clone(follower.metrics());
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let records = metrics.wal_records.load(Ordering::Relaxed);
        let lag = metrics.repl_lag_frames.load(Ordering::Relaxed);
        if records >= 5 && lag == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never caught up: {records} records, lag {lag}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Kill the leader without draining; the follower's pulls start
    // failing and the lease lapses.
    leader.stop();
    leader.join();
    drop(client);

    // Promotion must land within the TTL plus scheduling slack.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if metrics.repl_role.load(Ordering::Relaxed) == Role::Leader as u8 as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "follower never promoted");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        metrics.repl_epoch.load(Ordering::Relaxed) >= 2,
        "promotion must claim a higher epoch"
    );

    // The promoted node carries the leader's exact counters, conserved.
    let mut client = Client::connect(&follower.addr.to_string()).expect("connect promoted");
    let (admitted, completed, dead, outstanding) = status_counts(&mut client);
    assert_eq!(admitted, 4, "admissions lost across failover");
    assert_eq!(completed, 1, "completion lost across failover");
    assert_eq!(
        outstanding + completed + dead,
        4,
        "tasks lost or duplicated"
    );

    // And serves fresh mutations with ids beyond anything the old leader
    // handed out.
    match client
        .request(Request::Submit {
            app: app.clone(),
            demand: None,
        })
        .expect("post-failover submit")
    {
        Reply::Ok { result, .. } => {
            let task = result
                .get("task")
                .and_then(|v| v.as_u64())
                .expect("task id");
            assert!(task > 4, "task id {task} reused after failover");
        }
        other => panic!("promoted follower refused a submit: {other:?}"),
    }

    // Left alone, recovered and fresh work reaches a terminal state
    // while conservation holds at every observation.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (admitted, completed, dead, outstanding) = status_counts(&mut client);
        assert_eq!(
            admitted,
            completed + dead + outstanding,
            "conservation violated"
        );
        if outstanding == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "post-failover work never settled"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    follower.stop();
    follower.join();
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
