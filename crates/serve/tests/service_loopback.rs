//! Loopback integration tests: boot a real tracond on ephemeral ports and
//! talk to it over TCP.
//!
//! The headline assertion is placement identity — the daemon's placements
//! for a submission sequence must be bit-identical to running the core
//! scheduler in-process on the same sequence — plus backpressure on a full
//! admission queue, graceful drain, malformed-input survival, and the HTTP
//! health/metrics endpoints.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tracon_core::{place_best, ClusterState, ScoringPolicy, Task};
use tracon_dcsim::{AdaptiveObserver, Testbed, TestbedConfig};
use tracon_serve::daemon::start;
use tracon_serve::{Client, ErrorKind, NetConfig, Reply, Request, SchedKind, ServeConfig};

/// Same scale as the serve crate's unit tests: fast to profile, still a
/// real 8-app interference matrix.
fn tiny_testbed() -> Testbed {
    let mut cfg = TestbedConfig::small();
    cfg.calibration_points = 6;
    cfg.time_scale = 0.05;
    Testbed::build(&cfg)
}

fn boot(testbed: &Testbed, cfg: ServeConfig) -> tracon_serve::DaemonHandle {
    start(testbed, cfg, NetConfig::default()).expect("daemon must bind ephemeral ports")
}

fn submit_reply(client: &mut Client, app: &str) -> Reply {
    client
        .request(Request::Submit {
            app: app.to_string(),
            demand: None,
        })
        .expect("submit roundtrip")
}

fn ok_field(reply: &Reply, field: &str) -> f64 {
    match reply {
        Reply::Ok { result, .. } => result
            .get(field)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("reply lacks numeric field '{field}': {result}")),
        Reply::Error { kind, message, .. } => {
            panic!("expected ok reply, got {kind:?}: {message}")
        }
    }
}

#[test]
fn placements_are_identical_to_in_process_scheduler() {
    let testbed = tiny_testbed();
    let cfg = ServeConfig {
        machines: 2,
        slots_per_machine: 2,
        scheduler: SchedKind::Mios,
        ..ServeConfig::default()
    };

    // Reference run: the same construction path the service uses — an
    // adaptive observer seeded from the testbed, its exported predictor
    // behind a scoring policy, and MIOS's per-arrival rule (place_best)
    // replayed over an identical cluster.
    let init_rt: Vec<_> = testbed
        .profiles
        .iter()
        .map(|set| tracon_dcsim::setup::training_data(set, tracon_core::Response::Runtime))
        .collect();
    let init_io: Vec<_> = testbed
        .profiles
        .iter()
        .map(|set| tracon_dcsim::setup::training_data(set, tracon_core::Response::Iops))
        .collect();
    let observer = AdaptiveObserver::new(
        &testbed.predictor,
        &testbed.perf.names,
        cfg.model_kind,
        &init_rt,
        &init_io,
        cfg.monitor,
    );
    let scoring = ScoringPolicy::new_owned(observer.export_predictor(), cfg.objective);
    let mut cluster = ClusterState::new(2, 2, testbed.app_chars.clone());

    // Four submissions fill the four slots exactly; MIOS places each on
    // arrival so every reply carries a placement.
    let sequence: Vec<String> = [0usize, 3, 1, 5]
        .iter()
        .map(|&i| testbed.perf.names[i].clone())
        .collect();
    let expected: Vec<(usize, usize)> = sequence
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let app = cluster.registry().expect_id(name);
            let vm = place_best(Task::new(i as u64 + 1, app), &mut cluster, &scoring)
                .expect("reference cluster has a free slot")
                .vm;
            (vm.machine, vm.slot)
        })
        .collect();

    let handle = boot(&testbed, cfg);
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    for (name, want) in sequence.iter().zip(&expected) {
        let reply = submit_reply(&mut client, name);
        assert_eq!(
            ok_field(&reply, "machine") as usize,
            want.0,
            "machine diverged for {name}"
        );
        assert_eq!(
            ok_field(&reply, "slot") as usize,
            want.1,
            "slot diverged for {name}"
        );
    }

    handle.stop();
    handle.join();
}

#[test]
fn full_admission_queue_yields_backpressure_with_retry_hint() {
    let testbed = tiny_testbed();
    let app = testbed.perf.names[0].clone();
    let cfg = ServeConfig {
        machines: 1,
        slots_per_machine: 1,
        // A batch window far larger than the queue keeps everything
        // queued, and a distant deadline keeps the ticker out of the way.
        scheduler: SchedKind::Mibs(64),
        queue_capacity: 2,
        batch_deadline_ms: 120_000,
        retry_after_ms: 75,
        ..ServeConfig::default()
    };
    let handle = boot(&testbed, cfg);
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    for _ in 0..2 {
        match submit_reply(&mut client, &app) {
            Reply::Ok { .. } => {}
            other => panic!("expected admission, got {other:?}"),
        }
    }
    match submit_reply(&mut client, &app) {
        Reply::Error {
            kind,
            retry_after_ms,
            ..
        } => {
            assert_eq!(kind, ErrorKind::Backpressure);
            assert_eq!(retry_after_ms, Some(75), "rejection must carry the hint");
        }
        other => panic!("expected backpressure, got {other:?}"),
    }

    handle.stop();
    handle.join();
}

#[test]
fn drain_refuses_new_work_then_exits_when_idle() {
    let testbed = tiny_testbed();
    let app = testbed.perf.names[2].clone();
    let cfg = ServeConfig {
        machines: 1,
        slots_per_machine: 2,
        scheduler: SchedKind::Mios,
        ..ServeConfig::default()
    };
    let handle = boot(&testbed, cfg);
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    let first = submit_reply(&mut client, &app);
    let task = ok_field(&first, "task") as u64;

    let drain = client.request(Request::Drain).expect("drain roundtrip");
    match drain {
        Reply::Ok { ref result, .. } => {
            assert_eq!(result.get("running").and_then(|v| v.as_u64()), Some(1));
        }
        ref other => panic!("expected drain ack, got {other:?}"),
    }

    // Draining daemons must refuse fresh work with a structured error.
    match submit_reply(&mut client, &app) {
        Reply::Error { kind, .. } => assert_eq!(kind, ErrorKind::Draining),
        other => panic!("expected draining refusal, got {other:?}"),
    }

    // Completing the last task empties the daemon; it must shut itself
    // down and join with every thread accounted for.
    let done = client
        .request(Request::Complete {
            task,
            runtime: 12.5,
            iops: 80.0,
        })
        .expect("complete roundtrip");
    assert!(
        matches!(done, Reply::Ok { .. }),
        "completion rejected: {done:?}"
    );
    handle.join();
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let testbed = tiny_testbed();
    let handle = boot(&testbed, ServeConfig::default());
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    for garbage in ["{not json", "[1,2,3]", "\"just a string\"", "{\"v\":1}"] {
        let raw = client.raw_roundtrip(garbage).expect("daemon must reply");
        let reply = tracon_serve::decode_reply(&raw).expect("reply must decode");
        match reply {
            Reply::Error { kind, .. } => assert!(
                matches!(
                    kind,
                    ErrorKind::Malformed | ErrorKind::UnknownOp | ErrorKind::BadField
                ),
                "unexpected kind {kind:?} for {garbage:?}"
            ),
            other => panic!("expected error for {garbage:?}, got {other:?}"),
        }
    }

    // The connection thread must still be alive and serving.
    let status = client
        .request(Request::Status)
        .expect("status after garbage");
    assert!(matches!(status, Reply::Ok { .. }));

    handle.stop();
    handle.join();
}

#[test]
fn http_endpoints_report_health_and_nonzero_metrics() {
    let testbed = tiny_testbed();
    let app = testbed.perf.names[4].clone();
    let handle = boot(&testbed, ServeConfig::default());
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    submit_reply(&mut client, &app);

    let healthz = http_get(&handle.http_addr.to_string(), "/healthz");
    assert!(healthz.starts_with("HTTP/1.1 200"), "healthz: {healthz}");
    assert!(healthz.contains("\"ok\":true"), "healthz body: {healthz}");

    let metrics = http_get(&handle.http_addr.to_string(), "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "metrics: {metrics}");
    assert!(
        metrics.contains("tracond_admissions_total 1"),
        "admissions missing: {metrics}"
    );
    assert!(
        metrics.contains("tracond_dispatch_latency_seconds_bucket"),
        "histogram missing: {metrics}"
    );

    let missing = http_get(&handle.http_addr.to_string(), "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "missing: {missing}");

    handle.stop();
    handle.join();
}

#[test]
fn live_completions_trigger_monitor_rebuilds() {
    let testbed = tiny_testbed();
    let app = testbed.perf.names[0].clone();
    let mut cfg = ServeConfig {
        machines: 1,
        slots_per_machine: 1,
        scheduler: SchedKind::Mios,
        ..ServeConfig::default()
    };
    cfg.monitor.rebuild_every = 2;
    let handle = boot(&testbed, cfg);
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    let mut saw_rebuild = false;
    for round in 0..6u32 {
        let placed = submit_reply(&mut client, &app);
        let task = ok_field(&placed, "task") as u64;
        let done = client
            .request(Request::Complete {
                task,
                // Slowly drifting runtimes give the monitor fresh signal.
                runtime: 10.0 + f64::from(round) * 3.0,
                iops: 100.0,
            })
            .expect("complete roundtrip");
        if let Reply::Ok { result, .. } = &done {
            if result.get("rebuilt").and_then(|v| v.as_bool()) == Some(true) {
                saw_rebuild = true;
            }
        }
    }
    assert!(saw_rebuild, "6 completions at rebuild_every=2 must rebuild");

    handle.stop();
    handle.join();
}

/// Minimal HTTP client: one GET, read to EOF (the daemon closes).
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: tracond\r\n\r\n").as_bytes())
        .expect("http write");
    let mut body = Vec::new();
    stream.read_to_end(&mut body).expect("http read");
    String::from_utf8_lossy(&body).into_owned()
}
