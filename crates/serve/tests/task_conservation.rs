//! Property test: the task-conservation invariant — every admitted task
//! is in exactly one of queued/delayed/running/completed/dead-lettered —
//! holds under random interleavings of submits, completions, lease
//! expiries, backoff promotion, and crash-recovery cycles through the
//! WAL, and all work eventually reaches a terminal state.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use tracon_dcsim::{Testbed, TestbedConfig};
use tracon_serve::repl::sim::{SimCluster, SimKnobs};
use tracon_serve::shard::{route_app, shard_machines};
use tracon_serve::{recover_dir, Metrics, Role, SchedKind, ServeConfig, Service, StatusSnapshot};

/// One shared testbed: profiling it dominates the cost of a case.
fn testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| {
        let mut cfg = TestbedConfig::small();
        cfg.calibration_points = 6;
        cfg.time_scale = 0.05;
        Testbed::build(&cfg)
    })
}

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tracon-conserve-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tight leases and budgets so a short virtual-time jump drives tasks
/// through requeue and into the dead-letter queue.
fn cfg(dir: &Path) -> ServeConfig {
    ServeConfig {
        machines: 2,
        slots_per_machine: 2,
        scheduler: SchedKind::Mios,
        queue_capacity: 8,
        lease_base_ms: 40,
        lease_per_predicted_s_ms: 0,
        max_attempts: 2,
        backoff_base_ms: 5,
        backoff_cap_ms: 20,
        wal_dir: Some(dir.to_path_buf()),
        wal_snapshot_every: 16,
        ..ServeConfig::default()
    }
}

fn open(dir: &Path, now: Instant) -> Service {
    Service::open(testbed(), cfg(dir), Arc::new(Metrics::new()), now)
        .expect("service must open its WAL")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_holds_under_random_interleavings(
        ops in proptest::collection::vec((0u8..5, 0u16..1024), 1..40)
    ) {
        let tb = testbed();
        let napps = tb.perf.names.len();
        let dir = fresh_dir();
        let mut now = Instant::now();
        let mut svc = open(&dir, now);
        let mut ids: Vec<u64> = Vec::new();
        for (op, x) in ops {
            let x = x as usize;
            match op {
                // Submit: backpressure refusals are part of the model.
                0 => {
                    let app = tb.perf.names[x % napps].clone();
                    if let Ok(admitted) = svc.submit(&app, now) {
                        ids.push(admitted.task);
                    }
                }
                // Complete a known task; NotRunning refusals (still
                // queued, already done, lease already expired) are fine.
                1 => {
                    if !ids.is_empty() {
                        let task = ids[x % ids.len()];
                        let _ = svc.complete(task, 5.0 + (x % 7) as f64, 80.0, now);
                    }
                }
                // Small time step: may promote backoffs, may expire some
                // leases.
                2 => {
                    now += Duration::from_millis((x % 30 + 1) as u64);
                    svc.tick(now);
                }
                // Crash: drop the service with no shutdown path; the next
                // incarnation recovers from the WAL alone.
                3 => {
                    drop(svc);
                    now += Duration::from_millis(1);
                    svc = open(&dir, now);
                }
                // Jump past every lease and backoff deadline.
                _ => {
                    now += Duration::from_millis(2_000);
                    svc.tick(now);
                }
            }
            let st = svc.status();
            prop_assert!(
                st.conserved(),
                "op {} broke conservation: admitted {} = completed {} + dead {} + queued {} + delayed {} + running {}",
                op, st.admitted, st.completed, st.dead_lettered, st.queued, st.delayed, st.running
            );
        }
        // Left alone, the lease machinery must drive every survivor to a
        // terminal state (completed earlier, or dead-lettered now).
        for _ in 0..64 {
            now += Duration::from_millis(2_000);
            svc.tick(now);
            if svc.status().queued + svc.status().delayed + svc.status().running == 0 {
                break;
            }
        }
        let st = svc.status();
        prop_assert!(st.conserved());
        prop_assert_eq!(
            st.queued + st.delayed + st.running, 0,
            "work wedged: queued {} delayed {} running {}",
            st.queued, st.delayed, st.running
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash at an arbitrary point never loses or duplicates a task:
    /// the recovered counters match a straight replay of what happened.
    #[test]
    fn recovery_preserves_admission_count(
        submits in 1usize..12,
        completes in 0usize..12,
    ) {
        let tb = testbed();
        let dir = fresh_dir();
        let now = Instant::now();
        let mut svc = open(&dir, now);
        let mut placed: Vec<u64> = Vec::new();
        for i in 0..submits {
            let app = tb.perf.names[i % tb.perf.names.len()].clone();
            if let Ok(admitted) = svc.submit(&app, now) {
                if admitted.placement.is_some() {
                    placed.push(admitted.task);
                }
            }
        }
        let mut completed = 0u64;
        for task in placed.iter().take(completes) {
            if svc.complete(*task, 6.0, 90.0, now).is_ok() {
                completed += 1;
            }
        }
        let before = svc.status();
        drop(svc);

        let svc = open(&dir, Instant::now());
        let after = svc.status();
        prop_assert!(after.conserved());
        prop_assert_eq!(after.admitted, before.admitted, "admissions changed");
        prop_assert_eq!(after.completed, completed, "completions changed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Boot a sharded fleet against one WAL directory the way the daemon
/// does: build the services, recover every shard file, merge, re-home,
/// adopt, and snapshot under the new layout.
fn open_shards(dir: &Path, shards: usize, now: Instant) -> Vec<Service> {
    let tb = testbed();
    let mut base = cfg(dir);
    base.machines = 3; // room for up to 3 single-machine shards
    let slices = shard_machines(base.machines, shards);
    let mut services: Vec<Service> = slices
        .iter()
        .enumerate()
        .map(|(shard, &(machine_base, count))| {
            let mut shard_cfg = base.clone();
            shard_cfg.machines = count;
            shard_cfg.shards = shards;
            Service::new_shard(
                tb,
                shard_cfg,
                Arc::new(Metrics::with_shards(shards)),
                shard,
                shards,
                machine_base,
            )
        })
        .collect();
    let route = {
        let probe = &services[0];
        let map: std::collections::HashMap<String, usize> = probe
            .app_list()
            .iter()
            .filter_map(|name| {
                probe
                    .app_id(name)
                    .map(|id| (name.clone(), route_app(id, shards)))
            })
            .collect();
        move |name: &str| map.get(name).copied()
    };
    let (wals, recovery) =
        recover_dir(dir, shards, base.wal_snapshot_every, &route).expect("recover shards");
    for (shard, wal) in wals.into_iter().enumerate() {
        let homed: Vec<_> = recovery
            .tasks
            .iter()
            .filter(|t| t.home == shard)
            .map(|t| t.rec.clone())
            .collect();
        services[shard].attach_wal(wal);
        services[shard].adopt_recovered(&homed, now);
        services[shard].align_next_task_id(recovery.next_task_id);
        services[shard].write_snapshot();
    }
    services
}

/// Sum per-shard snapshots the way the reactor's status fan-in does.
fn summed(services: &[Service]) -> StatusSnapshot {
    let mut total = services[0].status();
    for svc in &services[1..] {
        let part = svc.status();
        total.queued += part.queued;
        total.delayed += part.delayed;
        total.running += part.running;
        total.completed += part.completed;
        total.dead_lettered += part.dead_lettered;
        total.admitted += part.admitted;
        total.rejected += part.rejected;
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The sharded generalization: conservation of the *summed* snapshot
    /// survives random cross-shard steals (committed and cut mid-handoff
    /// by a crash), whole-fleet crash/recover cycles, and shard-count
    /// changes across restarts.
    #[test]
    fn summed_conservation_survives_steals_and_shard_crashes(
        ops in proptest::collection::vec((0u8..6, 0u16..1024), 1..36),
        initial_shards in 1usize..3,
    ) {
        let tb = testbed();
        let napps = tb.perf.names.len();
        let dir = fresh_dir();
        let mut now = Instant::now();
        let mut shards = initial_shards;
        let mut services = open_shards(&dir, shards, now);
        for (op, x) in ops {
            let x = x as usize;
            match op {
                // Submit, routed by application hash like the reactor.
                0 => {
                    let app = tb.perf.names[x % napps].clone();
                    let shard = services[0]
                        .app_id(&app)
                        .map(|id| route_app(id, shards))
                        .unwrap_or(0);
                    let _ = services[shard].submit(&app, now);
                }
                // Complete a task on whichever shard knows it.
                1 => {
                    let task = (x % 40 + 1) as u64;
                    for svc in services.iter_mut() {
                        if svc.task_info(task).is_some() {
                            let _ = svc.complete(task, 5.0 + (x % 7) as f64, 80.0, now);
                            break;
                        }
                    }
                }
                // Time step on every shard.
                2 => {
                    now += Duration::from_millis((x % 30 + 1) as u64);
                    for svc in services.iter_mut() {
                        svc.tick(now);
                    }
                }
                // A committed steal: donor pops and tombstones, recipient
                // adopts — the invariant must hold again afterwards.
                3 if shards > 1 => {
                    let from = x % shards;
                    let to = (x / 7 + 1 + from) % shards;
                    if from != to {
                        let stolen = services[from].steal_queued(x % 3 + 1, to);
                        services[to].inject_stolen(&stolen, from, now);
                    }
                }
                // Crash mid-steal: the donor logged the migrate but the
                // recipient never adopted. Recovery must resurrect the
                // tasks from the tombstones exactly once.
                4 if shards > 1 => {
                    let from = x % shards;
                    let to = (from + 1) % shards;
                    let _cut = services[from].steal_queued(x % 3 + 1, to);
                    drop(services);
                    now += Duration::from_millis(1);
                    services = open_shards(&dir, shards, now);
                }
                // Whole-fleet crash/recover, possibly with a new count.
                _ => {
                    drop(services);
                    now += Duration::from_millis(1);
                    shards = x % 3 + 1;
                    services = open_shards(&dir, shards, now);
                }
            }
            let st = summed(&services);
            prop_assert!(
                st.conserved(),
                "op {} broke summed conservation over {} shards: admitted {} = completed {} + dead {} + queued {} + delayed {} + running {}",
                op, shards, st.admitted, st.completed, st.dead_lettered, st.queued, st.delayed, st.running
            );
        }
        // Every survivor must still reach a terminal state.
        for _ in 0..64 {
            now += Duration::from_millis(2_000);
            for svc in services.iter_mut() {
                svc.tick(now);
            }
            let st = summed(&services);
            if st.queued + st.delayed + st.running == 0 {
                break;
            }
        }
        let st = summed(&services);
        prop_assert!(st.conserved());
        prop_assert_eq!(
            st.queued + st.delayed + st.running, 0,
            "work wedged: queued {} delayed {} running {}",
            st.queued, st.delayed, st.running
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The replicated generalization: conservation survives a full
    /// failover. A leader takes random submit/complete/step traffic while
    /// shipping its WAL to a warm follower over a lossy, duplicating,
    /// reordering virtual link (optionally through a snapshot install
    /// when compaction outruns the follower); the leader is then killed
    /// at an arbitrary point, the follower promotes after the lease
    /// lapses, and the promoted node must hold exactly the leader's
    /// counters — conserved — and keep the invariant under fresh
    /// post-failover traffic. When the old leader reconnects stale, the
    /// promoted epoch must fence it.
    #[test]
    fn conservation_survives_replicated_failover(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..3, 0u16..512), 1..28),
        loss_permille in 0u32..220,
        shards in 1usize..3,
        tight_snapshots in any::<bool>(),
        stale_reconnect in any::<bool>(),
    ) {
        let knobs = SimKnobs {
            drop_permille: loss_permille,
            dup_permille: loss_permille,
            ..SimKnobs::default()
        };
        let mut sim = SimCluster::new(seed, shards, 200, 20, knobs);
        if tight_snapshots {
            // Compaction outruns a fresh follower: force the snapshot
            // install path rather than a pure frame replay.
            sim.set_snapshot_every(4);
        }
        let mut tasks: Vec<u64> = Vec::new();
        for (op, x) in ops {
            let x = x as usize;
            match op {
                0 => {
                    if let Some(task) = sim.submit_any() {
                        tasks.push(task);
                    }
                }
                1 => {
                    if !tasks.is_empty() {
                        let task = tasks[x % tasks.len()];
                        sim.complete(task);
                    }
                }
                _ => sim.step((x % 40 + 1) as u64),
            }
            prop_assert!(sim.leader_conserved(), "leader broke conservation mid-run");
        }
        // Heal the link and let the follower catch up — a failover can
        // only preserve what the leader actually shipped.
        sim.set_knobs(SimKnobs::default());
        prop_assert!(sim.run_until_synced(20_000), "follower never caught up");
        let shipped = sim.leader_counts();
        let old_epoch = sim.leader_epoch();

        sim.kill_leader();
        prop_assert!(sim.run_until_lease_lapse(5_000), "lease never lapsed");
        let mut promoted = sim.promote_follower();
        prop_assert!(promoted.epoch > old_epoch, "promotion must outrank the old leader");
        prop_assert!(promoted.conserved(), "promoted node broke conservation");
        prop_assert_eq!(promoted.counts(), shipped, "failover lost or invented tasks");

        if stale_reconnect {
            // The dead leader comes back with its old state and receives
            // the promoted node's lease claim: it must fence, and refuse
            // mutations from then on.
            sim.revive_leader();
            let role = sim.deliver_lease_to_leader(promoted.epoch, "promoted:1");
            prop_assert_eq!(role, Role::Fenced, "stale leader not fenced");
            prop_assert!(sim.submit_any().is_none(), "fenced leader accepted a submit");
        }

        // The new leader keeps the invariant under fresh traffic.
        let mut fresh: Vec<u64> = Vec::new();
        for i in 0..6u64 {
            if let Some(task) = promoted.submit(seed.wrapping_add(i)) {
                fresh.push(task);
            }
        }
        for task in fresh.iter().step_by(2) {
            promoted.complete(*task);
        }
        prop_assert!(promoted.conserved(), "post-failover traffic broke conservation");
    }
}
