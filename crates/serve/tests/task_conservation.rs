//! Property test: the task-conservation invariant — every admitted task
//! is in exactly one of queued/delayed/running/completed/dead-lettered —
//! holds under random interleavings of submits, completions, lease
//! expiries, backoff promotion, and crash-recovery cycles through the
//! WAL, and all work eventually reaches a terminal state.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use tracon_dcsim::{Testbed, TestbedConfig};
use tracon_serve::{Metrics, SchedKind, ServeConfig, Service};

/// One shared testbed: profiling it dominates the cost of a case.
fn testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| {
        let mut cfg = TestbedConfig::small();
        cfg.calibration_points = 6;
        cfg.time_scale = 0.05;
        Testbed::build(&cfg)
    })
}

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tracon-conserve-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tight leases and budgets so a short virtual-time jump drives tasks
/// through requeue and into the dead-letter queue.
fn cfg(dir: &Path) -> ServeConfig {
    ServeConfig {
        machines: 2,
        slots_per_machine: 2,
        scheduler: SchedKind::Mios,
        queue_capacity: 8,
        lease_base_ms: 40,
        lease_per_predicted_s_ms: 0,
        max_attempts: 2,
        backoff_base_ms: 5,
        backoff_cap_ms: 20,
        wal_dir: Some(dir.to_path_buf()),
        wal_snapshot_every: 16,
        ..ServeConfig::default()
    }
}

fn open(dir: &Path, now: Instant) -> Service {
    Service::open(testbed(), cfg(dir), Arc::new(Metrics::new()), now)
        .expect("service must open its WAL")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_holds_under_random_interleavings(
        ops in proptest::collection::vec((0u8..5, 0u16..1024), 1..40)
    ) {
        let tb = testbed();
        let napps = tb.perf.names.len();
        let dir = fresh_dir();
        let mut now = Instant::now();
        let mut svc = open(&dir, now);
        let mut ids: Vec<u64> = Vec::new();
        for (op, x) in ops {
            let x = x as usize;
            match op {
                // Submit: backpressure refusals are part of the model.
                0 => {
                    let app = tb.perf.names[x % napps].clone();
                    if let Ok(admitted) = svc.submit(&app, now) {
                        ids.push(admitted.task);
                    }
                }
                // Complete a known task; NotRunning refusals (still
                // queued, already done, lease already expired) are fine.
                1 => {
                    if !ids.is_empty() {
                        let task = ids[x % ids.len()];
                        let _ = svc.complete(task, 5.0 + (x % 7) as f64, 80.0, now);
                    }
                }
                // Small time step: may promote backoffs, may expire some
                // leases.
                2 => {
                    now += Duration::from_millis((x % 30 + 1) as u64);
                    svc.tick(now);
                }
                // Crash: drop the service with no shutdown path; the next
                // incarnation recovers from the WAL alone.
                3 => {
                    drop(svc);
                    now += Duration::from_millis(1);
                    svc = open(&dir, now);
                }
                // Jump past every lease and backoff deadline.
                _ => {
                    now += Duration::from_millis(2_000);
                    svc.tick(now);
                }
            }
            let st = svc.status();
            prop_assert!(
                st.conserved(),
                "op {} broke conservation: admitted {} = completed {} + dead {} + queued {} + delayed {} + running {}",
                op, st.admitted, st.completed, st.dead_lettered, st.queued, st.delayed, st.running
            );
        }
        // Left alone, the lease machinery must drive every survivor to a
        // terminal state (completed earlier, or dead-lettered now).
        for _ in 0..64 {
            now += Duration::from_millis(2_000);
            svc.tick(now);
            if svc.status().queued + svc.status().delayed + svc.status().running == 0 {
                break;
            }
        }
        let st = svc.status();
        prop_assert!(st.conserved());
        prop_assert_eq!(
            st.queued + st.delayed + st.running, 0,
            "work wedged: queued {} delayed {} running {}",
            st.queued, st.delayed, st.running
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash at an arbitrary point never loses or duplicates a task:
    /// the recovered counters match a straight replay of what happened.
    #[test]
    fn recovery_preserves_admission_count(
        submits in 1usize..12,
        completes in 0usize..12,
    ) {
        let tb = testbed();
        let dir = fresh_dir();
        let now = Instant::now();
        let mut svc = open(&dir, now);
        let mut placed: Vec<u64> = Vec::new();
        for i in 0..submits {
            let app = tb.perf.names[i % tb.perf.names.len()].clone();
            if let Ok(admitted) = svc.submit(&app, now) {
                if admitted.placement.is_some() {
                    placed.push(admitted.task);
                }
            }
        }
        let mut completed = 0u64;
        for task in placed.iter().take(completes) {
            if svc.complete(*task, 6.0, 90.0, now).is_ok() {
                completed += 1;
            }
        }
        let before = svc.status();
        drop(svc);

        let svc = open(&dir, Instant::now());
        let after = svc.status();
        prop_assert!(after.conserved());
        prop_assert_eq!(after.admitted, before.admitted, "admissions changed");
        prop_assert_eq!(after.completed, completed, "completions changed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
