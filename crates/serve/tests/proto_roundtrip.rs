//! Property tests of the tracond wire codec: encode→decode identity for
//! every request and reply shape, and totality of the decoder — malformed
//! lines always yield a structured error, never a panic.

use proptest::prelude::*;
use tracon_core::{DimVec, ResourceDim};
use tracon_serve::json::{self, n, obj, s, Value};
use tracon_serve::proto::{
    decode_reply, decode_request, encode_reply, encode_request, Envelope, ErrorKind, LeaderHint,
    Reply, Request,
};

/// Characters chosen to stress the JSON string escaper: quotes,
/// backslashes, control characters, and multibyte UTF-8.
const ALPHABET: [char; 20] = [
    'a', 'b', 'z', 'A', '0', '9', '_', '-', ' ', '"', '\\', '/', '\n', '\t', '\u{1}', 'é', 'π',
    '中', '🦀', '\u{7f}',
];

fn wire_string(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..ALPHABET.len(), 0..max_len)
        .prop_map(|idxs| idxs.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Task ids stay below 2^53 — the protocol carries integers as JSON
/// numbers, so anything larger would not be representable on the wire.
fn task_id() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

/// An optional v2 demand map: any subset of the resource dimensions with
/// finite non-negative values (`None` = legacy submit).
fn demand() -> impl Strategy<Value = Option<DimVec>> {
    proptest::collection::vec((0usize..ResourceDim::ALL.len(), 0.0f64..1.0e9), 0..4).prop_map(
        |lanes| {
            if lanes.is_empty() {
                None
            } else {
                let mut d = DimVec::new();
                for (i, v) in lanes {
                    d.set(ResourceDim::ALL[i], v);
                }
                Some(d)
            }
        },
    )
}

fn request() -> impl Strategy<Value = Request> {
    (
        0u8..8,
        wire_string(12),
        task_id(),
        (-1.0e9f64..1.0e9, 0.0f64..1.0e9),
        demand(),
    )
        .prop_map(|(op, text, task, (runtime, iops), demand)| {
            // Submits and repl ops require non-empty name/address strings.
            let nonempty = if text.is_empty() {
                "x".to_string()
            } else {
                text
            };
            match op {
                0 => Request::Submit {
                    app: nonempty,
                    demand,
                },
                1 => Request::Complete {
                    task,
                    runtime,
                    iops,
                },
                2 => Request::Status,
                3 => Request::TaskInfo { task },
                4 => Request::Drain,
                5 => Request::ReplPull {
                    epoch: task,
                    shard: (task % 64) as usize,
                    cursor: task / 2,
                    addr: nonempty,
                    ttl_ms: task % 5_000,
                },
                6 => Request::ReplLease {
                    epoch: task,
                    leader_addr: nonempty,
                },
                _ => Request::Shutdown,
            }
        })
}

fn request_id() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), wire_string(10)).prop_map(|(some, text)| some.then_some(text))
}

/// An op-specific result payload like the ones the daemon actually
/// builds: flat objects of strings, numbers, bools, and nulls.
fn result_payload() -> impl Strategy<Value = Value> {
    proptest::collection::vec((0usize..26, 0u8..4, wire_string(8), 0u64..(1 << 53)), 0..6).prop_map(
        |fields| {
            let mut pairs: Vec<(String, Value)> = Vec::new();
            for (key_idx, tag, text, num) in fields {
                let key = format!("k{key_idx}");
                // Later duplicates would be dropped by get(); keep keys unique.
                if pairs.iter().any(|(k, _)| *k == key) {
                    continue;
                }
                let value = match tag {
                    0 => s(text),
                    1 => n(num as f64),
                    2 => Value::Bool(num % 2 == 0),
                    _ => Value::Null,
                };
                pairs.push((key, value));
            }
            Value::Obj(pairs)
        },
    )
}

fn error_kind() -> impl Strategy<Value = ErrorKind> {
    (0usize..10).prop_map(|i| {
        [
            ErrorKind::Malformed,
            ErrorKind::BadVersion,
            ErrorKind::UnknownOp,
            ErrorKind::BadField,
            ErrorKind::Backpressure,
            ErrorKind::Draining,
            ErrorKind::UnknownApp,
            ErrorKind::UnknownTask,
            ErrorKind::FrameTooLarge,
            ErrorKind::NotLeader,
        ][i]
    })
}

/// An optional `not_leader` redirect hint, with and without a known
/// leader address.
fn leader_hint() -> impl Strategy<Value = Option<LeaderHint>> {
    (0u8..3, wire_string(12), task_id()).prop_map(|(tag, addr, epoch)| match tag {
        0 => None,
        1 => Some(LeaderHint {
            leader_addr: None,
            epoch,
        }),
        _ => Some(LeaderHint {
            leader_addr: Some(addr),
            epoch,
        }),
    })
}

fn reply() -> impl Strategy<Value = Reply> {
    (
        request_id(),
        result_payload(),
        (error_kind(), wire_string(16), any::<bool>(), task_id()),
        leader_hint(),
        any::<bool>(),
    )
        .prop_map(
            |(id, result, (kind, message, with_retry, retry), leader, ok)| {
                if ok {
                    Reply::Ok { id, result }
                } else {
                    Reply::Error {
                        id,
                        kind,
                        message,
                        retry_after_ms: with_retry.then_some(retry),
                        leader,
                    }
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Requests survive the wire bit-identically.
    #[test]
    fn request_roundtrips(id in request_id(), req in request()) {
        let envelope = Envelope { id, request: req };
        let line = encode_request(&envelope);
        let back = decode_request(&line);
        prop_assert_eq!(back, Ok(envelope));
    }

    /// Replies survive the wire bit-identically.
    #[test]
    fn reply_roundtrips(r in reply()) {
        let line = encode_reply(&r);
        let back = decode_reply(&line);
        prop_assert_eq!(back, Ok(r));
    }

    /// The decoder is total: any line of printable noise produces either a
    /// valid envelope or a structured error whose reply also encodes and
    /// decodes — never a panic.
    #[test]
    fn arbitrary_lines_never_panic_the_decoder(line in wire_string(64)) {
        match decode_request(&line) {
            Ok(_) => {}
            Err(e) => {
                let reply_line = encode_reply(&e.into_reply());
                let decoded = decode_reply(&reply_line);
                prop_assert!(decoded.is_ok(), "error reply must decode: {:?}", decoded);
            }
        }
    }

    /// Same totality for raw JSON documents that are valid JSON but not
    /// valid protocol: wrong types, wrong version, junk ops.
    #[test]
    fn near_miss_documents_get_structured_errors(
        version in 0u64..4,
        op in wire_string(8),
        task in task_id(),
    ) {
        let line = obj(vec![
            ("v", n(version as f64)),
            ("op", s(op)),
            ("task", n(task as f64)),
        ])
        .to_string();
        match decode_request(&line) {
            Ok(envelope) => {
                // Only a well-formed op at the right version may decode.
                prop_assert_eq!(json::parse(&encode_request(&envelope)).is_ok(), true);
            }
            Err(e) => {
                let reply_line = encode_reply(&e.into_reply());
                prop_assert!(decode_reply(&reply_line).is_ok());
            }
        }
    }

    /// The JSON layer itself roundtrips the payload values the protocol
    /// uses, including awkward strings.
    #[test]
    fn json_value_roundtrips(text in wire_string(24), num in -1.0e12f64..1.0e12) {
        let doc = obj(vec![("text", s(text)), ("num", n(num))]);
        let parsed = json::parse(&doc.to_string());
        prop_assert_eq!(parsed, Ok(doc));
    }
}
