//! Sharding-layer tests: the shards=1 reactor daemon must be
//! byte-identical to the pre-refactor single-service path, rendezvous
//! routing must be stable under shard-count changes, and a multi-shard
//! daemon must keep one coherent, conserved view over TCP.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use proptest::prelude::*;
use tracon_dcsim::{Testbed, TestbedConfig};
use tracon_serve::json::{n, obj, s, Value};
use tracon_serve::shard::{route_app, route_key, route_name, stride_shard};
use tracon_serve::wal::{shard_log_name, WalRecord};
use tracon_serve::{
    daemon, proto, recover_dir, Client, Envelope, Metrics, NetConfig, Reply, Request, SchedKind,
    ServeConfig, Service, Wal,
};

fn testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| {
        let mut cfg = TestbedConfig::small();
        cfg.calibration_points = 6;
        cfg.time_scale = 0.05;
        Testbed::build(&cfg)
    })
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        machines: 2,
        slots_per_machine: 2,
        scheduler: SchedKind::Mios,
        ..ServeConfig::default()
    }
}

/// Render the submit reply the pre-refactor daemon produced, straight
/// from a directly driven [`Service`].
fn expected_submit_line(svc: &mut Service, id: &str, app: &str, now: Instant) -> String {
    let reply = match svc.submit(app, now) {
        Ok(admitted) => {
            let result = match admitted.placement {
                Some((vm, score, runtime)) => obj(vec![
                    ("task", n(admitted.task as f64)),
                    ("state", s("placed")),
                    ("machine", n(vm.machine as f64)),
                    ("slot", n(vm.slot as f64)),
                    ("predicted_score", n(score)),
                    ("predicted_runtime", n(runtime)),
                ]),
                None => obj(vec![
                    ("task", n(admitted.task as f64)),
                    ("state", s("queued")),
                    ("depth", n(admitted.depth as f64)),
                ]),
            };
            Reply::ok(Some(id.to_string()), result)
        }
        Err(refusal) => panic!("reference refused {app}: {refusal:?}"),
    };
    proto::encode_reply(&reply)
}

/// The acceptance gate for the refactor: the same submit stream through
/// `--shards 1` yields byte-identical placement replies to a directly
/// driven single service — same task ids, same machines, same scores,
/// same JSON field order.
#[test]
fn shards_1_placement_stream_is_byte_identical_to_the_single_service_path() {
    let tb = testbed();
    let mut reference = Service::new(tb, base_cfg(), Arc::new(Metrics::new()));

    let cfg = ServeConfig {
        shards: 1,
        ..base_cfg()
    };
    let handle = daemon::start(tb, cfg, NetConfig::default()).expect("daemon starts");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    let napps = tb.perf.names.len();
    // Enough submissions to fill all four slots and overflow into the
    // queue, so both the `placed` and `queued` render paths are compared.
    let now = Instant::now();
    for i in 0..8usize {
        let app = tb.perf.names[[0, 3, 1, 2, 0, 1, 3, 2][i % 8] % napps].clone();
        let id = format!("ident-{i}");
        let expected = expected_submit_line(&mut reference, &id, &app, now);
        let request_line = proto::encode_request(&Envelope {
            id: Some(id),
            request: Request::Submit { app, demand: None },
        });
        let got = client.raw_roundtrip(&request_line).expect("roundtrip");
        assert_eq!(
            got, expected,
            "submit {i} diverged from the single-service path"
        );
    }

    handle.stop();
    handle.join();
}

/// A 2-shard daemon over TCP: strided task ids from distinct shards,
/// aggregated status that sums to a conserved whole, completions routed
/// back to the issuing shard, and task_info answered across shards.
#[test]
fn multi_shard_daemon_keeps_one_conserved_view() {
    let tb = testbed();
    let cfg = ServeConfig {
        machines: 4,
        slots_per_machine: 2,
        scheduler: SchedKind::Mios,
        shards: 2,
        ..ServeConfig::default()
    };
    let handle = daemon::start(tb, cfg, NetConfig::default()).expect("daemon starts");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    // Which shards the submitted apps hash to (a fixed property of the
    // rendezvous hash — typically both, but derived rather than assumed).
    let reference = Service::new(tb, base_cfg(), Arc::new(Metrics::new()));
    let mut expected_shards = [false; 2];
    for name in tb.perf.names.iter() {
        let id = reference.app_id(name).expect("profiled app interns");
        expected_shards[route_app(id, 2)] = true;
    }

    let mut placed: Vec<u64> = Vec::new();
    let mut shards_seen = [false; 2];
    for i in 0..8usize {
        let app = tb.perf.names[i % tb.perf.names.len()].clone();
        match client
            .request(Request::Submit { app, demand: None })
            .expect("submit")
        {
            Reply::Ok { result, .. } => {
                let task = result.get("task").and_then(Value::as_u64).expect("task id");
                shards_seen[stride_shard(task, 2)] = true;
                if result.get("state").and_then(Value::as_str) == Some("placed") {
                    placed.push(task);
                }
            }
            Reply::Error { message, .. } => panic!("submit {i} refused: {message}"),
        }
    }
    assert_eq!(
        shards_seen, expected_shards,
        "tasks must land exactly on the shards their apps hash to"
    );

    // Every task must be visible through the front door regardless of
    // which shard owns it.
    for &task in &placed {
        match client.request(Request::TaskInfo { task }).expect("info") {
            Reply::Ok { result, .. } => {
                assert_eq!(result.get("task").and_then(Value::as_u64), Some(task));
            }
            Reply::Error { message, .. } => panic!("task_info {task} failed: {message}"),
        }
    }
    for &task in &placed {
        let reply = client
            .request(Request::Complete {
                task,
                runtime: 5.0,
                iops: 90.0,
            })
            .expect("complete");
        assert!(
            matches!(reply, Reply::Ok { .. }),
            "complete {task}: {reply:?}"
        );
    }

    match client.request(Request::Status).expect("status") {
        Reply::Ok { result, .. } => {
            let get = |k: &str| result.get(k).and_then(Value::as_u64).unwrap_or(0);
            assert_eq!(result.get("shards").and_then(Value::as_u64), Some(2));
            assert_eq!(get("machines"), 4, "machine slices must sum to the cluster");
            assert_eq!(get("completed"), placed.len() as u64);
            assert_eq!(
                get("admitted"),
                get("completed")
                    + get("dead_lettered")
                    + get("queued")
                    + get("delayed")
                    + get("running"),
                "summed status must conserve tasks: {result:?}"
            );
        }
        Reply::Error { message, .. } => panic!("status failed: {message}"),
    }

    handle.stop();
    handle.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rendezvous routing moves a key only onto a freshly added shard:
    /// `route(k, n+1) != route(k, n)` implies `route(k, n+1) == n`.
    /// This is what makes shard-count growth cheap — only tasks whose
    /// new shard *wins* are re-homed on recovery.
    #[test]
    fn rendezvous_routing_is_minimally_disruptive(key in any::<u64>(), shards in 1usize..12) {
        let before = route_key(key, shards);
        let after = route_key(key, shards + 1);
        prop_assert!(before < shards && after < shards + 1);
        prop_assert!(
            after == before || after == shards,
            "key {key} moved {before} -> {after} when shard {shards} was added"
        );
    }

    /// Name routing and stride routing always land in range, and stride
    /// inverts the strided id allocation exactly.
    #[test]
    fn auxiliary_routes_stay_in_range(seed in any::<u64>(), task in 1u64..1_000_000, shards in 1usize..12) {
        // A synthetic name of varying length, since the interesting input
        // space for FNV is bytes, not characters.
        let name: String = (0..(seed % 13))
            .map(|i| char::from(b'a' + ((seed >> (i * 5)) % 26) as u8))
            .collect();
        prop_assert!(route_name(&name, shards) < shards);
        let shard = stride_shard(task, shards);
        prop_assert!(shard < shards);
        // Shard `i` of `N` issues `i+1, i+1+N, ...`: the id's issuer is
        // recoverable without any lookup.
        prop_assert_eq!((task - 1) % shards as u64, shard as u64);
    }

    /// Recovery under a changed shard count re-homes every queued task to
    /// its hash route, no matter which old shard file held it.
    #[test]
    fn recovery_rehomes_by_hash_when_the_shard_count_changes(
        placements in proptest::collection::vec((0usize..4, 0u16..64), 1..24),
        new_shards in 1usize..5,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tracon-rehome-{}-{:x}", std::process::id(),
            placements.iter().fold(new_shards as u64, |a, &(s, x)| a.wrapping_mul(31).wrapping_add((s as u64) << 16 | x as u64))
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let old_shards = 4usize.max(new_shards + 1); // always a count change
        let mut task_apps: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
        {
            let mut wals: Vec<Wal> = (0..old_shards)
                .map(|shard| Wal::open_shard(&dir, shard, 1024).expect("open").0)
                .collect();
            for (i, &(shard, app_x)) in placements.iter().enumerate() {
                let task = i as u64 + 1;
                let app = format!("app{}", app_x % 8);
                wals[shard % old_shards]
                    .append(&WalRecord::Submit { task, app: app.clone() })
                    .expect("append");
                task_apps.insert(task, app);
            }
        }
        let route = |name: &str| Some(route_name(name, new_shards));
        let (_wals, merged) = recover_dir(&dir, new_shards, 1024, &route).expect("recover");
        prop_assert_eq!(merged.tasks.len(), placements.len());
        for homed in &merged.tasks {
            let app = &task_apps[&homed.rec.task];
            prop_assert_eq!(
                homed.home, route_name(app, new_shards),
                "task {} (app {}) homed off its hash route", homed.rec.task, app
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `route_app` agrees with `route_key` on the id index, so decode-time
/// routing and recovery routing can never disagree about a profiled app.
#[test]
fn app_and_key_routes_agree() {
    let tb = testbed();
    let svc = Service::new(tb, base_cfg(), Arc::new(Metrics::new()));
    for name in tb.perf.names.iter() {
        let id = svc.app_id(name).expect("profiled app interns");
        for shards in 1..6 {
            assert_eq!(route_app(id, shards), route_key(id.index() as u64, shards));
        }
    }
    // Silence unused-import pedantry for shard_log_name by asserting the
    // layout contract the daemon relies on.
    assert_eq!(shard_log_name(3), "wal.3");
}
