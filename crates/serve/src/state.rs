//! The daemon's scheduling brain: bounded admission, wall-clock dispatch,
//! task leases with retry/backoff, and live model adaptation, all behind
//! one mutex.
//!
//! [`Service`] owns the pieces the simulator normally drives on virtual
//! time — a [`ClusterState`], a [`Scheduler`], a [`ScoringPolicy`], and an
//! [`AdaptiveObserver`] — and maps them onto real time. MIOS dispatches
//! eagerly on every submit and completion; MIBS/MIX accumulate a batch and
//! dispatch when the window fills or the oldest queued task has waited past
//! the batch deadline (checked by the daemon's ticker). Completions
//! reported by clients feed the drift monitor, and a triggered rebuild
//! swaps the scoring policy in place, exactly like the simulator's
//! adaptive arm but against live traffic.
//!
//! Failure handling (DESIGN.md §9): every placement carries a lease
//! deadline scaled by the predicted runtime. A lease that expires without
//! a completion frees the slot and re-queues the task after an
//! exponential, jittered backoff; after `max_attempts` the task moves to
//! the dead-letter queue instead of cycling forever. With a WAL directory
//! configured, every transition is logged through [`crate::wal`] before
//! the client sees the reply, so a `kill -9`'d daemon reconstructs its
//! queue, in-flight set, and counters on restart — tasks leased at the
//! time of the crash are requeued (the executor died with the daemon) and
//! the interrupted attempt counts against their budget. A failed adaptive
//! rebuild does not take the daemon down either: the panic is contained,
//! the last-good predictor keeps serving placements, and the failure is
//! surfaced as `tracond_rebuild_failures_total`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tracon_core::{
    AppId, ClusterState, Mibs, Mios, Mix, ModelKind, MonitorConfig, Objective, Scheduler,
    ScoringPolicy, Task, VmRef,
};
use tracon_dcsim::setup::training_data;
use tracon_dcsim::{AdaptiveObserver, SimObserver, Testbed, IDLE};

use crate::metrics::Metrics;
use crate::wal::{RecState, RecoveredTask, Wal, WalRecord};

/// Which scheduler the daemon runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// Online per-arrival placement (paper's MIOS).
    Mios,
    /// Batch Min-Min over a window of the given size (paper's MIBS).
    Mibs(usize),
    /// Idle-machine shortcut over MIBS (paper's MIX).
    Mix(usize),
}

impl SchedKind {
    /// Parse a CLI spelling: `mios`, `mibs`, `mibs:8`, `mix`, `mix:4`.
    pub fn parse(text: &str) -> Option<SchedKind> {
        let (name, window) = match text.split_once(':') {
            Some((name, w)) => (name, w.parse::<usize>().ok()?),
            None => (text, 8),
        };
        if window == 0 {
            return None;
        }
        Some(match name {
            "mios" => SchedKind::Mios,
            "mibs" => SchedKind::Mibs(window),
            "mix" => SchedKind::Mix(window),
            _ => return None,
        })
    }

    fn build(self) -> Box<dyn Scheduler + Send> {
        match self {
            SchedKind::Mios => Box::new(Mios),
            SchedKind::Mibs(w) => Box::new(Mibs::new(w)),
            SchedKind::Mix(w) => Box::new(Mix::new(w)),
        }
    }

    /// Batch window size; 1 for the online scheduler.
    pub fn window(self) -> usize {
        match self {
            SchedKind::Mios => 1,
            SchedKind::Mibs(w) | SchedKind::Mix(w) => w,
        }
    }
}

/// Daemon tuning knobs, all wall-clock.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of physical machines in the managed cluster.
    pub machines: usize,
    /// VM slots per machine.
    pub slots_per_machine: usize,
    /// Scheduler to run.
    pub scheduler: SchedKind,
    /// Scoring objective for placement decisions.
    pub objective: Objective,
    /// Interference model used by the live monitors.
    pub model_kind: ModelKind,
    /// Admission queue bound; submissions beyond this are rejected.
    pub queue_capacity: usize,
    /// Batch schedulers dispatch a partial window once the oldest queued
    /// task has waited this long.
    pub batch_deadline_ms: u64,
    /// Retry hint attached to backpressure rejections.
    pub retry_after_ms: u64,
    /// Live monitor configuration (rebuild cadence, drift thresholds).
    pub monitor: MonitorConfig,
    /// Fixed part of every completion lease.
    pub lease_base_ms: u64,
    /// Lease extension per predicted second of runtime.
    pub lease_per_predicted_s_ms: u64,
    /// Executions (initial + retries) before a task is dead-lettered.
    pub max_attempts: u32,
    /// First requeue backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Write-ahead-log directory; `None` runs in-memory only.
    pub wal_dir: Option<PathBuf>,
    /// WAL records between snapshot compactions.
    pub wal_snapshot_every: u64,
    /// Replicate from this leader address instead of serving mutations
    /// (`None` = standalone or leader). Requires `wal_dir`.
    pub replica_of: Option<String>,
    /// Leader lease TTL: a follower that completes no successful pull
    /// for this long promotes itself.
    pub repl_ttl_ms: u64,
    /// Follower pull cadence.
    pub repl_poll_ms: u64,
    /// Scheduler shards the daemon splits the cluster across. Each shard
    /// owns a contiguous machine slice, its own queue (so
    /// `queue_capacity` is per shard), and its own WAL file. Must be
    /// `1..=machines`.
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            machines: 4,
            slots_per_machine: 2,
            scheduler: SchedKind::Mios,
            objective: Objective::MinRuntime,
            model_kind: ModelKind::Wmm,
            queue_capacity: 64,
            batch_deadline_ms: 100,
            retry_after_ms: 50,
            monitor: MonitorConfig::default(),
            lease_base_ms: 30_000,
            lease_per_predicted_s_ms: 2_000,
            max_attempts: 5,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            wal_dir: None,
            wal_snapshot_every: 4096,
            replica_of: None,
            repl_ttl_ms: 1_500,
            repl_poll_ms: 50,
            shards: 1,
        }
    }
}

/// Where a task is in its lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskPhase {
    /// Admitted, waiting in the queue (or backing off after a lease
    /// expiry; the two are distinguished by the delayed heap, not the
    /// phase).
    Queued,
    /// Placed on a VM and presumed executing.
    Running {
        /// Where it was placed.
        vm: VmRef,
        /// Co-located app (perf-table index) at placement time, if any.
        neighbor: Option<usize>,
        /// Predicted solo-normalized score at placement time.
        predicted_score: f64,
        /// Model-predicted runtime (seconds) at placement time.
        predicted_runtime: f64,
        /// When the lease expires if no completion is reported.
        lease_deadline: Instant,
    },
    /// Completion reported by a client.
    Completed {
        /// Client-measured runtime in seconds.
        runtime: f64,
    },
    /// Exhausted its attempt budget; parked in the dead-letter queue.
    DeadLettered {
        /// Attempts consumed.
        attempts: u32,
    },
}

/// Everything the daemon remembers about one task.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Interned application id.
    pub app: AppId,
    /// Perf-table index of the application (the monitor's index space).
    pub app_idx: usize,
    /// Lifecycle phase.
    pub phase: TaskPhase,
    /// When the submit was admitted.
    pub submitted: Instant,
    /// Failed executions so far (lease expiries; a reported completion
    /// never increments this).
    pub attempts: u32,
    /// Client-declared per-dimension demand (protocol v2). Advisory —
    /// echoed in `task` replies, never persisted to the WAL (a replayed
    /// task re-queues with legacy defaults). Empty when unspecified.
    pub demand: tracon_core::DimVec,
}

/// Why a request was refused; the daemon maps these onto protocol errors.
#[derive(Clone, Debug, PartialEq)]
pub enum Refusal {
    /// The daemon is draining and admits no new work.
    Draining,
    /// The admission queue is at capacity.
    QueueFull {
        /// Current queue depth (== capacity).
        depth: usize,
    },
    /// The application name was never profiled.
    UnknownApp {
        /// The offending name.
        name: String,
    },
    /// No task with that id exists.
    UnknownTask {
        /// The offending id.
        task: u64,
    },
    /// The task exists but is not running (still queued or already done).
    NotRunning {
        /// The offending id.
        task: u64,
    },
}

/// Result of an admitted submission.
#[derive(Clone, Debug)]
pub struct Admitted {
    /// Server-assigned task id.
    pub task: u64,
    /// Placement, if the task was dispatched immediately.
    pub placement: Option<(VmRef, f64, f64)>,
    /// Queue depth after this submission (0 when placed).
    pub depth: usize,
}

/// Result of a reported completion.
#[derive(Clone, Debug)]
pub struct Completed {
    /// Whether this observation triggered a model rebuild.
    pub rebuilt: bool,
    /// Whether the scoring predictor was swapped as a result.
    pub swapped: bool,
    /// Tasks dispatched from the queue onto the freed capacity.
    pub dispatched: usize,
}

/// Aggregate daemon state for `status` replies.
#[derive(Clone, Debug)]
pub struct StatusSnapshot {
    /// Tasks waiting in the admission queue.
    pub queued: usize,
    /// Tasks backing off after a lease expiry, not yet re-queued.
    pub delayed: usize,
    /// Tasks placed and not yet completed.
    pub running: usize,
    /// Tasks completed so far.
    pub completed: u64,
    /// Tasks dead-lettered so far.
    pub dead_lettered: u64,
    /// Total admissions.
    pub admitted: u64,
    /// Total backpressure rejections.
    pub rejected: u64,
    /// Total monitor rebuilds.
    pub rebuilds: usize,
    /// Total predictor swaps.
    pub swaps: usize,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Machines in the cluster.
    pub machines: usize,
    /// Free VM slots right now.
    pub free_slots: usize,
    /// Scheduler name (e.g. `"mios"`).
    pub scheduler: &'static str,
}

impl StatusSnapshot {
    /// The task-conservation invariant: every admitted task is in exactly
    /// one of queued/delayed/running/completed/dead-lettered. The chaos
    /// harness asserts this across crash-restart cycles.
    pub fn conserved(&self) -> bool {
        self.admitted
            == self.completed
                + self.dead_lettered
                + (self.queued + self.delayed + self.running) as u64
    }
}

/// A task stolen off one shard's queue, on its way to another: the
/// minimum state the recipient needs to adopt it as queued work.
#[derive(Clone, Debug)]
pub struct StolenTask {
    /// Task id (globally unique thanks to strided allocation).
    pub task: u64,
    /// Interned application id (valid on every shard — all shards build
    /// their registry from the same testbed in the same order).
    pub app: AppId,
    /// Application name (for the recipient's WAL record).
    pub app_name: String,
    /// Failed attempts carried over.
    pub attempts: u32,
}

/// Donor-side tombstone for a stolen task, kept so snapshots written
/// after the steal still carry the task until the recipient's own WAL
/// has it (mirrors how completed tasks are retained forever).
struct MigratedOut {
    app_name: String,
    attempts: u32,
    to: usize,
}

/// One scheduler shard's service core — exclusively owned by its worker
/// thread in the daemon, so no lock guards it. All methods take `now`
/// from the caller so the daemon controls the clock and tests stay
/// deterministic.
pub struct Service {
    cfg: ServeConfig,
    cluster: ClusterState,
    scheduler: Box<dyn Scheduler + Send>,
    scoring: ScoringPolicy<'static>,
    observer: AdaptiveObserver,
    queue: VecDeque<Task>,
    tasks: HashMap<u64, TaskRecord>,
    perf_index: HashMap<AppId, usize>,
    next_task_id: u64,
    /// Task-id stride: shard `i` of `N` issues `i+1, i+1+N, i+1+2N, …`,
    /// which keeps ids globally unique without coordination and makes
    /// shards=1 issue `1, 2, 3, …` exactly like the pre-sharding daemon.
    id_step: u64,
    shard: usize,
    machine_base: usize,
    admitted: u64,
    rejected: u64,
    running: usize,
    completed: u64,
    dead_lettered: u64,
    draining: bool,
    /// Backoff parking lot: `(ready_at, task)`, earliest first.
    delayed: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Lease expirations: `(deadline, task, attempt)`, earliest first.
    /// Entries are lazily invalidated: one is live only while the task is
    /// still `Running` at the same attempt number.
    lease_q: BinaryHeap<Reverse<(Instant, u64, u32)>>,
    migrated_out: HashMap<u64, MigratedOut>,
    wal: Option<Wal>,
    /// Group-commit buffer: while `Some`, appended records accumulate
    /// here and hit the disk as one fsync'd batch when the enclosing
    /// [`Service::wal_transaction`] commits.
    wal_txn: Option<Vec<WalRecord>>,
    rebuild_fail_injections: u32,
    /// Replication ship log: every group-committed batch is also pushed
    /// here for followers to pull (`None` when replication is off).
    shipper: Option<Arc<crate::repl::ShipLog>>,
    metrics: Arc<Metrics>,
}

impl Service {
    /// Build an in-memory single-shard service around a profiled testbed
    /// (ignores `wal_dir`; use [`Service::open`] for a durable daemon).
    /// The scoring predictor is the monitor's own export so that later
    /// rebuild-driven swaps replace like with like.
    pub fn new(testbed: &Testbed, cfg: ServeConfig, metrics: Arc<Metrics>) -> Service {
        Service::new_shard(testbed, cfg, metrics, 0, 1, 0)
    }

    /// Build shard `shard` of `shard_count`. `cfg.machines` must already
    /// be this shard's slice of the cluster (see
    /// [`crate::shard::shard_machines`]); `machine_base` is where that
    /// slice starts so replies can translate local machine indices back
    /// to global ones.
    pub fn new_shard(
        testbed: &Testbed,
        cfg: ServeConfig,
        metrics: Arc<Metrics>,
        shard: usize,
        shard_count: usize,
        machine_base: usize,
    ) -> Service {
        assert!(shard < shard_count, "shard index out of range");
        assert!(
            cfg.machines > 0 && cfg.slots_per_machine > 0,
            "empty cluster"
        );
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.max_attempts > 0, "max_attempts must be positive");
        let init_rt: Vec<_> = testbed
            .profiles
            .iter()
            .map(|set| training_data(set, tracon_core::Response::Runtime))
            .collect();
        let init_io: Vec<_> = testbed
            .profiles
            .iter()
            .map(|set| training_data(set, tracon_core::Response::Iops))
            .collect();
        let observer = AdaptiveObserver::new(
            &testbed.predictor,
            &testbed.perf.names,
            cfg.model_kind,
            &init_rt,
            &init_io,
            cfg.monitor,
        );
        let scoring = ScoringPolicy::new_owned(observer.export_predictor(), cfg.objective);
        let cluster = ClusterState::new(
            cfg.machines,
            cfg.slots_per_machine,
            testbed.app_chars.clone(),
        );
        let perf_index = testbed
            .perf
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| (cluster.registry().expect_id(name), i))
            .collect();
        Service {
            scheduler: cfg.scheduler.build(),
            scoring,
            observer,
            cluster,
            queue: VecDeque::new(),
            tasks: HashMap::new(),
            perf_index,
            next_task_id: shard as u64 + 1,
            id_step: shard_count as u64,
            shard,
            machine_base,
            admitted: 0,
            rejected: 0,
            running: 0,
            completed: 0,
            dead_lettered: 0,
            draining: false,
            delayed: BinaryHeap::new(),
            lease_q: BinaryHeap::new(),
            migrated_out: HashMap::new(),
            wal: None,
            wal_txn: None,
            rebuild_fail_injections: 0,
            shipper: None,
            metrics,
            cfg,
        }
    }

    /// Which shard this service is.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Global index of this shard's first machine.
    pub fn machine_base(&self) -> usize {
        self.machine_base
    }

    /// Attach an already-opened WAL (the sharded daemon opens all WALs up
    /// front through [`crate::shard::recover_dir`]).
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// Attach the replication ship log; from here on every WAL batch this
    /// shard commits is also staged for follower pulls.
    pub fn attach_shipper(&mut self, ship: Arc<crate::repl::ShipLog>) {
        self.shipper = Some(ship);
    }

    /// Override the snapshot/compaction cadence after construction (the
    /// replication sim harness uses tiny cadences to force snapshot
    /// installs in small tests).
    pub fn set_snapshot_every(&mut self, every: u64) {
        self.cfg.wal_snapshot_every = every;
        if let Some(wal) = self.wal.as_mut() {
            wal.set_snapshot_every(every);
        }
    }

    /// Build a service and, when `cfg.wal_dir` is set, recover durable
    /// state from the write-ahead log: completed and dead-lettered tasks
    /// keep their records, queued tasks re-enter the admission queue, and
    /// tasks that were leased when the previous daemon died are requeued
    /// with the interrupted attempt counted against their budget. The
    /// replayed history is compacted into a fresh snapshot immediately.
    pub fn open(
        testbed: &Testbed,
        cfg: ServeConfig,
        metrics: Arc<Metrics>,
        now: Instant,
    ) -> std::io::Result<Service> {
        let wal_dir = cfg.wal_dir.clone();
        let mut svc = Service::new(testbed, cfg, metrics);
        if let Some(dir) = wal_dir {
            let (wal, recovery) = Wal::open(&dir, svc.cfg.wal_snapshot_every)?;
            svc.wal = Some(wal);
            svc.metrics
                .wal_replayed_records
                .store(recovery.replayed_records, Ordering::Relaxed);
            svc.adopt_recovered(&recovery.tasks, now);
            svc.align_next_task_id(recovery.next_task_id);
            svc.write_snapshot();
        }
        Ok(svc)
    }

    /// Rebuild queue, counters, and task table from recovered records.
    /// Tasks leased at crash time are requeued with the interrupted
    /// attempt counted; donor tombstones are adopted as queued (the
    /// merged recovery only hands one here when no live record survived).
    pub fn adopt_recovered(&mut self, tasks: &[RecoveredTask], now: Instant) {
        for t in tasks {
            // A task whose application is no longer profiled cannot be
            // re-placed; drop it rather than wedge the queue.
            let Some(app_id) = self.cluster.registry().id(&t.app) else {
                continue;
            };
            let Some(app_idx) = self.perf_index.get(&app_id).copied() else {
                continue;
            };
            let (phase, attempts, requeued) = match t.state {
                RecState::Queued | RecState::Migrated => (TaskPhase::Queued, t.attempts, false),
                RecState::Leased => {
                    let attempts = t.attempts + 1;
                    if attempts >= self.cfg.max_attempts {
                        (TaskPhase::DeadLettered { attempts }, attempts, false)
                    } else {
                        (TaskPhase::Queued, attempts, true)
                    }
                }
                RecState::Completed => (
                    TaskPhase::Completed { runtime: t.runtime },
                    t.attempts,
                    false,
                ),
                RecState::DeadLettered => (
                    TaskPhase::DeadLettered {
                        attempts: t.attempts,
                    },
                    t.attempts,
                    false,
                ),
            };
            self.admitted += 1;
            self.metrics.admissions.fetch_add(1, Ordering::Relaxed);
            match &phase {
                TaskPhase::Queued => self.queue.push_back(Task::new(t.task, app_id)),
                TaskPhase::Completed { .. } => {
                    self.completed += 1;
                    self.metrics.completions.fetch_add(1, Ordering::Relaxed);
                }
                TaskPhase::DeadLettered { .. } => {
                    self.dead_lettered += 1;
                    self.metrics.dead_letters.fetch_add(1, Ordering::Relaxed);
                }
                TaskPhase::Running { .. } => {}
            }
            if requeued {
                self.metrics.requeues.fetch_add(1, Ordering::Relaxed);
            }
            self.tasks.insert(
                t.task,
                TaskRecord {
                    app: app_id,
                    app_idx,
                    phase,
                    submitted: now,
                    attempts,
                    // Demand is not in the WAL; replayed tasks fall back
                    // to the legacy defaults.
                    demand: tracon_core::DimVec::new(),
                },
            );
        }
        self.sync_gauges();
    }

    /// Advance `next_task_id` to the smallest unissued id that is both
    /// `>= global_next` and on this shard's stride, so ids are never
    /// reused across restarts or shard-count changes.
    pub fn align_next_task_id(&mut self, global_next: u64) {
        let mut id = self.next_task_id;
        if global_next > id {
            id += (global_next - id).div_ceil(self.id_step) * self.id_step;
        }
        self.next_task_id = id;
    }

    /// Append one record; a failed write degrades to in-memory operation
    /// (counted, never fatal — availability over durability once the disk
    /// is gone).
    fn wal_append(&mut self, rec: &WalRecord) {
        self.wal_append_batch(std::slice::from_ref(rec));
    }

    /// Run `f` with WAL group commit: every record it appends lands in
    /// one `append_batch` (one fsync) when `f` returns, instead of one
    /// fsync per record. A submit that places writes its `Submit` and
    /// `Lease` records under a single sync; a tick that expires a dozen
    /// leases writes one batch. Durability is unchanged — the commit
    /// still happens before the caller can observe or report the result
    /// — only the sync count drops. Reentrant: an inner transaction
    /// defers to the outermost one.
    fn wal_transaction<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        if self.wal_txn.is_some() {
            return f(self);
        }
        self.wal_txn = Some(Vec::new());
        let out = f(self);
        if let Some(recs) = self.wal_txn.take() {
            self.wal_append_batch(&recs);
        }
        out
    }

    /// Append a batch of records under one fsync (same degradation rules
    /// as [`Service::wal_append`]); inside a [`Service::wal_transaction`]
    /// the records are deferred to the transaction's single commit.
    fn wal_append_batch(&mut self, recs: &[WalRecord]) {
        if recs.is_empty() {
            return;
        }
        if let Some(buf) = self.wal_txn.as_mut() {
            buf.extend_from_slice(recs);
            return;
        }
        let mut due = match self.wal.as_mut() {
            None => false,
            Some(wal) => match wal.append_batch(recs) {
                Ok(()) => {
                    self.metrics
                        .wal_records
                        .fetch_add(recs.len() as u64, Ordering::Relaxed);
                    self.metrics.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                    let due = wal.snapshot_due();
                    self.set_wal_degraded(false, "append committed");
                    due
                }
                Err(e) => {
                    self.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
                    self.set_wal_degraded(true, &format!("append failed: {e}"));
                    false
                }
            },
        };
        // Ship the batch after the fsync attempt, regardless of its
        // outcome: a frame the leader failed to persist may still reach
        // the follower, leaving it with a superset that the idempotent
        // recovery merge collapses harmlessly — whereas durable-but-
        // unshipped would lose acknowledged work on failover.
        if let Some(ship) = &self.shipper {
            ship.push(self.shard, recs);
            // In WAL-less harnesses (the repl sim) the shipper alone
            // drives the compaction cadence.
            if self.wal.is_none()
                && ship.frames_len(self.shard) as u64 >= self.cfg.wal_snapshot_every
            {
                due = true;
            }
        }
        if due {
            self.write_snapshot();
        }
    }

    /// Flip the process-wide WAL-degraded gauge, logging one structured
    /// line on each transition (never per failure): `wal_degraded` means
    /// acked mutations are not reaching disk, which `/healthz?strict=1`
    /// reports as unhealthy until persistence recovers.
    fn set_wal_degraded(&self, degraded: bool, detail: &str) {
        let prev = self
            .metrics
            .wal_degraded
            .swap(u64::from(degraded), Ordering::Relaxed);
        if degraded && prev == 0 {
            eprintln!(
                "tracond event=wal_degraded shard={} detail=\"{detail}\"",
                self.shard
            );
        } else if !degraded && prev != 0 {
            eprintln!(
                "tracond event=wal_recovered shard={} detail=\"{detail}\"",
                self.shard
            );
        }
    }

    /// The inverse of a promotion: detach durability and forget all
    /// admission state. The self-healing rejoin path demotes a fenced
    /// ex-leader's workers before the node wipes its shard files and
    /// resyncs from the live leader; a later `ShardMsg::Promote` rebuilds
    /// everything from the recovered WAL via
    /// [`Service::adopt_recovered`], which assumes a blank table. The
    /// shipper Arc is deliberately kept: a re-promotion must be able to
    /// ship to the *next* follower, and an idle follower never pushes.
    pub fn demote(&mut self) {
        // Free every occupied VM slot so the recovered state re-places
        // onto an empty cluster.
        for rec in self.tasks.values() {
            if let TaskPhase::Running { vm, .. } = rec.phase {
                self.cluster.clear(vm);
            }
        }
        self.wal = None;
        self.wal_txn = None;
        self.queue.clear();
        self.tasks.clear();
        self.delayed.clear();
        self.lease_q.clear();
        self.migrated_out.clear();
        self.admitted = 0;
        self.rejected = 0;
        self.running = 0;
        self.completed = 0;
        self.dead_lettered = 0;
        self.draining = false;
        self.sync_gauges();
    }

    /// Serialize the full task table (plus migrated-away tombstones) into
    /// this shard's snapshot file and truncate the log.
    pub fn write_snapshot(&mut self) {
        if self.wal.is_none() && self.shipper.is_none() {
            return;
        }
        let mut entries: Vec<RecoveredTask> = self
            .tasks
            .iter()
            .map(|(id, r)| {
                let (state, runtime) = match &r.phase {
                    TaskPhase::Queued => (RecState::Queued, 0.0),
                    TaskPhase::Running { .. } => (RecState::Leased, 0.0),
                    TaskPhase::Completed { runtime } => (RecState::Completed, *runtime),
                    TaskPhase::DeadLettered { .. } => (RecState::DeadLettered, 0.0),
                };
                RecoveredTask {
                    task: *id,
                    app: self.observer.app_names()[r.app_idx].clone(),
                    attempts: r.attempts,
                    state,
                    runtime,
                    migrated_to: None,
                }
            })
            // Tombstones keep stolen tasks durable across this shard's
            // compactions until the recipient's WAL carries them.
            .chain(self.migrated_out.iter().map(|(id, m)| RecoveredTask {
                task: *id,
                app: m.app_name.clone(),
                attempts: m.attempts,
                state: RecState::Migrated,
                runtime: 0.0,
                migrated_to: Some(m.to),
            }))
            .collect();
        entries.sort_unstable_by_key(|t| t.task);
        let next = self.next_task_id;
        let blob = crate::wal::encode_snapshot(&entries, next);
        if let Some(wal) = self.wal.as_mut() {
            match wal.install_snapshot_blob(&blob) {
                Ok(()) => {
                    self.metrics.wal_snapshots.fetch_add(1, Ordering::Relaxed);
                    self.set_wal_degraded(false, "snapshot installed");
                }
                Err(e) => {
                    self.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
                    self.set_wal_degraded(true, &format!("snapshot install failed: {e}"));
                }
            }
        }
        // Trim the ship even if the local install failed: the blob was
        // built from live memory and is the authoritative horizon for
        // followers either way.
        if let Some(ship) = &self.shipper {
            ship.trim(self.shard, blob);
        }
    }

    /// Admit one task by name, dispatching immediately when the scheduler
    /// allows.
    pub fn submit(&mut self, app: &str, now: Instant) -> Result<Admitted, Refusal> {
        self.submit_with_demand(app, tracon_core::DimVec::new(), now)
    }

    /// [`Service::submit`] with a client-declared demand vector attached
    /// to the task record (protocol v2 `demand` map; advisory).
    pub fn submit_with_demand(
        &mut self,
        app: &str,
        demand: tracon_core::DimVec,
        now: Instant,
    ) -> Result<Admitted, Refusal> {
        if self.draining {
            self.metrics
                .drain_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::Draining);
        }
        let app_id = match self.cluster.registry().id(app) {
            Some(id) => id,
            None => {
                return Err(Refusal::UnknownApp {
                    name: app.to_string(),
                })
            }
        };
        self.admit(app_id, demand, now)
    }

    /// Admit one task by interned id — the sharded daemon's entry point,
    /// where the reactor already resolved the name at decode time.
    pub fn submit_id(&mut self, app: AppId, now: Instant) -> Result<Admitted, Refusal> {
        if self.draining {
            self.metrics
                .drain_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::Draining);
        }
        self.admit(app, tracon_core::DimVec::new(), now)
    }

    fn admit(
        &mut self,
        app_id: AppId,
        demand: tracon_core::DimVec,
        now: Instant,
    ) -> Result<Admitted, Refusal> {
        self.wal_transaction(|s| s.admit_inner(app_id, demand, now))
    }

    fn admit_inner(
        &mut self,
        app_id: AppId,
        demand: tracon_core::DimVec,
        now: Instant,
    ) -> Result<Admitted, Refusal> {
        let app_idx = match self.perf_index.get(&app_id) {
            Some(idx) => *idx,
            None => {
                return Err(Refusal::UnknownApp {
                    name: format!("app#{}", app_id.index()),
                })
            }
        };
        if self.queue.len() >= self.cfg.queue_capacity {
            self.rejected += 1;
            self.metrics.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::QueueFull {
                depth: self.queue.len(),
            });
        }
        let task_id = self.next_task_id;
        self.next_task_id += self.id_step;
        self.queue.push_back(Task::new(task_id, app_id));
        self.tasks.insert(
            task_id,
            TaskRecord {
                app: app_id,
                app_idx,
                phase: TaskPhase::Queued,
                submitted: now,
                attempts: 0,
                demand,
            },
        );
        self.admitted += 1;
        self.metrics.admissions.fetch_add(1, Ordering::Relaxed);
        // Durable before the client learns the id (write-ahead).
        self.wal_append(&WalRecord::Submit {
            task: task_id,
            app: self.observer.app_names()[app_idx].clone(),
        });
        // MIOS places on every arrival; batch schedulers wait for a full
        // window (the deadline path runs from the ticker).
        if matches!(self.cfg.scheduler, SchedKind::Mios)
            || self.queue.len() >= self.cfg.scheduler.window()
        {
            self.dispatch(now);
        }
        self.sync_gauges();
        let placement = match self.tasks.get(&task_id).map(|r| &r.phase) {
            Some(TaskPhase::Running {
                vm,
                predicted_score,
                predicted_runtime,
                ..
            }) => Some((*vm, *predicted_score, *predicted_runtime)),
            _ => None,
        };
        Ok(Admitted {
            task: task_id,
            placement,
            depth: self.queue.len(),
        })
    }

    /// Run the scheduler over the current queue, recording placements,
    /// leases, and dispatch latencies. Returns how many tasks were placed.
    pub fn dispatch(&mut self, now: Instant) -> usize {
        if self.queue.is_empty() {
            return 0;
        }
        let assignments =
            self.scheduler
                .schedule(&mut self.queue, &mut self.cluster, &self.scoring);
        for assignment in &assignments {
            let task_id = assignment.task.id;
            let neighbor = self.neighbor_of(assignment.vm, task_id);
            let Some(record) = self.tasks.get_mut(&task_id) else {
                // A scheduler handing back a task the service never
                // admitted is a bug, not client input; reclaim the slot
                // and keep serving.
                self.cluster.clear(assignment.vm);
                continue;
            };
            let attempt = record.attempts;
            let predicted_runtime = self
                .observer
                .predict_runtime(record.app_idx, neighbor.unwrap_or(IDLE));
            let lease_ms = self.cfg.lease_base_ms.saturating_add(
                (predicted_runtime.max(0.0) * self.cfg.lease_per_predicted_s_ms as f64)
                    .min(3_600_000.0) as u64,
            );
            let lease_deadline = now + Duration::from_millis(lease_ms);
            record.phase = TaskPhase::Running {
                vm: assignment.vm,
                neighbor,
                predicted_score: assignment.predicted_score,
                predicted_runtime,
                lease_deadline,
            };
            let waited = now.duration_since(record.submitted);
            self.metrics
                .observe_dispatch_latency(waited.as_micros().min(u128::from(u64::MAX)) as u64);
            self.running += 1;
            self.lease_q
                .push(Reverse((lease_deadline, task_id, attempt)));
            self.wal_append(&WalRecord::Lease {
                task: task_id,
                attempt,
            });
        }
        self.sync_gauges();
        assignments.len()
    }

    /// Deterministic exponential backoff with hash jitter: doubling from
    /// `backoff_base_ms`, capped, plus up to 50% jitter derived from
    /// `(task, attempt)` so synchronized expiries fan out identically on
    /// every run.
    fn backoff_ms(&self, task: u64, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base_ms.max(1);
        let doubled = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
        let backoff = doubled.min(self.cfg.backoff_cap_ms.max(base));
        let mut x = task ^ (u64::from(attempt) << 32) ^ 0x9E37_79B9_7F4A_7C15;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        backoff + x % (backoff / 2 + 1)
    }

    /// Expire overdue leases: free the slot, then either park the task
    /// for a backoff or dead-letter it once its attempts are spent.
    /// Returns how many leases expired.
    pub fn expire_leases(&mut self, now: Instant) -> usize {
        let mut expired = 0;
        loop {
            match self.lease_q.peek() {
                Some(Reverse((deadline, _, _))) if *deadline <= now => {}
                _ => break,
            }
            let Some(Reverse((_, task, attempt))) = self.lease_q.pop() else {
                break;
            };
            let Some(record) = self.tasks.get(&task) else {
                continue;
            };
            let vm = match record.phase {
                // Stale entries (completed, or re-leased under a newer
                // attempt) fall through silently.
                TaskPhase::Running { vm, .. } if record.attempts == attempt => vm,
                _ => continue,
            };
            self.cluster.clear(vm);
            self.running -= 1;
            expired += 1;
            self.metrics.lease_expiries.fetch_add(1, Ordering::Relaxed);
            let attempts = attempt + 1;
            if attempts >= self.cfg.max_attempts {
                if let Some(r) = self.tasks.get_mut(&task) {
                    r.attempts = attempts;
                    r.phase = TaskPhase::DeadLettered { attempts };
                }
                self.dead_lettered += 1;
                self.metrics.dead_letters.fetch_add(1, Ordering::Relaxed);
                self.wal_append(&WalRecord::DeadLetter { task, attempts });
            } else {
                if let Some(r) = self.tasks.get_mut(&task) {
                    r.attempts = attempts;
                    r.phase = TaskPhase::Queued;
                }
                let ready = now + Duration::from_millis(self.backoff_ms(task, attempts));
                self.delayed.push(Reverse((ready, task)));
                self.metrics.requeues.fetch_add(1, Ordering::Relaxed);
                self.wal_append(&WalRecord::Requeue {
                    task,
                    attempt: attempts,
                });
            }
        }
        if expired > 0 {
            self.sync_gauges();
        }
        expired
    }

    /// Move backed-off tasks whose ready time has passed into the
    /// admission queue (a draining daemon promotes immediately so the
    /// drain can finish). Returns how many were promoted.
    fn promote_delayed(&mut self, now: Instant) -> usize {
        let mut promoted = 0;
        loop {
            match self.delayed.peek() {
                Some(Reverse((ready, _))) if *ready <= now || self.draining => {}
                _ => break,
            }
            let Some(Reverse((_, task))) = self.delayed.pop() else {
                break;
            };
            let Some(record) = self.tasks.get(&task) else {
                continue;
            };
            if matches!(record.phase, TaskPhase::Queued) {
                self.queue.push_back(Task::new(task, record.app));
                promoted += 1;
            }
        }
        promoted
    }

    /// The daemon's periodic maintenance pass: expire leases, promote
    /// backed-off tasks, and run batch-deadline dispatch. Returns how
    /// many tasks were dispatched.
    pub fn tick(&mut self, now: Instant) -> usize {
        self.wal_transaction(|s| s.tick_inner(now))
    }

    fn tick_inner(&mut self, now: Instant) -> usize {
        self.expire_leases(now);
        self.promote_delayed(now);
        if self.queue.is_empty() {
            self.sync_gauges();
            return 0;
        }
        let dispatch_now = match self.cfg.scheduler {
            // MIOS is eager; the tick retries dispatch stalled on a full
            // cluster and places freshly promoted requeues.
            SchedKind::Mios => true,
            _ => {
                let overdue = self
                    .queue
                    .front()
                    .and_then(|front| self.tasks.get(&front.id))
                    .map(|r| {
                        now.duration_since(r.submitted).as_millis() as u64
                            >= self.cfg.batch_deadline_ms
                    })
                    .unwrap_or(false);
                self.queue.len() >= self.cfg.scheduler.window() || overdue || self.draining
            }
        };
        if dispatch_now {
            self.dispatch(now)
        } else {
            0
        }
    }

    /// Record a client-reported completion: free the slot, feed the
    /// monitor, swap the predictor if a rebuild fired, and dispatch onto
    /// the freed capacity. A panicking rebuild is contained: the
    /// completion still counts, the last-good predictor keeps serving,
    /// and `rebuild_failures` is incremented.
    pub fn complete(
        &mut self,
        task: u64,
        runtime: f64,
        iops: f64,
        now: Instant,
    ) -> Result<Completed, Refusal> {
        self.wal_transaction(|s| s.complete_inner(task, runtime, iops, now))
    }

    fn complete_inner(
        &mut self,
        task: u64,
        runtime: f64,
        iops: f64,
        now: Instant,
    ) -> Result<Completed, Refusal> {
        let record = self.tasks.get(&task).ok_or(Refusal::UnknownTask { task })?;
        let (vm, neighbor) = match record.phase {
            TaskPhase::Running { vm, neighbor, .. } => (vm, neighbor),
            _ => return Err(Refusal::NotRunning { task }),
        };
        let app_idx = record.app_idx;
        self.cluster.clear(vm);
        if let Some(r) = self.tasks.get_mut(&task) {
            r.phase = TaskPhase::Completed { runtime };
        }
        self.running -= 1;
        self.completed += 1;
        self.metrics.completions.fetch_add(1, Ordering::Relaxed);
        self.wal_append(&WalRecord::Complete { task, runtime });
        let inject = self.rebuild_fail_injections > 0;
        let observer = &mut self.observer;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let rebuilt = observer.record(app_idx, neighbor, runtime, iops);
            if inject && rebuilt {
                panic!("injected rebuild failure");
            }
            rebuilt
        }));
        let rebuilt = match outcome {
            Ok(rebuilt) => rebuilt,
            Err(_) => {
                if inject {
                    self.rebuild_fail_injections -= 1;
                }
                self.metrics
                    .rebuild_failures
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
        };
        if rebuilt {
            self.metrics.rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        let mut swapped = false;
        if rebuilt {
            if let Some(predictor) = self.observer.updated_predictor() {
                self.scoring = ScoringPolicy::new_owned(predictor, self.cfg.objective);
                self.metrics.predictor_swaps.fetch_add(1, Ordering::Relaxed);
                swapped = true;
            }
        }
        // The freed slot may unblock queued work regardless of scheduler:
        // batch windows still apply, but a stalled full-cluster dispatch
        // should retry now.
        let dispatched = if matches!(self.cfg.scheduler, SchedKind::Mios) || self.draining {
            self.dispatch(now)
        } else {
            self.tick(now)
        };
        self.sync_gauges();
        Ok(Completed {
            rebuilt,
            swapped,
            dispatched,
        })
    }

    /// Pop up to `max` queued (never leased) tasks off the back of the
    /// admission queue for migration to shard `to`. The migrate records
    /// hit this shard's WAL under one fsync *before* the tasks leave the
    /// in-memory table, and a tombstone stays behind so a crash anywhere
    /// in the handoff recovers each task exactly once.
    pub fn steal_queued(&mut self, max: usize, to: usize) -> Vec<StolenTask> {
        if to == self.shard || max == 0 {
            return Vec::new();
        }
        let mut stolen = Vec::new();
        let mut records = Vec::new();
        for _ in 0..max.min(self.queue.len()) {
            let Some(task) = self.queue.pop_back() else {
                break;
            };
            let Some(rec) = self.tasks.get(&task.id) else {
                continue;
            };
            let app_name = self.observer.app_names()[rec.app_idx].clone();
            records.push(WalRecord::Migrate {
                task: task.id,
                app: app_name.clone(),
                attempt: rec.attempts,
                from: self.shard,
                to,
            });
            stolen.push(StolenTask {
                task: task.id,
                app: rec.app,
                app_name,
                attempts: rec.attempts,
            });
        }
        self.wal_append_batch(&records);
        for s in &stolen {
            self.tasks.remove(&s.task);
            self.migrated_out.insert(
                s.task,
                MigratedOut {
                    app_name: s.app_name.clone(),
                    attempts: s.attempts,
                    to,
                },
            );
            self.admitted -= 1;
        }
        if !stolen.is_empty() {
            self.metrics.steals.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .migrated_tasks
                .fetch_add(stolen.len() as u64, Ordering::Relaxed);
        }
        self.sync_gauges();
        stolen
    }

    /// Adopt tasks stolen from shard `from`: log the migration on this
    /// shard's WAL (one fsync for the batch), queue them, and dispatch if
    /// the scheduler is eager. Returns how many were adopted.
    pub fn inject_stolen(&mut self, tasks: &[StolenTask], from: usize, now: Instant) -> usize {
        let records: Vec<WalRecord> = tasks
            .iter()
            .map(|s| WalRecord::Migrate {
                task: s.task,
                app: s.app_name.clone(),
                attempt: s.attempts,
                from,
                to: self.shard,
            })
            .collect();
        self.wal_append_batch(&records);
        let mut adopted = 0;
        for s in tasks {
            let Some(app_idx) = self.perf_index.get(&s.app).copied() else {
                continue;
            };
            self.queue.push_back(Task::new(s.task, s.app));
            self.tasks.insert(
                s.task,
                TaskRecord {
                    app: s.app,
                    app_idx,
                    phase: TaskPhase::Queued,
                    submitted: now,
                    attempts: s.attempts,
                    // Migration messages carry no demand; stolen tasks
                    // keep the legacy defaults.
                    demand: tracon_core::DimVec::new(),
                },
            );
            // A task stolen back home clears its own stale tombstone.
            self.migrated_out.remove(&s.task);
            self.admitted += 1;
            adopted += 1;
        }
        if adopted > 0
            && (matches!(self.cfg.scheduler, SchedKind::Mios)
                || self.queue.len() >= self.cfg.scheduler.window())
        {
            self.dispatch(now);
        }
        self.sync_gauges();
        adopted
    }

    /// Where a task went if it was stolen off this shard (the worker
    /// bounces misrouted complete/task lookups with this).
    pub fn migrated_to(&self, task: u64) -> Option<usize> {
        self.migrated_out.get(&task).map(|m| m.to)
    }

    /// Stop admitting new work. Returns the current snapshot.
    pub fn drain(&mut self, now: Instant) -> StatusSnapshot {
        self.draining = true;
        // Flush backed-off tasks and any partial batch immediately rather
        // than waiting for the deadline tick.
        self.promote_delayed(now);
        self.dispatch(now);
        self.status()
    }

    /// True once a draining daemon has no queued, delayed, or running
    /// work left (dead-lettered tasks never block a drain).
    pub fn drained(&self) -> bool {
        self.draining && self.queue.is_empty() && self.delayed.is_empty() && self.running == 0
    }

    /// Whether the daemon has been asked to drain.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Aggregate state for `status` replies.
    pub fn status(&self) -> StatusSnapshot {
        StatusSnapshot {
            queued: self.queue.len(),
            delayed: self.delayed.len(),
            running: self.running,
            completed: self.completed,
            dead_lettered: self.dead_lettered,
            admitted: self.admitted,
            rejected: self.rejected,
            rebuilds: self.observer.total_rebuilds(),
            swaps: self.observer.predictor_swaps(),
            draining: self.draining,
            machines: self.cluster.n_machines(),
            free_slots: self.cluster.n_free(),
            scheduler: match self.cfg.scheduler {
                SchedKind::Mios => "mios",
                SchedKind::Mibs(_) => "mibs",
                SchedKind::Mix(_) => "mix",
            },
        }
    }

    /// Look up one task's record.
    pub fn task_info(&self, task: u64) -> Option<&TaskRecord> {
        self.tasks.get(&task)
    }

    /// Application name for a perf-table index (for reply rendering).
    pub fn app_name(&self, app_idx: usize) -> &str {
        self.observer.app_names()[app_idx].as_str()
    }

    /// All profiled application names in pair-table index order — the
    /// index space arrival generators sample over.
    pub fn app_list(&self) -> &[String] {
        self.observer.app_names()
    }

    /// Interned id for a profiled application name (`None` if the name
    /// was never profiled). The reactor uses this to consistent-hash
    /// submissions to shards.
    pub fn app_id(&self, name: &str) -> Option<AppId> {
        self.cluster.registry().id(name)
    }

    /// Retry hint for backpressure replies.
    pub fn retry_after_ms(&self) -> u64 {
        self.cfg.retry_after_ms
    }

    /// Test hook: make the next `n` triggered rebuilds fail, exercising
    /// the keep-last-good-predictor degradation path.
    #[doc(hidden)]
    pub fn fail_next_rebuild(&mut self, n: u32) {
        self.rebuild_fail_injections = n;
    }

    fn neighbor_of(&self, vm: VmRef, own_task: u64) -> Option<usize> {
        for slot in 0..self.cluster.slots_per_machine() {
            if slot == vm.slot {
                continue;
            }
            let other = VmRef {
                machine: vm.machine,
                slot,
            };
            if let Some(resident) = self.cluster.resident(other) {
                if resident.task_id != own_task {
                    return self.perf_index.get(&resident.app).copied();
                }
            }
        }
        None
    }

    fn sync_gauges(&self) {
        self.metrics.set_shard_gauges(
            self.shard,
            self.queue.len() as u64,
            self.running as u64,
            self.dead_lettered,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracon_dcsim::TestbedConfig;

    fn tiny_testbed() -> Testbed {
        let mut cfg = TestbedConfig::small();
        cfg.calibration_points = 6;
        cfg.time_scale = 0.05;
        Testbed::build(&cfg)
    }

    fn service(sched: SchedKind, queue_capacity: usize) -> Service {
        let testbed = tiny_testbed();
        let cfg = ServeConfig {
            machines: 2,
            slots_per_machine: 2,
            scheduler: sched,
            queue_capacity,
            ..ServeConfig::default()
        };
        Service::new(&testbed, cfg, Arc::new(Metrics::new()))
    }

    #[test]
    fn mios_places_on_submit_until_cluster_full() {
        let mut svc = service(SchedKind::Mios, 8);
        let now = Instant::now();
        let apps: Vec<String> = svc.observer.app_names().to_vec();
        let mut placed = 0;
        for i in 0..6 {
            let out = svc.submit(&apps[i % apps.len()], now).unwrap();
            if out.placement.is_some() {
                placed += 1;
            }
        }
        // 2 machines x 2 slots: exactly 4 placements, 2 queued.
        assert_eq!(placed, 4);
        assert_eq!(svc.status().queued, 2);
        assert_eq!(svc.status().running, 4);
        assert!(svc.status().conserved());
    }

    #[test]
    fn bounded_queue_rejects_with_queue_full() {
        let mut svc = service(SchedKind::Mios, 2);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        // Fill the cluster (4 slots) then the queue (2).
        for _ in 0..6 {
            svc.submit(&app, now).unwrap();
        }
        match svc.submit(&app, now) {
            Err(Refusal::QueueFull { depth }) => assert_eq!(depth, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn completion_frees_slot_and_dispatches_queued_work() {
        let mut svc = service(SchedKind::Mios, 4);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        let mut first = None;
        for i in 0..5 {
            let out = svc.submit(&app, now).unwrap();
            if i == 0 {
                first = Some(out.task);
            }
        }
        assert_eq!(svc.status().queued, 1);
        let done = svc.complete(first.unwrap(), 2.0, 100.0, now).unwrap();
        assert_eq!(done.dispatched, 1);
        assert_eq!(svc.status().queued, 0);
        assert_eq!(svc.status().completed, 1);
    }

    #[test]
    fn batch_scheduler_waits_for_window_then_deadline() {
        let mut svc = service(SchedKind::Mibs(3), 8);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        svc.submit(&app, now).unwrap();
        svc.submit(&app, now).unwrap();
        assert_eq!(svc.status().running, 0, "window of 3 not yet full");
        svc.submit(&app, now).unwrap();
        assert_eq!(svc.status().running, 3, "full window dispatches");
        // A lone straggler dispatches via the deadline tick.
        svc.submit(&app, now).unwrap();
        assert_eq!(svc.status().queued, 1);
        let later = now + std::time::Duration::from_millis(500);
        assert_eq!(svc.tick(later), 1);
        assert_eq!(svc.status().queued, 0);
    }

    #[test]
    fn drain_refuses_new_work_and_reports_idle() {
        let mut svc = service(SchedKind::Mios, 4);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        let admitted = svc.submit(&app, now).unwrap();
        svc.drain(now);
        assert!(matches!(svc.submit(&app, now), Err(Refusal::Draining)));
        assert!(!svc.drained());
        svc.complete(admitted.task, 1.5, 80.0, now).unwrap();
        assert!(svc.drained());
    }

    #[test]
    fn completions_trigger_rebuild_and_predictor_swap() {
        let testbed = tiny_testbed();
        let cfg = ServeConfig {
            machines: 2,
            slots_per_machine: 2,
            scheduler: SchedKind::Mios,
            queue_capacity: 8,
            monitor: MonitorConfig {
                rebuild_every: 6,
                ..MonitorConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut svc = Service::new(&testbed, cfg, Arc::new(Metrics::new()));
        let now = Instant::now();
        // Rebuild cadence is per-app model, so drive one application hard.
        let app = svc.observer.app_names()[0].clone();
        let mut swaps = 0;
        for round in 0..20 {
            let out = svc.submit(&app, now).unwrap();
            let done = svc
                .complete(out.task, 1.0 + round as f64 * 0.1, 90.0, now)
                .unwrap();
            if done.swapped {
                swaps += 1;
            }
        }
        assert!(swaps > 0, "expected at least one predictor swap");
        assert!(svc.status().rebuilds > 0);
    }

    #[test]
    fn unknown_app_and_unknown_task_are_refused() {
        let mut svc = service(SchedKind::Mios, 4);
        let now = Instant::now();
        assert!(matches!(
            svc.submit("no-such-app", now),
            Err(Refusal::UnknownApp { .. })
        ));
        assert!(matches!(
            svc.complete(999, 1.0, 1.0, now),
            Err(Refusal::UnknownTask { task: 999 })
        ));
    }

    #[test]
    fn expired_lease_requeues_with_backoff_then_dead_letters() {
        let testbed = tiny_testbed();
        let cfg = ServeConfig {
            machines: 1,
            slots_per_machine: 1,
            scheduler: SchedKind::Mios,
            queue_capacity: 8,
            lease_base_ms: 10,
            lease_per_predicted_s_ms: 0,
            max_attempts: 2,
            backoff_base_ms: 5,
            backoff_cap_ms: 20,
            ..ServeConfig::default()
        };
        let metrics = Arc::new(Metrics::new());
        let mut svc = Service::new(&testbed, cfg, Arc::clone(&metrics));
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        let out = svc.submit(&app, now).unwrap();
        assert!(out.placement.is_some());

        // First expiry: attempt 1 of 2 -> backoff, not dead-letter.
        let t1 = now + Duration::from_millis(100);
        svc.tick(t1);
        let st = svc.status();
        assert_eq!(st.running, 0);
        assert_eq!(st.delayed + st.queued, 1, "requeued, possibly promoted");
        assert_eq!(metrics.lease_expiries.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.requeues.load(Ordering::Relaxed), 1);
        assert!(st.conserved());

        // Backoff elapses -> re-placed.
        let t2 = t1 + Duration::from_secs(1);
        svc.tick(t2);
        assert_eq!(svc.status().running, 1, "requeued task re-placed");
        match svc.task_info(out.task).map(|r| &r.phase) {
            Some(TaskPhase::Running { .. }) => {}
            other => panic!("expected Running, got {other:?}"),
        }

        // Second expiry exhausts the budget -> dead-letter.
        let t3 = t2 + Duration::from_secs(1);
        svc.tick(t3);
        let st = svc.status();
        assert_eq!(st.dead_lettered, 1);
        assert_eq!(st.running + st.queued + st.delayed, 0);
        assert_eq!(metrics.dead_letters.load(Ordering::Relaxed), 1);
        assert!(st.conserved());
        assert!(matches!(
            svc.task_info(out.task).map(|r| &r.phase),
            Some(TaskPhase::DeadLettered { attempts: 2 })
        ));
        // A dead-lettered task refuses late completions.
        assert!(matches!(
            svc.complete(out.task, 1.0, 1.0, t3),
            Err(Refusal::NotRunning { .. })
        ));
        // And never blocks a drain.
        svc.drain(t3);
        assert!(svc.drained());
    }

    #[test]
    fn wal_recovery_restores_queue_counters_and_ids() {
        let dir = std::env::temp_dir().join(format!("tracond-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let testbed = tiny_testbed();
        let cfg = ServeConfig {
            machines: 1,
            slots_per_machine: 1,
            scheduler: SchedKind::Mios,
            queue_capacity: 8,
            wal_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let now = Instant::now();
        let first_task;
        {
            let metrics = Arc::new(Metrics::new());
            let mut svc = Service::open(&testbed, cfg.clone(), Arc::clone(&metrics), now).unwrap();
            let app = svc.observer.app_names()[0].clone();
            let a = svc.submit(&app, now).unwrap(); // placed (1 slot)
            first_task = a.task;
            svc.submit(&app, now).unwrap(); // queued
            svc.submit(&app, now).unwrap(); // queued
            svc.complete(a.task, 2.5, 90.0, now).unwrap(); // frees slot, places next
                                                           // svc dropped here without any drain: simulated crash.
        }
        let metrics = Arc::new(Metrics::new());
        let mut svc = Service::open(&testbed, cfg, Arc::clone(&metrics), now).unwrap();
        let st = svc.status();
        assert_eq!(st.admitted, 3, "all admissions recovered");
        assert_eq!(st.completed, 1, "completion recovered");
        // One task was leased at crash time: requeued. One was queued.
        assert_eq!(st.queued, 2);
        assert_eq!(st.running, 0);
        assert_eq!(metrics.requeues.load(Ordering::Relaxed), 1);
        assert!(st.conserved(), "conservation across restart: {st:?}");
        assert!(matches!(
            svc.task_info(first_task).map(|r| &r.phase),
            Some(TaskPhase::Completed { .. })
        ));
        // Ids keep advancing from where the dead daemon stopped.
        let app = svc.observer.app_names()[0].clone();
        let next = svc.submit(&app, now).unwrap();
        assert_eq!(next.task, 4);
        // Recovery compacted history into a (shard 0) snapshot.
        assert!(dir.join(crate::wal::shard_snapshot_name(0)).exists());
        assert!(metrics.wal_replayed_records.load(Ordering::Relaxed) > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rebuild_keeps_last_good_predictor_and_daemon_alive() {
        let testbed = tiny_testbed();
        let cfg = ServeConfig {
            machines: 2,
            slots_per_machine: 2,
            scheduler: SchedKind::Mios,
            queue_capacity: 8,
            monitor: MonitorConfig {
                rebuild_every: 6,
                ..MonitorConfig::default()
            },
            ..ServeConfig::default()
        };
        let metrics = Arc::new(Metrics::new());
        let mut svc = Service::new(&testbed, cfg, Arc::clone(&metrics));
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        svc.fail_next_rebuild(1);
        let mut saw_failure = false;
        let mut swaps_after_failure = 0;
        for round in 0..30 {
            let out = svc.submit(&app, now).unwrap();
            let done = svc
                .complete(out.task, 1.0 + round as f64 * 0.1, 90.0, now)
                .unwrap();
            let failures = metrics.rebuild_failures.load(Ordering::Relaxed);
            if failures > 0 {
                saw_failure = true;
            }
            if saw_failure && done.swapped {
                swaps_after_failure += 1;
            }
            assert!(!done.swapped || failures == 0 || saw_failure);
        }
        assert!(saw_failure, "injected rebuild failure never fired");
        assert_eq!(metrics.rebuild_failures.load(Ordering::Relaxed), 1);
        assert!(
            swaps_after_failure > 0,
            "daemon must recover and swap on a later successful rebuild"
        );
        assert_eq!(svc.status().completed, 30, "every completion recorded");
    }
}
