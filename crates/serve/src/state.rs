//! The daemon's scheduling brain: bounded admission, wall-clock dispatch,
//! and live model adaptation, all behind one mutex.
//!
//! [`Service`] owns the pieces the simulator normally drives on virtual
//! time — a [`ClusterState`], a [`Scheduler`], a [`ScoringPolicy`], and an
//! [`AdaptiveObserver`] — and maps them onto real time. MIOS dispatches
//! eagerly on every submit and completion; MIBS/MIX accumulate a batch and
//! dispatch when the window fills or the oldest queued task has waited past
//! the batch deadline (checked by the daemon's ticker). Completions
//! reported by clients feed the drift monitor, and a triggered rebuild
//! swaps the scoring policy in place, exactly like the simulator's
//! adaptive arm but against live traffic.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use tracon_core::{
    AppId, ClusterState, Mibs, Mios, Mix, ModelKind, MonitorConfig, Objective, Scheduler,
    ScoringPolicy, Task, VmRef,
};
use tracon_dcsim::setup::training_data;
use tracon_dcsim::{AdaptiveObserver, SimObserver, Testbed, IDLE};

use crate::metrics::Metrics;

/// Which scheduler the daemon runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// Online per-arrival placement (paper's MIOS).
    Mios,
    /// Batch Min-Min over a window of the given size (paper's MIBS).
    Mibs(usize),
    /// Idle-machine shortcut over MIBS (paper's MIX).
    Mix(usize),
}

impl SchedKind {
    /// Parse a CLI spelling: `mios`, `mibs`, `mibs:8`, `mix`, `mix:4`.
    pub fn parse(text: &str) -> Option<SchedKind> {
        let (name, window) = match text.split_once(':') {
            Some((name, w)) => (name, w.parse::<usize>().ok()?),
            None => (text, 8),
        };
        if window == 0 {
            return None;
        }
        Some(match name {
            "mios" => SchedKind::Mios,
            "mibs" => SchedKind::Mibs(window),
            "mix" => SchedKind::Mix(window),
            _ => return None,
        })
    }

    fn build(self) -> Box<dyn Scheduler + Send> {
        match self {
            SchedKind::Mios => Box::new(Mios),
            SchedKind::Mibs(w) => Box::new(Mibs::new(w)),
            SchedKind::Mix(w) => Box::new(Mix::new(w)),
        }
    }

    /// Batch window size; 1 for the online scheduler.
    pub fn window(self) -> usize {
        match self {
            SchedKind::Mios => 1,
            SchedKind::Mibs(w) | SchedKind::Mix(w) => w,
        }
    }
}

/// Daemon tuning knobs, all wall-clock.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of physical machines in the managed cluster.
    pub machines: usize,
    /// VM slots per machine.
    pub slots_per_machine: usize,
    /// Scheduler to run.
    pub scheduler: SchedKind,
    /// Scoring objective for placement decisions.
    pub objective: Objective,
    /// Interference model used by the live monitors.
    pub model_kind: ModelKind,
    /// Admission queue bound; submissions beyond this are rejected.
    pub queue_capacity: usize,
    /// Batch schedulers dispatch a partial window once the oldest queued
    /// task has waited this long.
    pub batch_deadline_ms: u64,
    /// Retry hint attached to backpressure rejections.
    pub retry_after_ms: u64,
    /// Live monitor configuration (rebuild cadence, drift thresholds).
    pub monitor: MonitorConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            machines: 4,
            slots_per_machine: 2,
            scheduler: SchedKind::Mios,
            objective: Objective::MinRuntime,
            model_kind: ModelKind::Wmm,
            queue_capacity: 64,
            batch_deadline_ms: 100,
            retry_after_ms: 50,
            monitor: MonitorConfig::default(),
        }
    }
}

/// Where a task is in its lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskPhase {
    /// Admitted, waiting in the queue.
    Queued,
    /// Placed on a VM and presumed executing.
    Running {
        /// Where it was placed.
        vm: VmRef,
        /// Co-located app (perf-table index) at placement time, if any.
        neighbor: Option<usize>,
        /// Predicted solo-normalized score at placement time.
        predicted_score: f64,
        /// Model-predicted runtime (seconds) at placement time.
        predicted_runtime: f64,
    },
    /// Completion reported by a client.
    Completed {
        /// Client-measured runtime in seconds.
        runtime: f64,
    },
}

/// Everything the daemon remembers about one task.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Interned application id.
    pub app: AppId,
    /// Perf-table index of the application (the monitor's index space).
    pub app_idx: usize,
    /// Lifecycle phase.
    pub phase: TaskPhase,
    /// When the submit was admitted.
    pub submitted: Instant,
}

/// Why a request was refused; the daemon maps these onto protocol errors.
#[derive(Clone, Debug, PartialEq)]
pub enum Refusal {
    /// The daemon is draining and admits no new work.
    Draining,
    /// The admission queue is at capacity.
    QueueFull {
        /// Current queue depth (== capacity).
        depth: usize,
    },
    /// The application name was never profiled.
    UnknownApp {
        /// The offending name.
        name: String,
    },
    /// No task with that id exists.
    UnknownTask {
        /// The offending id.
        task: u64,
    },
    /// The task exists but is not running (still queued or already done).
    NotRunning {
        /// The offending id.
        task: u64,
    },
}

/// Result of an admitted submission.
#[derive(Clone, Debug)]
pub struct Admitted {
    /// Server-assigned task id.
    pub task: u64,
    /// Placement, if the task was dispatched immediately.
    pub placement: Option<(VmRef, f64, f64)>,
    /// Queue depth after this submission (0 when placed).
    pub depth: usize,
}

/// Result of a reported completion.
#[derive(Clone, Debug)]
pub struct Completed {
    /// Whether this observation triggered a model rebuild.
    pub rebuilt: bool,
    /// Whether the scoring predictor was swapped as a result.
    pub swapped: bool,
    /// Tasks dispatched from the queue onto the freed capacity.
    pub dispatched: usize,
}

/// Aggregate daemon state for `status` replies.
#[derive(Clone, Debug)]
pub struct StatusSnapshot {
    /// Tasks waiting in the admission queue.
    pub queued: usize,
    /// Tasks placed and not yet completed.
    pub running: usize,
    /// Tasks completed so far.
    pub completed: u64,
    /// Total admissions.
    pub admitted: u64,
    /// Total backpressure rejections.
    pub rejected: u64,
    /// Total monitor rebuilds.
    pub rebuilds: usize,
    /// Total predictor swaps.
    pub swaps: usize,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Machines in the cluster.
    pub machines: usize,
    /// Free VM slots right now.
    pub free_slots: usize,
    /// Scheduler name (e.g. `"mios"`).
    pub scheduler: &'static str,
}

/// The mutex-guarded service core. All methods take `now` from the caller
/// so the daemon controls the clock and tests stay deterministic.
pub struct Service {
    cfg: ServeConfig,
    cluster: ClusterState,
    scheduler: Box<dyn Scheduler + Send>,
    scoring: ScoringPolicy<'static>,
    observer: AdaptiveObserver,
    queue: VecDeque<Task>,
    tasks: HashMap<u64, TaskRecord>,
    perf_index: HashMap<AppId, usize>,
    next_task_id: u64,
    running: usize,
    completed: u64,
    draining: bool,
    metrics: Arc<Metrics>,
}

impl Service {
    /// Build a service around a profiled testbed. The scoring predictor is
    /// the monitor's own export so that later rebuild-driven swaps replace
    /// like with like.
    pub fn new(testbed: &Testbed, cfg: ServeConfig, metrics: Arc<Metrics>) -> Service {
        assert!(cfg.machines > 0 && cfg.slots_per_machine > 0, "empty cluster");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        let init_rt: Vec<_> = testbed
            .profiles
            .iter()
            .map(|set| training_data(set, tracon_core::Response::Runtime))
            .collect();
        let init_io: Vec<_> = testbed
            .profiles
            .iter()
            .map(|set| training_data(set, tracon_core::Response::Iops))
            .collect();
        let observer = AdaptiveObserver::new(
            &testbed.predictor,
            &testbed.perf.names,
            cfg.model_kind,
            &init_rt,
            &init_io,
            cfg.monitor,
        );
        let scoring = ScoringPolicy::new_owned(observer.export_predictor(), cfg.objective);
        let cluster = ClusterState::new(
            cfg.machines,
            cfg.slots_per_machine,
            testbed.app_chars.clone(),
        );
        let perf_index = testbed
            .perf
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| (cluster.registry().expect_id(name), i))
            .collect();
        Service {
            scheduler: cfg.scheduler.build(),
            scoring,
            observer,
            cluster,
            queue: VecDeque::new(),
            tasks: HashMap::new(),
            perf_index,
            next_task_id: 1,
            running: 0,
            completed: 0,
            draining: false,
            metrics,
            cfg,
        }
    }

    /// Admit one task, dispatching immediately when the scheduler allows.
    pub fn submit(&mut self, app: &str, now: Instant) -> Result<Admitted, Refusal> {
        if self.draining {
            self.metrics
                .drain_rejections
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(Refusal::Draining);
        }
        let app_id = match self.cluster.registry().id(app) {
            Some(id) => id,
            None => {
                return Err(Refusal::UnknownApp {
                    name: app.to_string(),
                })
            }
        };
        if self.queue.len() >= self.cfg.queue_capacity {
            self.metrics
                .rejections
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(Refusal::QueueFull {
                depth: self.queue.len(),
            });
        }
        let task_id = self.next_task_id;
        self.next_task_id += 1;
        let app_idx = self.perf_index[&app_id];
        self.queue.push_back(Task::new(task_id, app_id));
        self.tasks.insert(
            task_id,
            TaskRecord {
                app: app_id,
                app_idx,
                phase: TaskPhase::Queued,
                submitted: now,
            },
        );
        self.metrics
            .admissions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // MIOS places on every arrival; batch schedulers wait for a full
        // window (the deadline path runs from the ticker).
        if matches!(self.cfg.scheduler, SchedKind::Mios)
            || self.queue.len() >= self.cfg.scheduler.window()
        {
            self.dispatch(now);
        }
        self.sync_gauges();
        let record = &self.tasks[&task_id];
        let placement = match record.phase {
            TaskPhase::Running {
                vm,
                predicted_score,
                predicted_runtime,
                ..
            } => Some((vm, predicted_score, predicted_runtime)),
            _ => None,
        };
        Ok(Admitted {
            task: task_id,
            placement,
            depth: self.queue.len(),
        })
    }

    /// Run the scheduler over the current queue, recording placements and
    /// dispatch latencies. Returns how many tasks were placed.
    pub fn dispatch(&mut self, now: Instant) -> usize {
        if self.queue.is_empty() {
            return 0;
        }
        let assignments =
            self.scheduler
                .schedule(&mut self.queue, &mut self.cluster, &self.scoring);
        for assignment in &assignments {
            let neighbor = self.neighbor_of(assignment.vm, assignment.task.id);
            let record = self
                .tasks
                .get_mut(&assignment.task.id)
                .expect("scheduler placed a task the service never admitted");
            let predicted_runtime = self
                .observer
                .predict_runtime(record.app_idx, neighbor.unwrap_or(IDLE));
            record.phase = TaskPhase::Running {
                vm: assignment.vm,
                neighbor,
                predicted_score: assignment.predicted_score,
                predicted_runtime,
            };
            let waited = now.duration_since(record.submitted);
            self.metrics
                .observe_dispatch_latency(waited.as_micros().min(u128::from(u64::MAX)) as u64);
            self.running += 1;
        }
        self.sync_gauges();
        assignments.len()
    }

    /// Batch-deadline check, driven by the daemon's ticker: dispatch a
    /// partial window once the oldest queued task has waited long enough.
    pub fn tick(&mut self, now: Instant) -> usize {
        if matches!(self.cfg.scheduler, SchedKind::Mios) {
            // MIOS dispatches eagerly; the ticker only matters when a
            // previous dispatch stalled on a full cluster, which the
            // completion path already retries.
            return 0;
        }
        let Some(front) = self.queue.front() else {
            return 0;
        };
        let overdue = self
            .tasks
            .get(&front.id)
            .map(|r| now.duration_since(r.submitted).as_millis() as u64 >= self.cfg.batch_deadline_ms)
            .unwrap_or(false);
        if self.queue.len() >= self.cfg.scheduler.window() || overdue || self.draining {
            self.dispatch(now)
        } else {
            0
        }
    }

    /// Record a client-reported completion: free the slot, feed the
    /// monitor, swap the predictor if a rebuild fired, and dispatch onto
    /// the freed capacity.
    pub fn complete(
        &mut self,
        task: u64,
        runtime: f64,
        iops: f64,
        now: Instant,
    ) -> Result<Completed, Refusal> {
        let record = self
            .tasks
            .get(&task)
            .ok_or(Refusal::UnknownTask { task })?;
        let (vm, neighbor) = match record.phase {
            TaskPhase::Running { vm, neighbor, .. } => (vm, neighbor),
            _ => return Err(Refusal::NotRunning { task }),
        };
        let app_idx = record.app_idx;
        self.cluster.clear(vm);
        self.tasks.get_mut(&task).unwrap().phase = TaskPhase::Completed { runtime };
        self.running -= 1;
        self.completed += 1;
        self.metrics
            .completions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let rebuilt = self.observer.record(app_idx, neighbor, runtime, iops);
        if rebuilt {
            self.metrics
                .rebuilds
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let mut swapped = false;
        if let Some(predictor) = self.observer.updated_predictor() {
            self.scoring = ScoringPolicy::new_owned(predictor, self.cfg.objective);
            self.metrics
                .predictor_swaps
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            swapped = true;
        }
        // The freed slot may unblock queued work regardless of scheduler:
        // batch windows still apply, but a stalled full-cluster dispatch
        // should retry now.
        let dispatched = if matches!(self.cfg.scheduler, SchedKind::Mios) || self.draining {
            self.dispatch(now)
        } else {
            self.tick(now)
        };
        self.sync_gauges();
        Ok(Completed {
            rebuilt,
            swapped,
            dispatched,
        })
    }

    /// Stop admitting new work. Returns the current snapshot.
    pub fn drain(&mut self, now: Instant) -> StatusSnapshot {
        self.draining = true;
        // Flush any partial batch immediately rather than waiting for the
        // deadline tick.
        self.dispatch(now);
        self.status()
    }

    /// True once a draining daemon has no queued or running work left.
    pub fn drained(&self) -> bool {
        self.draining && self.queue.is_empty() && self.running == 0
    }

    /// Whether the daemon has been asked to drain.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Aggregate state for `status` replies.
    pub fn status(&self) -> StatusSnapshot {
        StatusSnapshot {
            queued: self.queue.len(),
            running: self.running,
            completed: self.completed,
            admitted: self
                .metrics
                .admissions
                .load(std::sync::atomic::Ordering::Relaxed),
            rejected: self
                .metrics
                .rejections
                .load(std::sync::atomic::Ordering::Relaxed),
            rebuilds: self.observer.total_rebuilds(),
            swaps: self.observer.predictor_swaps(),
            draining: self.draining,
            machines: self.cluster.n_machines(),
            free_slots: self.cluster.n_free(),
            scheduler: match self.cfg.scheduler {
                SchedKind::Mios => "mios",
                SchedKind::Mibs(_) => "mibs",
                SchedKind::Mix(_) => "mix",
            },
        }
    }

    /// Look up one task's record.
    pub fn task_info(&self, task: u64) -> Option<&TaskRecord> {
        self.tasks.get(&task)
    }

    /// Application name for a perf-table index (for reply rendering).
    pub fn app_name(&self, app_idx: usize) -> &str {
        self.observer.app_names()[app_idx].as_str()
    }

    /// All profiled application names in pair-table index order — the
    /// index space arrival generators sample over.
    pub fn app_list(&self) -> &[String] {
        self.observer.app_names()
    }

    /// Retry hint for backpressure replies.
    pub fn retry_after_ms(&self) -> u64 {
        self.cfg.retry_after_ms
    }

    fn neighbor_of(&self, vm: VmRef, own_task: u64) -> Option<usize> {
        for slot in 0..self.cluster.slots_per_machine() {
            if slot == vm.slot {
                continue;
            }
            let other = VmRef {
                machine: vm.machine,
                slot,
            };
            if let Some(resident) = self.cluster.resident(other) {
                if resident.task_id != own_task {
                    return Some(self.perf_index[&resident.app]);
                }
            }
        }
        None
    }

    fn sync_gauges(&self) {
        self.metrics
            .queue_depth
            .store(self.queue.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.metrics
            .running
            .store(self.running as u64, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracon_dcsim::TestbedConfig;

    fn tiny_testbed() -> Testbed {
        let mut cfg = TestbedConfig::small();
        cfg.calibration_points = 6;
        cfg.time_scale = 0.05;
        Testbed::build(&cfg)
    }

    fn service(sched: SchedKind, queue_capacity: usize) -> Service {
        let testbed = tiny_testbed();
        let cfg = ServeConfig {
            machines: 2,
            slots_per_machine: 2,
            scheduler: sched,
            queue_capacity,
            ..ServeConfig::default()
        };
        Service::new(&testbed, cfg, Arc::new(Metrics::new()))
    }

    #[test]
    fn mios_places_on_submit_until_cluster_full() {
        let mut svc = service(SchedKind::Mios, 8);
        let now = Instant::now();
        let apps: Vec<String> = svc.observer.app_names().to_vec();
        let mut placed = 0;
        for i in 0..6 {
            let out = svc.submit(&apps[i % apps.len()], now).unwrap();
            if out.placement.is_some() {
                placed += 1;
            }
        }
        // 2 machines x 2 slots: exactly 4 placements, 2 queued.
        assert_eq!(placed, 4);
        assert_eq!(svc.status().queued, 2);
        assert_eq!(svc.status().running, 4);
    }

    #[test]
    fn bounded_queue_rejects_with_queue_full() {
        let mut svc = service(SchedKind::Mios, 2);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        // Fill the cluster (4 slots) then the queue (2).
        for _ in 0..6 {
            svc.submit(&app, now).unwrap();
        }
        match svc.submit(&app, now) {
            Err(Refusal::QueueFull { depth }) => assert_eq!(depth, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn completion_frees_slot_and_dispatches_queued_work() {
        let mut svc = service(SchedKind::Mios, 4);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        let mut first = None;
        for i in 0..5 {
            let out = svc.submit(&app, now).unwrap();
            if i == 0 {
                first = Some(out.task);
            }
        }
        assert_eq!(svc.status().queued, 1);
        let done = svc.complete(first.unwrap(), 2.0, 100.0, now).unwrap();
        assert_eq!(done.dispatched, 1);
        assert_eq!(svc.status().queued, 0);
        assert_eq!(svc.status().completed, 1);
    }

    #[test]
    fn batch_scheduler_waits_for_window_then_deadline() {
        let mut svc = service(SchedKind::Mibs(3), 8);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        svc.submit(&app, now).unwrap();
        svc.submit(&app, now).unwrap();
        assert_eq!(svc.status().running, 0, "window of 3 not yet full");
        svc.submit(&app, now).unwrap();
        assert_eq!(svc.status().running, 3, "full window dispatches");
        // A lone straggler dispatches via the deadline tick.
        svc.submit(&app, now).unwrap();
        assert_eq!(svc.status().queued, 1);
        let later = now + std::time::Duration::from_millis(500);
        assert_eq!(svc.tick(later), 1);
        assert_eq!(svc.status().queued, 0);
    }

    #[test]
    fn drain_refuses_new_work_and_reports_idle() {
        let mut svc = service(SchedKind::Mios, 4);
        let now = Instant::now();
        let app = svc.observer.app_names()[0].clone();
        let admitted = svc.submit(&app, now).unwrap();
        svc.drain(now);
        assert!(matches!(svc.submit(&app, now), Err(Refusal::Draining)));
        assert!(!svc.drained());
        svc.complete(admitted.task, 1.5, 80.0, now).unwrap();
        assert!(svc.drained());
    }

    #[test]
    fn completions_trigger_rebuild_and_predictor_swap() {
        let testbed = tiny_testbed();
        let cfg = ServeConfig {
            machines: 2,
            slots_per_machine: 2,
            scheduler: SchedKind::Mios,
            queue_capacity: 8,
            monitor: MonitorConfig {
                rebuild_every: 6,
                ..MonitorConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut svc = Service::new(&testbed, cfg, Arc::new(Metrics::new()));
        let now = Instant::now();
        // Rebuild cadence is per-app model, so drive one application hard.
        let app = svc.observer.app_names()[0].clone();
        let mut swaps = 0;
        for round in 0..20 {
            let out = svc.submit(&app, now).unwrap();
            let done = svc.complete(out.task, 1.0 + round as f64 * 0.1, 90.0, now).unwrap();
            if done.swapped {
                swaps += 1;
            }
        }
        assert!(swaps > 0, "expected at least one predictor swap");
        assert!(svc.status().rebuilds > 0);
    }

    #[test]
    fn unknown_app_and_unknown_task_are_refused() {
        let mut svc = service(SchedKind::Mios, 4);
        let now = Instant::now();
        assert!(matches!(
            svc.submit("no-such-app", now),
            Err(Refusal::UnknownApp { .. })
        ));
        assert!(matches!(
            svc.complete(999, 1.0, 1.0, now),
            Err(Refusal::UnknownTask { task: 999 })
        ));
    }
}
