//! The poll-based connection reactor: one thread owns every client
//! socket and routes decoded requests to scheduler-shard workers.
//!
//! The pre-sharding daemon spent a thread per connection; this module
//! replaces that with a single event loop multiplexed over `poll(2)`
//! (a thin hand-rolled `#[cfg(unix)]` FFI wrapper — no new dependencies,
//! the same discipline as `tracon_core::par`). Per connection it keeps a
//! bounded read buffer for partial NDJSON lines, an outbox of rendered
//! reply bytes, and a sequence-numbered reorder stage so replies go out
//! in request order even though shards answer out of order.
//!
//! Request routing:
//! - `submit` interns the application name at decode time and
//!   rendezvous-hashes the [`tracon_core::AppId`] to a shard
//!   ([`crate::shard::route_app`]); unprofiled names hash by name so any
//!   shard can issue the identical `unknown-app` refusal.
//! - `complete`/`task_info` go to the task's stride shard
//!   ([`crate::shard::stride_shard`]) unless a work-steal re-homed the
//!   task, in which case the reactor's exception table — or, for races,
//!   a worker-issued [`OutMsg::Redirect`] — finds the new home.
//! - `status`/`drain` fan out to every shard and the replies are summed
//!   before one aggregate line goes back to the client.
//! - `shutdown` is answered by the reactor itself, which then stops the
//!   daemon once outstanding replies have flushed (or a short grace
//!   period expires).
//!
//! The reactor is also the rebalancer: every tick it compares per-shard
//! queue depths (via [`crate::metrics::Metrics`] shard gauges) and, when
//! the skew exceeds [`STEAL_MIN_SKEW`], asks the deepest shard to move
//! half the gap to the shallowest ([`ShardMsg::Steal`]). Stolen tasks
//! come back through [`OutMsg::Stolen`], update the exception table, and
//! are forwarded to the recipient as [`ShardMsg::Inject`] — channel FIFO
//! order guarantees the inject lands before any redirected request for
//! the same task.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::TcpListener;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tracon_core::AppId;

use crate::daemon::NetConfig;
use crate::json::{n, obj, s, Value};
use crate::metrics::Metrics;
use crate::proto::{self, ErrorKind, Reply, Request};
use crate::repl::{LeaderGuard, PullAdmission, ReplState, Role};
use crate::shard::{route_app, route_name, stride_shard, HomedTask};
use crate::state::{StatusSnapshot, StolenTask};
use crate::wal::Wal;

/// Queue-depth gap between the deepest and shallowest shard before the
/// reactor triggers a work-steal rebalance pass.
pub const STEAL_MIN_SKEW: u64 = 8;

/// A redirected request that bounces more than this many times is
/// answered `unknown-task` (covers a task migrating while its redirect
/// is in flight; two hops settle every realistic race).
const MAX_REDIRECT_HOPS: u8 = 16;

/// Grace period for flushing outstanding replies after a `shutdown`
/// request or the last shard draining.
const STOP_GRACE: Duration = Duration::from_secs(1);

/// Hard cap on buffered un-flushed reply bytes per connection; a client
/// that stops reading past this point is disconnected.
const MAX_OUTBOX_BYTES: usize = 4 << 20;

/// Work sent from the reactor to one shard worker.
pub(crate) enum ShardMsg {
    /// One decoded client request to answer.
    Request {
        /// Reactor connection id (opaque to the worker).
        conn: u64,
        /// Per-connection sequence number for reply ordering.
        seq: u64,
        /// Echoed client request id.
        id: Option<String>,
        /// The request; only `Submit`/`Complete`/`TaskInfo` reach workers.
        request: Request,
        /// Redirect-bounce count (0 for first delivery).
        hops: u8,
    },
    /// Contribute one part to a fan-out `status` aggregation.
    Status {
        /// Aggregation token.
        agg: u64,
    },
    /// Start draining and contribute one part to the `drain` reply.
    Drain {
        /// Aggregation token.
        agg: u64,
    },
    /// Pop up to `max` queued tasks for shard `to` (work-steal donor side).
    Steal {
        /// Recipient shard.
        to: usize,
        /// Upper bound on tasks to move.
        max: usize,
    },
    /// Adopt tasks stolen from shard `from` (work-steal recipient side).
    Inject {
        /// Donor shard.
        from: usize,
        /// The stolen tasks.
        tasks: Vec<StolenTask>,
    },
    /// A follower promoted to leader: adopt the recovered state and the
    /// now-writable WAL. Sent exactly once per shard, before the role
    /// flip, so channel FIFO order guarantees it lands ahead of any
    /// ungated client request.
    Promote {
        /// The shard's recovered, append-ready WAL.
        wal: Wal,
        /// Recovered tasks homed to this shard.
        tasks: Vec<HomedTask>,
        /// Global `next_task_id` high-water mark across all shards.
        next_task_id: u64,
    },
    /// A fenced ex-leader is rejoining the pair as a follower: drop all
    /// scheduler state and surrender the WAL handle so the rejoin
    /// supervisor can wipe the shard files and resync from the new
    /// leader's snapshot. Mirror of [`ShardMsg::Promote`]. The `done`
    /// ack lets the supervisor wait until every worker has let go of its
    /// file handles before deleting the files under them.
    Demote {
        /// Signalled (best-effort) once the worker's state is dropped.
        done: Sender<()>,
    },
}

/// Everything a shard worker sends back to the reactor.
pub(crate) enum OutMsg {
    /// A rendered reply line (no trailing newline) for one request.
    Reply {
        /// Connection id from the originating [`ShardMsg::Request`].
        conn: u64,
        /// Sequence number from the originating request.
        seq: u64,
        /// The encoded reply line.
        line: String,
    },
    /// One shard's contribution to a `status` aggregation.
    StatusPart {
        /// Aggregation token.
        agg: u64,
        /// Contributing shard.
        shard: usize,
        /// The shard's status snapshot.
        snap: StatusSnapshot,
        /// Profiled application names (identical on every shard).
        apps: Vec<String>,
    },
    /// One shard's contribution to a `drain` aggregation.
    DrainPart {
        /// Aggregation token.
        agg: u64,
        /// Contributing shard.
        shard: usize,
        /// The shard's post-drain snapshot.
        snap: StatusSnapshot,
    },
    /// The task this request names migrated to another shard; re-route.
    Redirect {
        /// Connection id of the original request.
        conn: u64,
        /// Sequence number of the original request.
        seq: u64,
        /// Echoed client request id.
        id: Option<String>,
        /// The original request, unanswered.
        request: Request,
        /// Where the task went.
        to: usize,
        /// Bounce count so far.
        hops: u8,
    },
    /// Donor's answer to a [`ShardMsg::Steal`] (possibly empty).
    Stolen {
        /// Donor shard.
        from: usize,
        /// Recipient shard.
        to: usize,
        /// Tasks moved (already tombstoned in the donor's WAL).
        tasks: Vec<StolenTask>,
    },
    /// This shard is draining and has no work left (sent at most once).
    Drained {
        /// The drained shard.
        shard: usize,
    },
}

/// Worker-side handle for sending [`OutMsg`]s: every send also writes a
/// wake byte so the reactor's `poll` returns promptly.
#[derive(Clone)]
pub(crate) struct OutSender {
    tx: Sender<OutMsg>,
    wake: Arc<std::os::unix::net::UnixStream>,
}

impl OutSender {
    pub(crate) fn new(tx: Sender<OutMsg>, wake: std::os::unix::net::UnixStream) -> OutSender {
        OutSender {
            tx,
            wake: Arc::new(wake),
        }
    }

    pub(crate) fn send(&self, msg: OutMsg) {
        let _ = self.tx.send(msg);
        self.wake();
    }

    /// Enqueue without waking; pair with one [`OutSender::wake`] per
    /// batch so a worker draining a deep queue costs one pipe write, not
    /// one per reply.
    pub(crate) fn send_quiet(&self, msg: OutMsg) {
        let _ = self.tx.send(msg);
    }

    pub(crate) fn wake(&self) {
        // A full pipe already guarantees a pending wake; WouldBlock is fine.
        let _ = (&*self.wake).write(&[1]);
    }
}

/// Thin `poll(2)` wrapper. Unix gets the real syscall; other targets get
/// a degenerate stand-in that sleeps one tick and reports every fd ready
/// (reads then return `WouldBlock` harmlessly — correct, just busy).
mod sys {
    /// Mirror of `struct pollfd`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[cfg(unix)]
    mod imp {
        use super::PollFd;

        #[cfg(target_os = "macos")]
        type Nfds = u32;
        #[cfg(not(target_os = "macos"))]
        type Nfds = std::os::raw::c_ulong;

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
        }

        pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `#[repr(C)]` pollfd mirrors and the length is its true length.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
            if rc < 0 {
                Err(std::io::Error::last_os_error())
            } else {
                Ok(rc as usize)
            }
        }
    }

    #[cfg(not(unix))]
    mod imp {
        use super::{PollFd, POLLIN, POLLOUT};

        pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(1) as u64));
            for fd in fds.iter_mut() {
                fd.revents = fd.events & (POLLIN | POLLOUT);
            }
            Ok(fds.len())
        }
    }

    pub use imp::poll_fds;
}

use std::os::unix::io::AsRawFd;

/// One client connection's reactor-side state.
struct Conn {
    stream: TcpStream,
    /// Partial-line read buffer, bounded by `max_line_bytes`.
    rbuf: Vec<u8>,
    /// Flushed-in-order reply bytes waiting for the socket.
    wbuf: Vec<u8>,
    /// True while discarding the tail of an oversized frame.
    discarding: bool,
    /// Last complete request line (for the idle timeout).
    last_activity: Instant,
    /// Set when a write returns `WouldBlock`; cleared on progress.
    write_stalled_since: Option<Instant>,
    /// Next sequence number to assign to an incoming request.
    next_seq: u64,
    /// Next sequence number to flush into `wbuf`.
    next_write: u64,
    /// Replies that arrived ahead of an earlier outstanding request.
    pending: BTreeMap<u64, String>,
    /// Requests dispatched to shards with no reply yet.
    inflight: usize,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            discarding: false,
            last_activity: now,
            write_stalled_since: None,
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            inflight: 0,
        }
    }

    /// All replies owed to this client have been written to the socket.
    fn quiescent(&self) -> bool {
        self.inflight == 0 && self.pending.is_empty() && self.wbuf.is_empty()
    }
}

/// One in-flight `status`/`drain` fan-out.
struct Agg {
    conn: u64,
    seq: u64,
    id: Option<String>,
    drain: bool,
    parts: Vec<Option<StatusSnapshot>>,
    apps: Option<Vec<String>>,
    remaining: usize,
}

/// Everything the daemon hands the reactor thread at boot.
pub(crate) struct ReactorConfig {
    pub listener: TcpListener,
    pub net: NetConfig,
    pub shard_txs: Vec<Sender<ShardMsg>>,
    pub out_rx: Receiver<OutMsg>,
    pub wake_rx: std::os::unix::net::UnixStream,
    pub shutdown: Arc<AtomicBool>,
    pub draining: Arc<AtomicBool>,
    pub metrics: Arc<Metrics>,
    /// Profiled application name -> interned id, for decode-time routing.
    pub app_ids: HashMap<String, AppId>,
    /// Replication state; `None` disables `repl_*` requests and gating.
    pub repl: Option<Arc<ReplState>>,
    /// Leader-side lease TTL: with a registered follower silent for this
    /// long, the reactor suspends mutations (tightened further by the
    /// TTL followers advertise in their pulls).
    pub repl_ttl_ms: u64,
}

/// Run the reactor event loop until shutdown. Consumes the config; the
/// shard senders drop on return, which releases the workers.
pub(crate) fn run(cfg: ReactorConfig) {
    Reactor::new(cfg).run();
}

struct Reactor {
    listener: TcpListener,
    net: NetConfig,
    shard_txs: Vec<Sender<ShardMsg>>,
    out_rx: Receiver<OutMsg>,
    wake_rx: std::os::unix::net::UnixStream,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    app_ids: HashMap<String, AppId>,
    repl: Option<Arc<ReplState>>,
    /// Per-shard replication lag (`ship_next - follower cursor`) from the
    /// latest served pull; the max is exported as `repl_lag_frames`.
    repl_lag: Vec<u64>,
    /// Leader-side lease over the one registered follower: tracks the
    /// last served pull and suspends mutations once the follower has
    /// been silent long enough that it may have promoted.
    repl_guard: LeaderGuard,
    /// Configured guard TTL, kept so the guard can be rebuilt fresh when
    /// this node loses the leader role (a rejoined ex-leader is a *new*
    /// follower; the old slot holder must not linger).
    repl_ttl_ms: u64,
    /// Millisecond origin for the guard's clock.
    start: Instant,

    conns: HashMap<u64, Conn>,
    next_conn: u64,
    aggs: HashMap<u64, Agg>,
    next_agg: u64,
    /// Tasks living away from their stride shard after a steal.
    exceptions: HashMap<u64, usize>,
    /// Shards that reported `Drained`.
    drained: HashSet<usize>,
    /// At most one steal pass in flight at a time.
    steal_outstanding: bool,
    /// Set once a stop was requested; the loop exits when every owed
    /// reply has flushed or the deadline passes.
    stop_deadline: Option<Instant>,
    accepting: bool,
}

impl Reactor {
    fn new(cfg: ReactorConfig) -> Reactor {
        let repl_lag = vec![0u64; cfg.shard_txs.len()];
        Reactor {
            listener: cfg.listener,
            net: cfg.net,
            shard_txs: cfg.shard_txs,
            out_rx: cfg.out_rx,
            wake_rx: cfg.wake_rx,
            shutdown: cfg.shutdown,
            draining: cfg.draining,
            metrics: cfg.metrics,
            app_ids: cfg.app_ids,
            repl: cfg.repl,
            repl_lag,
            repl_guard: LeaderGuard::new(cfg.repl_ttl_ms),
            repl_ttl_ms: cfg.repl_ttl_ms,
            start: Instant::now(),
            conns: HashMap::new(),
            next_conn: 0,
            aggs: HashMap::new(),
            next_agg: 0,
            exceptions: HashMap::new(),
            drained: HashSet::new(),
            steal_outstanding: false,
            stop_deadline: None,
            accepting: true,
        }
    }

    fn shards(&self) -> usize {
        self.shard_txs.len()
    }

    fn run(mut self) {
        let tick_ms = self.net.tick_ms.max(1).min(i32::MAX as u64) as i32;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }

            // Build the poll set: listener, wake pipe, then every conn.
            let mut fds: Vec<sys::PollFd> = Vec::with_capacity(self.conns.len() + 2);
            let mut ids: Vec<u64> = Vec::with_capacity(self.conns.len());
            fds.push(sys::PollFd {
                fd: self.listener.as_raw_fd(),
                events: if self.accepting { sys::POLLIN } else { 0 },
                revents: 0,
            });
            fds.push(sys::PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            for (&id, conn) in &self.conns {
                let mut events = sys::POLLIN;
                if !conn.wbuf.is_empty() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                ids.push(id);
            }
            if sys::poll_fds(&mut fds, tick_ms).is_err() {
                // EINTR or fd churn; retry with a rebuilt set.
                continue;
            }
            let now = Instant::now();

            if fds[0].revents & (sys::POLLIN | sys::POLLERR) != 0 {
                self.accept_new(now);
            }
            if fds[1].revents & sys::POLLIN != 0 {
                let mut sink = [0u8; 256];
                while matches!((&self.wake_rx).read(&mut sink), Ok(count) if count > 0) {}
            }

            // Shard results first so replies unblock ordered flushes below.
            self.drain_out();

            for (i, &id) in ids.iter().enumerate() {
                let revents = fds[i + 2].revents;
                if revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0 {
                    self.read_conn(id, now);
                }
                if revents & sys::POLLOUT != 0 {
                    self.flush_conn(id, now);
                }
            }

            // One batched flush per iteration: replies accumulate in
            // each connection's outbox while requests are processed, then
            // go out in one `write` per connection instead of one per
            // reply.
            let dirty: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, conn)| !conn.wbuf.is_empty())
                .map(|(&id, _)| id)
                .collect();
            for id in dirty {
                self.flush_conn(id, now);
            }

            self.reap_timeouts(now);
            self.maybe_steal();
            self.tick_repl_guard(now);

            if let Some(deadline) = self.stop_deadline {
                let quiescent = self.aggs.is_empty() && self.conns.values().all(Conn::quiescent);
                if quiescent || now >= deadline {
                    self.shutdown.store(true, Ordering::SeqCst);
                }
            }
        }
        // Final courtesy flush so replies written just before the stop
        // (e.g. the `shutdown` ack) reach clients that are still reading.
        for conn in self.conns.values_mut() {
            if !conn.wbuf.is_empty() {
                let _ = conn.stream.write_all(&conn.wbuf);
            }
        }
    }

    fn accept_new(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Failpoint: drop the fresh connection on the floor,
                    // as if the accept had failed under fd pressure.
                    if crate::failpoint::should_fail("reactor.accept", "").is_some() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(stream, now));
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Read until `WouldBlock`, peeling complete lines. Mirrors the
    /// pre-reactor per-thread loop: oversized frames get one structured
    /// error and their tail is discarded without being buffered.
    fn read_conn(&mut self, id: u64, now: Instant) {
        // Failpoint: the socket read "fails"; the connection is torn down
        // exactly as a real I/O error would tear it down.
        if crate::failpoint::should_fail("reactor.read", "").is_some() {
            self.close(id);
            return;
        }
        let mut chunk = [0u8; 4096];
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(id);
                    return;
                }
                Ok(count) => {
                    conn.rbuf.extend_from_slice(&chunk[..count]);
                    self.peel_lines(id, now);
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => return,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
    }

    /// Peel every complete line out of the connection's read buffer in
    /// one pass. The buffer is taken out of the connection so complete
    /// lines are dispatched as borrowed slices — no per-line allocation —
    /// and the unconsumed tail is compacted with a single `drain`.
    fn peel_lines(&mut self, id: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut buf = std::mem::take(&mut conn.rbuf);
        let mut discarding = conn.discarding;
        let mut start = 0usize;
        while let Some(pos) = buf[start..].iter().position(|b| *b == b'\n') {
            let end = start + pos;
            let frame = &buf[start..=end];
            if discarding {
                discarding = false;
                start = end + 1;
                continue;
            }
            if frame.len() > self.net.max_line_bytes {
                let message = format!("request line exceeds {} bytes", self.net.max_line_bytes);
                self.local_error(id, None, ErrorKind::FrameTooLarge, message);
                start = end + 1;
                continue;
            }
            let line = String::from_utf8_lossy(&buf[start..end]);
            let line = line.trim_end_matches(['\n', '\r']).trim();
            start = end + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.last_activity = now;
            }
            self.dispatch_line(id, line);
            if !self.conns.contains_key(&id) {
                return; // Dispatch closed the connection (e.g. outbox cap).
            }
        }
        buf.drain(..start);
        // An over-long tail with no newline yet: drop it now and keep
        // discarding until the next newline arrives.
        if discarding {
            buf.clear();
        } else if buf.len() > self.net.max_line_bytes {
            discarding = true;
            buf.clear();
            let message = format!(
                "request line exceeds {} bytes; discarding until newline",
                self.net.max_line_bytes
            );
            self.local_error(id, None, ErrorKind::FrameTooLarge, message);
        }
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.rbuf = buf;
            conn.discarding = discarding;
        }
    }

    /// An error generated by the reactor itself still occupies a slot in
    /// the reply order.
    fn local_error(&mut self, id: u64, req_id: Option<String>, kind: ErrorKind, message: String) {
        self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight += 1;
        let line = proto::encode_reply(&Reply::error(req_id, kind, message));
        self.complete(id, seq, line);
    }

    fn dispatch_line(&mut self, id: u64, line: &str) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight += 1;
        let envelope = match proto::decode_request(line) {
            Ok(envelope) => envelope,
            Err(e) => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let line = proto::encode_reply(&e.into_reply());
                self.complete(id, seq, line);
                return;
            }
        };
        let req_id = envelope.id;
        match envelope.request {
            Request::Status => self.start_agg(id, seq, req_id, false),
            Request::Drain => {
                self.draining.store(true, Ordering::SeqCst);
                self.start_agg(id, seq, req_id, true);
            }
            Request::Shutdown => {
                let line = proto::encode_reply(&Reply::ok(
                    req_id,
                    obj(vec![("stopping", Value::Bool(true))]),
                ));
                self.complete(id, seq, line);
                self.begin_stop();
            }
            Request::ReplPull {
                epoch,
                shard,
                cursor,
                addr,
                ttl_ms,
            } => {
                let line = self.serve_repl_pull(req_id, epoch, shard, cursor, &addr, ttl_ms);
                self.complete(id, seq, line);
            }
            Request::ReplLease { epoch, leader_addr } => {
                let line = self.serve_repl_lease(req_id, epoch, leader_addr);
                self.complete(id, seq, line);
            }
            Request::Fail { action, spec } => {
                let line = serve_fail(req_id, &action, spec.as_deref());
                self.complete(id, seq, line);
            }
            Request::Submit { app, demand } => {
                if let Some(line) = self.refuse_if_not_leader(&req_id) {
                    self.complete(id, seq, line);
                    return;
                }
                let shard = match self.app_ids.get(&app) {
                    Some(&app_id) => route_app(app_id, self.shards()),
                    None => route_name(&app, self.shards()),
                };
                self.send_shard(
                    shard,
                    ShardMsg::Request {
                        conn: id,
                        seq,
                        id: req_id,
                        request: Request::Submit { app, demand },
                        hops: 0,
                    },
                );
            }
            request @ (Request::Complete { .. } | Request::TaskInfo { .. }) => {
                if matches!(request, Request::Complete { .. }) {
                    if let Some(line) = self.refuse_if_not_leader(&req_id) {
                        self.complete(id, seq, line);
                        return;
                    }
                }
                let task = match &request {
                    Request::Complete { task, .. } | Request::TaskInfo { task } => *task,
                    _ => unreachable!(),
                };
                let shard = self
                    .exceptions
                    .get(&task)
                    .copied()
                    .unwrap_or_else(|| stride_shard(task, self.shards()));
                self.send_shard(
                    shard,
                    ShardMsg::Request {
                        conn: id,
                        seq,
                        id: req_id,
                        request,
                        hops: 0,
                    },
                );
            }
        }
    }

    fn send_shard(&mut self, shard: usize, msg: ShardMsg) {
        // A dead worker only happens during shutdown; the reply is moot.
        let _ = self.shard_txs[shard].send(msg);
    }

    /// When replication is on and this node cannot safely serve a
    /// mutating request, the rendered `not_leader` refusal: either the
    /// role is not Leader, or the registered follower has been silent
    /// past the TTL — it may have promoted, so an ack here could be a
    /// silently lost write. The suspension hint points at that follower,
    /// the one address that may now be the leader.
    fn refuse_if_not_leader(&self, req_id: &Option<String>) -> Option<String> {
        let repl = self.repl.as_ref()?;
        if repl.role() == Role::Leader {
            let holder = self.repl_guard.suspended_hint()?;
            let reply = Reply::not_leader(req_id.clone(), Some(holder.to_string()), repl.epoch());
            return Some(proto::encode_reply(&reply));
        }
        let reply = Reply::not_leader(req_id.clone(), repl.leader_addr(), repl.epoch());
        Some(proto::encode_reply(&reply))
    }

    /// Advance the leader guard's clock: with a registered follower
    /// silent past the TTL, mutations suspend until that follower pulls
    /// again (proving it never promoted) or this node is fenced.
    fn tick_repl_guard(&mut self, now: Instant) {
        let Some(repl) = self.repl.as_ref() else {
            return;
        };
        if repl.role() != Role::Leader {
            self.metrics
                .repl_writes_suspended
                .store(0, Ordering::Relaxed);
            // Forget the follower slot and any suspension: if this node
            // is later re-promoted (rejoin cycles swap the pair's roles
            // repeatedly), its follower will be a different address and
            // must be able to claim a vacant slot.
            if !self.repl_guard.vacant() {
                self.repl_guard = LeaderGuard::new(self.repl_ttl_ms);
            }
            return;
        }
        let now_ms = now.duration_since(self.start).as_millis() as u64;
        self.repl_guard.tick(now_ms);
        self.metrics.repl_writes_suspended.store(
            u64::from(self.repl_guard.suspended_hint().is_some()),
            Ordering::Relaxed,
        );
    }

    /// Serve one follower pull: fence on a newer epoch, refuse when not
    /// leader, enforce the single-follower slot, renew the leader-side
    /// lease, and hand back a chunk from the ship log with the
    /// follower's lag recorded.
    fn serve_repl_pull(
        &mut self,
        req_id: Option<String>,
        epoch: u64,
        shard: usize,
        cursor: u64,
        addr: &str,
        ttl_ms: u64,
    ) -> String {
        let Some(repl) = self.repl.clone() else {
            let reply = Reply::error(
                req_id,
                ErrorKind::Malformed,
                "replication is not enabled on this node".to_string(),
            );
            return proto::encode_reply(&reply);
        };
        // A pull stamped with a higher epoch proves a promotion happened
        // while this node thought it was still leading: step down first.
        if epoch > repl.epoch() {
            repl.fence(epoch, None);
        }
        if repl.role() != Role::Leader {
            let reply = Reply::not_leader(req_id, repl.leader_addr(), repl.epoch());
            return proto::encode_reply(&reply);
        }
        if shard >= self.shards() {
            let reply = Reply::error(
                req_id,
                ErrorKind::Malformed,
                format!("shard {shard} out of range (shards={})", self.shards()),
            );
            return proto::encode_reply(&reply);
        }
        // The epoch check above proves this puller has not promoted (a
        // promotion durably claims a strictly higher epoch before its
        // first pull), so granting the lease — and resuming suspended
        // writes — is safe. A second follower is refused outright:
        // epochs are claimed as observed+1, so two synced followers
        // could promote to the SAME epoch and never fence each other.
        // A puller that advertises no promotion TTL (`ttl_ms: 0` — e.g.
        // the replication bench, or ad-hoc inspection) can never promote,
        // so it is served as a read-only observer: no slot, no lease, no
        // suspension armed on its behalf.
        if ttl_ms == 0 {
            return self.encode_pull_chunk_reply(req_id, &repl, shard, cursor);
        }
        self.repl_guard.observe_ttl(ttl_ms);
        let registering = self.repl_guard.vacant();
        let now_ms = Instant::now().duration_since(self.start).as_millis() as u64;
        match self.repl_guard.on_pull(addr, now_ms) {
            PullAdmission::Conflict { holder } => {
                let reply = Reply::backpressure(
                    req_id,
                    format!(
                        "replication slot already held by {holder}; \
                         tracond pairs support a single follower"
                    ),
                    self.net.tick_ms.max(1) * 40,
                );
                return proto::encode_reply(&reply);
            }
            PullAdmission::Granted { resumed } => {
                if registering {
                    // First pull of this incarnation: persist the peer so
                    // a crashed-and-rebooted leader knows whom to probe.
                    repl.record_peer(addr);
                }
                if resumed {
                    self.metrics
                        .repl_writes_suspended
                        .store(0, Ordering::Relaxed);
                }
            }
        }
        self.encode_pull_chunk_reply(req_id, &repl, shard, cursor)
    }

    /// Ship one pull chunk and refresh the lag gauge — the tail shared by
    /// registered-follower and observer pulls.
    fn encode_pull_chunk_reply(
        &mut self,
        req_id: Option<String>,
        repl: &Arc<ReplState>,
        shard: usize,
        cursor: u64,
    ) -> String {
        let chunk = repl.ship().pull(shard, cursor);
        if let Some(slot) = self.repl_lag.get_mut(shard) {
            *slot = chunk.ship_next.saturating_sub(chunk.next);
        }
        let lag = self.repl_lag.iter().copied().max().unwrap_or(0);
        self.metrics.repl_lag_frames.store(lag, Ordering::Relaxed);
        let payload = crate::repl::encode_pull_chunk(repl.epoch(), repl.boot(), shard, &chunk);
        proto::encode_reply(&Reply::ok(req_id, payload))
    }

    /// Serve a peer's lease claim. An equal-or-newer epoch fences a
    /// leader; a non-leader adopts the epoch and leader hint without
    /// fencing, so its `not_leader` redirects converge on the claimant
    /// immediately instead of waiting for a pull to propagate it.
    fn serve_repl_lease(
        &mut self,
        req_id: Option<String>,
        epoch: u64,
        leader_addr: String,
    ) -> String {
        // Failpoint: the lease claim is "lost" before processing — the
        // claimant retries and safety falls back to the pull-epoch fence.
        if crate::failpoint::should_fail("repl.lease", &leader_addr).is_some() {
            let reply = Reply::error(
                req_id,
                ErrorKind::Malformed,
                "failpoint injected: repl.lease".to_string(),
            );
            return proto::encode_reply(&reply);
        }
        let Some(repl) = self.repl.as_ref() else {
            let reply = Reply::error(
                req_id,
                ErrorKind::Malformed,
                "replication is not enabled on this node".to_string(),
            );
            return proto::encode_reply(&reply);
        };
        if epoch >= repl.epoch() {
            if repl.role() == Role::Leader {
                repl.fence(epoch, Some(leader_addr));
            } else {
                repl.observe_leader(epoch, Some(leader_addr));
            }
        }
        let payload = obj(vec![
            ("epoch", n(repl.epoch() as f64)),
            ("role", s(repl.role().as_str())),
        ]);
        proto::encode_reply(&Reply::ok(req_id, payload))
    }

    fn start_agg(&mut self, conn: u64, seq: u64, id: Option<String>, drain: bool) {
        let agg = self.next_agg;
        self.next_agg += 1;
        let shards = self.shards();
        self.aggs.insert(
            agg,
            Agg {
                conn,
                seq,
                id,
                drain,
                parts: vec![None; shards],
                apps: None,
                remaining: shards,
            },
        );
        for shard in 0..shards {
            let msg = if drain {
                ShardMsg::Drain { agg }
            } else {
                ShardMsg::Status { agg }
            };
            self.send_shard(shard, msg);
        }
    }

    fn drain_out(&mut self) {
        while let Ok(msg) = self.out_rx.try_recv() {
            match msg {
                OutMsg::Reply { conn, seq, line } => self.complete(conn, seq, line),
                OutMsg::StatusPart {
                    agg,
                    shard,
                    snap,
                    apps,
                } => {
                    let done = match self.aggs.get_mut(&agg) {
                        None => false,
                        Some(entry) => {
                            if entry.parts[shard].is_none() {
                                entry.parts[shard] = Some(snap);
                                entry.remaining -= 1;
                            }
                            entry.apps.get_or_insert(apps);
                            entry.remaining == 0
                        }
                    };
                    if done {
                        self.finish_agg(agg);
                    }
                }
                OutMsg::DrainPart { agg, shard, snap } => {
                    let done = match self.aggs.get_mut(&agg) {
                        None => false,
                        Some(entry) => {
                            if entry.parts[shard].is_none() {
                                entry.parts[shard] = Some(snap);
                                entry.remaining -= 1;
                            }
                            entry.remaining == 0
                        }
                    };
                    if done {
                        self.finish_agg(agg);
                    }
                }
                OutMsg::Redirect {
                    conn,
                    seq,
                    id,
                    request,
                    to,
                    hops,
                } => {
                    let task = match &request {
                        Request::Complete { task, .. } | Request::TaskInfo { task } => *task,
                        _ => 0,
                    };
                    if hops >= MAX_REDIRECT_HOPS || to >= self.shards() {
                        let line = proto::encode_reply(&Reply::error(
                            id,
                            ErrorKind::UnknownTask,
                            format!("no task {task}"),
                        ));
                        self.complete(conn, seq, line);
                    } else {
                        self.exceptions.insert(task, to);
                        self.send_shard(
                            to,
                            ShardMsg::Request {
                                conn,
                                seq,
                                id,
                                request,
                                hops: hops + 1,
                            },
                        );
                    }
                }
                OutMsg::Stolen { from, to, tasks } => {
                    self.steal_outstanding = false;
                    if !tasks.is_empty() && to < self.shards() {
                        for task in &tasks {
                            self.exceptions.insert(task.task, to);
                        }
                        self.send_shard(to, ShardMsg::Inject { from, tasks });
                    }
                }
                OutMsg::Drained { shard } => {
                    self.drained.insert(shard);
                    if self.drained.len() == self.shards() {
                        self.begin_stop();
                    }
                }
            }
        }
    }

    /// Render the aggregate reply for a completed fan-out.
    fn finish_agg(&mut self, agg: u64) {
        let Some(entry) = self.aggs.remove(&agg) else {
            return;
        };
        let parts: Vec<StatusSnapshot> = entry.parts.into_iter().flatten().collect();
        let result = if entry.drain {
            obj(vec![
                ("draining", Value::Bool(true)),
                (
                    "queued",
                    n(parts.iter().map(|p| p.queued).sum::<usize>() as f64),
                ),
                (
                    "delayed",
                    n(parts.iter().map(|p| p.delayed).sum::<usize>() as f64),
                ),
                (
                    "running",
                    n(parts.iter().map(|p| p.running).sum::<usize>() as f64),
                ),
            ])
        } else {
            aggregate_status(&parts, entry.apps.unwrap_or_default())
        };
        let line = proto::encode_reply(&Reply::ok(entry.id, result));
        self.complete(entry.conn, entry.seq, line);
    }

    /// File a finished reply into its connection's reorder stage. In-order
    /// replies (the common case under pipelining) append straight to the
    /// outbox without touching the reorder map; the actual socket write
    /// happens in the event loop's batched flush.
    fn complete(&mut self, id: u64, seq: u64, line: String) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return; // Client left; drop the reply.
        };
        conn.inflight = conn.inflight.saturating_sub(1);
        if seq == conn.next_write {
            conn.next_write += 1;
            conn.wbuf.extend_from_slice(line.as_bytes());
            conn.wbuf.push(b'\n');
            while let Some(line) = conn.pending.remove(&conn.next_write) {
                conn.next_write += 1;
                conn.wbuf.extend_from_slice(line.as_bytes());
                conn.wbuf.push(b'\n');
            }
        } else {
            conn.pending.insert(seq, line);
        }
        if conn.wbuf.len() > MAX_OUTBOX_BYTES {
            self.close(id);
        }
    }

    fn flush_conn(&mut self, id: u64, now: Instant) {
        // Failpoint: the socket write "fails" mid-reply; clients see a
        // dropped connection with the reply possibly half-delivered.
        if crate::failpoint::should_fail("reactor.write", "").is_some() {
            self.close(id);
            return;
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while !conn.wbuf.is_empty() {
            match conn.stream.write(&conn.wbuf) {
                Ok(0) => {
                    self.close(id);
                    return;
                }
                Ok(count) => {
                    conn.wbuf.drain(..count);
                    conn.write_stalled_since = None;
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                    conn.write_stalled_since.get_or_insert(now);
                    return;
                }
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
    }

    fn reap_timeouts(&mut self, now: Instant) {
        let idle_limit = Duration::from_millis(self.net.idle_timeout_ms.max(1));
        let write_limit = Duration::from_millis(self.net.write_timeout_ms.max(1));
        let doomed: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                let idle = conn.quiescent() && now.duration_since(conn.last_activity) > idle_limit;
                let stalled = conn
                    .write_stalled_since
                    .is_some_and(|since| now.duration_since(since) > write_limit);
                idle || stalled
            })
            .map(|(&id, _)| id)
            .collect();
        for id in doomed {
            self.close(id);
        }
    }

    /// Trigger at most one work-steal pass when shard queue depths skew.
    fn maybe_steal(&mut self) {
        if self.shards() < 2 || self.steal_outstanding || self.stop_deadline.is_some() {
            return;
        }
        let depths: Vec<u64> = (0..self.shards())
            .map(|shard| {
                self.metrics
                    .shard_gauges(shard)
                    .map(|g| g.queue_depth.load(Ordering::Relaxed))
                    .unwrap_or(0)
            })
            .collect();
        let (deepest, &max) = match depths.iter().enumerate().max_by_key(|(_, d)| **d) {
            Some(found) => found,
            None => return,
        };
        let (shallowest, &min) = match depths.iter().enumerate().min_by_key(|(_, d)| **d) {
            Some(found) => found,
            None => return,
        };
        if max - min < STEAL_MIN_SKEW {
            return;
        }
        self.steal_outstanding = true;
        self.send_shard(
            deepest,
            ShardMsg::Steal {
                to: shallowest,
                max: ((max - min) / 2) as usize,
            },
        );
    }

    fn begin_stop(&mut self) {
        self.accepting = false;
        self.stop_deadline
            .get_or_insert_with(|| Instant::now() + STOP_GRACE);
    }

    fn close(&mut self, id: u64) {
        self.conns.remove(&id);
    }
}

/// Serve the `fail` control verb inline: arm, disarm, or report the
/// process-wide failpoint registry. Answered by the reactor on every
/// node regardless of role — chaos tooling must be able to arm faults
/// on followers and fenced nodes, not just the leader.
fn serve_fail(req_id: Option<String>, action: &str, spec: Option<&str>) -> String {
    let reply = match action {
        "arm" => match crate::failpoint::arm(spec.unwrap_or_default()) {
            Ok(count) => Reply::ok(
                req_id,
                obj(vec![
                    ("armed", n(count as f64)),
                    ("status", s(crate::failpoint::status_line())),
                ]),
            ),
            Err(e) => Reply::error(req_id, ErrorKind::BadField, format!("fail spec: {e}")),
        },
        "disarm" => {
            // Capture the tally before disarming wipes the registry.
            let injected = crate::failpoint::injected_total();
            crate::failpoint::disarm_all();
            Reply::ok(
                req_id,
                obj(vec![("armed", n(0.0)), ("injected", n(injected as f64))]),
            )
        }
        // Decode validated the verb, so this is `status`.
        _ => Reply::ok(
            req_id,
            obj(vec![
                ("injected", n(crate::failpoint::injected_total() as f64)),
                ("status", s(crate::failpoint::status_line())),
            ]),
        ),
    };
    proto::encode_reply(&reply)
}

/// Sum per-shard snapshots into the daemon-wide `status` payload. Field
/// order matches the pre-sharding daemon byte for byte, with one new
/// trailing `shards` field.
fn aggregate_status(parts: &[StatusSnapshot], apps: Vec<String>) -> Value {
    let apps = Value::Arr(apps.into_iter().map(s).collect());
    let scheduler = parts.first().map(|p| p.scheduler).unwrap_or("");
    obj(vec![
        ("apps", apps),
        ("scheduler", s(scheduler)),
        (
            "queued",
            n(parts.iter().map(|p| p.queued).sum::<usize>() as f64),
        ),
        (
            "delayed",
            n(parts.iter().map(|p| p.delayed).sum::<usize>() as f64),
        ),
        (
            "running",
            n(parts.iter().map(|p| p.running).sum::<usize>() as f64),
        ),
        (
            "completed",
            n(parts.iter().map(|p| p.completed).sum::<u64>() as f64),
        ),
        (
            "dead_lettered",
            n(parts.iter().map(|p| p.dead_lettered).sum::<u64>() as f64),
        ),
        (
            "admitted",
            n(parts.iter().map(|p| p.admitted).sum::<u64>() as f64),
        ),
        (
            "rejected",
            n(parts.iter().map(|p| p.rejected).sum::<u64>() as f64),
        ),
        (
            "rebuilds",
            n(parts.iter().map(|p| p.rebuilds).sum::<usize>() as f64),
        ),
        (
            "predictor_swaps",
            n(parts.iter().map(|p| p.swaps).sum::<usize>() as f64),
        ),
        ("draining", Value::Bool(parts.iter().any(|p| p.draining))),
        (
            "machines",
            n(parts.iter().map(|p| p.machines).sum::<usize>() as f64),
        ),
        (
            "free_slots",
            n(parts.iter().map(|p| p.free_slots).sum::<usize>() as f64),
        ),
        ("shards", n(parts.len() as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(queued: usize, admitted: u64, completed: u64) -> StatusSnapshot {
        StatusSnapshot {
            queued,
            delayed: 0,
            running: 0,
            completed,
            dead_lettered: 0,
            admitted,
            rejected: 0,
            rebuilds: 0,
            swaps: 0,
            draining: false,
            machines: 2,
            free_slots: 4,
            scheduler: "mios",
        }
    }

    #[test]
    fn aggregate_status_sums_counters_and_keeps_field_order() {
        let parts = [snap(1, 5, 2), snap(3, 7, 4)];
        let value = aggregate_status(&parts, vec!["grep".into()]);
        let text = value.to_string();
        assert_eq!(value.get("queued").and_then(Value::as_u64), Some(4));
        assert_eq!(value.get("admitted").and_then(Value::as_u64), Some(12));
        assert_eq!(value.get("completed").and_then(Value::as_u64), Some(6));
        assert_eq!(value.get("machines").and_then(Value::as_u64), Some(4));
        assert_eq!(value.get("shards").and_then(Value::as_u64), Some(2));
        let apps_pos = text.find("\"apps\"").unwrap();
        let sched_pos = text.find("\"scheduler\"").unwrap();
        let queued_pos = text.find("\"queued\"").unwrap();
        assert!(apps_pos < sched_pos && sched_pos < queued_pos);
    }

    #[test]
    fn poll_wrapper_reports_a_readable_pipe() {
        use std::os::unix::net::UnixStream;
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(&[9]).unwrap();
        let mut fds = [sys::PollFd {
            fd: a.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        }];
        let ready = sys::poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].revents & sys::POLLIN != 0);
    }
}
