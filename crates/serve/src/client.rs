//! A small blocking client for the tracond protocol, shared by
//! `tracon submit`, the load generator, and the loopback tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{self, Envelope, Reply, Request};

/// One protocol connection with sequential request ids.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
    prefix: String,
}

impl Client {
    /// Connect with a default 5 s reply timeout.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connect with an explicit reply timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            next_id: 1,
            prefix: format!("c{}", std::process::id()),
        })
    }

    /// Send one request and block for its reply.
    pub fn request(&mut self, request: Request) -> std::io::Result<Reply> {
        let id = format!("{}-{}", self.prefix, self.next_id);
        self.next_id += 1;
        let envelope = Envelope {
            id: Some(id),
            request,
        };
        let mut line = proto::encode_request(&envelope);
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        let reply_line = self.read_line()?;
        proto::decode_reply(&reply_line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pipeline a batch: write every request before reading any reply,
    /// then collect the replies in order. The daemon guarantees
    /// per-connection reply ordering, so reply `i` answers request `i`.
    /// Saturates the daemon far better than lock-step round trips — the
    /// throughput benches lean on this.
    pub fn pipeline(&mut self, requests: &[Request]) -> std::io::Result<Vec<Reply>> {
        let mut batch = String::new();
        for request in requests {
            let id = format!("{}-{}", self.prefix, self.next_id);
            self.next_id += 1;
            let envelope = Envelope {
                id: Some(id),
                request: request.clone(),
            };
            batch.push_str(&proto::encode_request(&envelope));
            batch.push('\n');
        }
        self.stream.write_all(batch.as_bytes())?;
        let mut replies = Vec::with_capacity(requests.len());
        for _ in requests {
            let line = self.read_line()?;
            let reply = proto::decode_reply(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            replies.push(reply);
        }
        Ok(replies)
    }

    /// Send a raw line (not necessarily valid protocol) and read one reply
    /// line back; used by tests probing the daemon's malformed-input path.
    pub fn raw_roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.read_line()
    }

    /// Write raw bytes without a newline or reply read — the chaos
    /// harness uses this to abandon a partial frame before killing the
    /// connection.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(newline) = self.buf.iter().position(|b| *b == b'\n') {
                let line_bytes: Vec<u8> = self.buf.drain(..=newline).collect();
                let text = String::from_utf8_lossy(&line_bytes)
                    .trim_end_matches(['\n', '\r'])
                    .to_string();
                return Ok(text);
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before reply",
                    ))
                }
                count => self.buf.extend_from_slice(&chunk[..count]),
            }
        }
    }
}
