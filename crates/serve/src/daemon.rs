//! The tracond network front end: the poll-based connection reactor for
//! the newline-delimited JSON protocol, `N` scheduler-shard worker
//! threads, and a minimal HTTP listener for `/healthz` and `/metrics`.
//!
//! Everything is hand-rolled on `std::net` and `std::sync::mpsc`. The
//! [`crate::reactor`] thread owns every protocol socket and decodes and
//! routes requests; each worker thread exclusively owns one
//! [`Service`] shard — no mutex anywhere on the request path. Workers
//! self-tick on their channel's receive timeout, so batch-deadline
//! dispatch and lease expiry keep running under load or silence alike.
//! The HTTP listener stays thread-per-connection (two tiny GET
//! endpoints), reaping finished handles on every accept pass so a
//! long-lived daemon cannot accumulate dead threads.

use std::collections::HashMap;
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tracon_core::AppId;
use tracon_dcsim::Testbed;

use crate::client::Client;
use crate::json::{n, obj, s, Value};
use crate::metrics::Metrics;
use crate::proto::{ErrorKind, Reply, Request};
use crate::reactor::{self, OutMsg, OutSender, ReactorConfig, ShardMsg};
use crate::repl::{
    follower::{run_follower, FollowerConfig, FollowerRuntime},
    read_epoch, read_sidecar, write_sidecar, EpochSidecar, ReplState, Role, ShipLog,
};
use crate::shard::{recover_dir, route_app, shard_machines};
use crate::state::{Refusal, ServeConfig, Service, TaskPhase};
use crate::wal::{remove_shard_files, RecoveredTask, Wal};

/// Network-layer knobs, separate from the scheduling policy in
/// [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Submission listener address; port 0 binds an ephemeral port.
    pub addr: String,
    /// HTTP (healthz/metrics) listener address; port 0 works here too.
    pub http_addr: String,
    /// A connection with no complete line for this long is closed.
    pub idle_timeout_ms: u64,
    /// Per-write timeout before a stalled client is disconnected.
    pub write_timeout_ms: u64,
    /// Longest accepted request line; longer lines are rejected.
    pub max_line_bytes: usize,
    /// Poll interval for the reactor, worker self-ticks, and the HTTP
    /// accept loop.
    pub tick_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            http_addr: "127.0.0.1:0".to_string(),
            idle_timeout_ms: 30_000,
            write_timeout_ms: 2_000,
            max_line_bytes: 64 * 1024,
            tick_ms: 25,
        }
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`DaemonHandle::stop`] or let a drain/shutdown request end it, then
/// [`DaemonHandle::join`].
pub struct DaemonHandle {
    /// Actual submission listener address (resolved ephemeral port).
    pub addr: SocketAddr,
    /// Actual HTTP listener address.
    pub http_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    core_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl DaemonHandle {
    /// The shared metrics registry (for in-process inspection).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// True once the daemon has been asked to stop.
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request an immediate stop (equivalent to a `shutdown` op).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the daemon to stop and every spawned thread to exit.
    /// Panics if any thread panicked, which would mean a protocol line
    /// escaped the decode layer's totality guarantee.
    pub fn join(mut self) {
        let mut panicked = 0usize;
        for handle in self.core_threads.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        let mut conns = match self.conn_threads.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        for handle in conns.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        assert!(panicked == 0, "{panicked} daemon thread(s) panicked");
    }
}

/// Boot a daemon: build the shard services (recovering from every WAL in
/// `cfg.wal_dir` when set), bind both listeners, spawn the reactor, the
/// workers, and the HTTP accept loop, and return once the ports are live.
pub fn start(testbed: &Testbed, cfg: ServeConfig, net: NetConfig) -> std::io::Result<DaemonHandle> {
    let shards = cfg.shards.max(1);
    if shards > cfg.machines {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "{} shards over {} machines: every shard needs at least one machine",
                shards, cfg.machines
            ),
        ));
    }
    // Boot-time fault arming for torture harnesses: a daemon started
    // with TRACON_FAILPOINTS=<spec> comes up with the registry armed, so
    // CI can inject faults into a node it can only reach after boot.
    if let Ok(spec) = std::env::var("TRACON_FAILPOINTS") {
        if !spec.trim().is_empty() {
            crate::failpoint::arm(&spec).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("TRACON_FAILPOINTS: {e}"),
                )
            })?;
        }
    }
    let metrics = Arc::new(Metrics::with_shards(shards));
    let slices = shard_machines(cfg.machines, shards);
    let mut services: Vec<Service> = slices
        .iter()
        .enumerate()
        .map(|(shard, &(base, count))| {
            let mut shard_cfg = cfg.clone();
            shard_cfg.machines = count;
            Service::new_shard(
                testbed,
                shard_cfg,
                Arc::clone(&metrics),
                shard,
                shards,
                base,
            )
        })
        .collect();

    // Decode-time routing table: profiled name -> interned id. Every
    // shard builds the identical registry, so shard 0's will do.
    let app_ids: HashMap<String, AppId> = services[0]
        .app_list()
        .to_vec()
        .into_iter()
        .filter_map(|name| services[0].app_id(&name).map(|id| (name, id)))
        .collect();

    if cfg.replica_of.is_some() && cfg.wal_dir.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "replica mode (--replica-of) requires a WAL directory",
        ));
    }

    // Bind the listeners before replication boot: the WAL-backed leader
    // path probes its recorded peer and needs this node's own address
    // for the probe's leader hint.
    let listener = TcpListener::bind(&net.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let http_listener = TcpListener::bind(&net.http_addr)?;
    http_listener.set_nonblocking(true)?;
    let http_addr = http_listener.local_addr()?;

    let mut repl_state: Option<Arc<ReplState>> = None;
    let mut follower_wals: Option<Vec<Wal>> = None;

    if let Some(dir) = cfg.wal_dir.clone() {
        let route = |name: &str| app_ids.get(name).map(|&id| route_app(id, shards));
        let ship = Arc::new(ShipLog::new(shards));
        for svc in &mut services {
            svc.attach_shipper(Arc::clone(&ship));
        }
        if let Some(leader_addr) = cfg.replica_of.clone() {
            // Follower: local shard state is a cache of the leader's
            // stream. Wipe it (a rejoining stale leader must not
            // resurrect a divergent tail) and resync from cursor zero —
            // the snapshot-install path covers any gap. The epoch
            // sidecar survives the wipe on purpose.
            let (stale_wals, stale) = recover_dir(&dir, shards, cfg.wal_snapshot_every, &route)?;
            drop(stale_wals);
            for shard in 0..stale.old_shards.max(shards) {
                remove_shard_files(&dir, shard)?;
            }
            let (wals, _) = recover_dir(&dir, shards, cfg.wal_snapshot_every, &route)?;
            repl_state = Some(Arc::new(ReplState::new(
                Role::Follower,
                read_epoch(&dir),
                Some(leader_addr),
                ship,
                Arc::clone(&metrics),
                Some(dir),
                boot_nonce(),
            )));
            follower_wals = Some(wals);
        } else {
            let (wals, recovery) = recover_dir(&dir, shards, cfg.wal_snapshot_every, &route)?;
            metrics
                .wal_replayed_records
                .store(recovery.replayed_records, Ordering::Relaxed);
            let now = Instant::now();
            for (shard, wal) in wals.into_iter().enumerate() {
                let homed: Vec<_> = recovery
                    .tasks
                    .iter()
                    .filter(|t| t.home == shard)
                    .map(|t| t.rec.clone())
                    .collect();
                services[shard].attach_wal(wal);
                services[shard].adopt_recovered(&homed, now);
                services[shard].align_next_task_id(recovery.next_task_id);
                // Also seeds the ship log: the boot snapshot becomes
                // what a fresh follower at cursor zero installs.
                services[shard].write_snapshot();
            }
            // Only now that every survivor is snapshotted under the new
            // layout can files from a larger previous shard count go.
            for stale in shards..recovery.old_shards {
                remove_shard_files(&dir, stale)?;
            }
            // Every WAL-backed node is leader-capable, but a node that
            // previously ran inside a replicated pair must not blindly
            // re-claim leadership: its follower may have promoted while
            // it was down, and the promoted leader's one-shot fencing
            // lease fired into the void. Consult the durable sidecar and
            // probe the recorded peer before serving a single mutation.
            let sidecar = read_sidecar(&dir);
            let self_addr = addr.to_string();
            let (role, epoch, leader_hint, peer) =
                decide_leader_boot(&sidecar, |peer, probe_epoch| {
                    probe_peer(peer, probe_epoch, &self_addr)
                });
            write_sidecar(
                &dir,
                &EpochSidecar {
                    epoch,
                    role,
                    leader: leader_hint.clone(),
                    peer: peer.clone(),
                },
            )?;
            let state = Arc::new(ReplState::new(
                role,
                epoch,
                leader_hint,
                ship,
                Arc::clone(&metrics),
                Some(dir),
                boot_nonce(),
            ));
            state.set_peer(peer);
            repl_state = Some(state);
        }
    }

    let shutdown = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let tick = Duration::from_millis(net.tick_ms.max(1));
    let mut core_threads = Vec::new();

    // Worker channels and the shared out channel + wake pipe.
    let (out_tx, out_rx) = mpsc::channel::<OutMsg>();
    let (wake_rx, wake_tx) = std::os::unix::net::UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let out = OutSender::new(out_tx, wake_tx);

    let mut shard_txs = Vec::with_capacity(shards);
    for svc in services {
        let (tx, rx) = mpsc::channel::<ShardMsg>();
        shard_txs.push(tx);
        let out = out.clone();
        let shutdown = Arc::clone(&shutdown);
        core_threads.push(std::thread::spawn(move || {
            shard_worker(svc, rx, out, shutdown, tick);
        }));
    }

    // The follower replication thread: pulls WAL frames from the leader
    // and promotes this node when the leader's lease lapses.
    if let (Some(wals), Some(repl)) = (follower_wals, repl_state.as_ref()) {
        let leader_addr = cfg.replica_of.clone().unwrap_or_default();
        let dir = cfg.wal_dir.clone().unwrap_or_default();
        let follower_cfg = FollowerConfig {
            leader_addr,
            self_addr: addr.to_string(),
            dir,
            shards,
            snapshot_every: cfg.wal_snapshot_every,
            ttl_ms: cfg.repl_ttl_ms,
            poll_ms: cfg.repl_poll_ms,
        };
        let rt = FollowerRuntime {
            wals,
            repl: Arc::clone(repl),
            shard_txs: shard_txs.clone(),
            app_ids: app_ids.clone(),
            shutdown: Arc::clone(&shutdown),
        };
        core_threads.push(std::thread::spawn(move || run_follower(follower_cfg, rt)));
    }

    // Background WAL scrubber for leader/standalone nodes (a follower
    // scrubs inline in its pull loop, where it can also repair), plus
    // the self-healing rejoin supervisor for replicated nodes.
    if let Some(dir) = cfg.wal_dir.clone() {
        {
            let metrics = Arc::clone(&metrics);
            let repl = repl_state.clone();
            let shutdown = Arc::clone(&shutdown);
            let dir = dir.clone();
            core_threads.push(std::thread::spawn(move || {
                scrub_loop(&dir, shards, &metrics, repl.as_ref(), &shutdown);
            }));
        }
        if let Some(repl) = repl_state.clone() {
            let base = FollowerConfig {
                leader_addr: String::new(), // filled in per rejoin
                self_addr: addr.to_string(),
                dir,
                shards,
                snapshot_every: cfg.wal_snapshot_every,
                ttl_ms: cfg.repl_ttl_ms,
                poll_ms: cfg.repl_poll_ms,
            };
            let shard_txs = shard_txs.clone();
            let app_ids = app_ids.clone();
            let shutdown = Arc::clone(&shutdown);
            core_threads.push(std::thread::spawn(move || {
                rejoin_supervisor(base, repl, shard_txs, app_ids, shutdown);
            }));
        }
    }

    // The reactor thread: owns the protocol listener and every client.
    {
        let reactor_cfg = ReactorConfig {
            listener,
            net: net.clone(),
            shard_txs,
            out_rx,
            wake_rx,
            shutdown: Arc::clone(&shutdown),
            draining: Arc::clone(&draining),
            metrics: Arc::clone(&metrics),
            app_ids,
            repl: repl_state,
            repl_ttl_ms: cfg.repl_ttl_ms,
        };
        core_threads.push(std::thread::spawn(move || reactor::run(reactor_cfg)));
    }

    // HTTP accept loop: one short-lived thread per connection, finished
    // handles reaped every pass so the Vec stays bounded by concurrency,
    // not by daemon lifetime.
    {
        let shutdown = Arc::clone(&shutdown);
        let draining = Arc::clone(&draining);
        let metrics = Arc::clone(&metrics);
        let conn_threads = Arc::clone(&conn_threads);
        core_threads.push(std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match http_listener.accept() {
                    Ok((stream, _)) => {
                        let draining = Arc::clone(&draining);
                        let metrics = Arc::clone(&metrics);
                        let handle = std::thread::spawn(move || {
                            serve_http(stream, &draining, &metrics);
                        });
                        let mut guard = match conn_threads.lock() {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.push(handle);
                        reap_finished(&mut guard);
                    }
                    Err(e) if e.kind() == IoErrorKind::WouldBlock => std::thread::sleep(tick),
                    Err(_) => std::thread::sleep(tick),
                }
            }
        }));
    }

    Ok(DaemonHandle {
        addr,
        http_addr,
        shutdown,
        metrics,
        core_threads,
        conn_threads,
    })
}

/// Decide the boot role of a WAL-backed node that was *not* started with
/// `--replica-of`, from its durable sidecar plus one best-effort probe of
/// the recorded peer. Returns `(role, epoch, leader_hint, peer)`.
///
/// - A node fenced before its last shutdown stays fenced: the operator
///   rejoins it with `--replica-of` (or wipes `repl.epoch`) explicitly.
/// - A former leader probes its registered follower; a former follower
///   restarted standalone probes its old leader. If the peer reports a
///   higher epoch — or the same epoch while still leading — this node
///   boots [`Role::Fenced`] with redirects pointing at the peer, closing
///   the "crashed leader reboots into a second leadership" hole: the
///   promoted peer's bounded lease retries may all have fired while this
///   node was down.
/// - Otherwise it claims leadership. A former follower claims
///   `epoch + 1` (exactly like a live promotion, so the dead leader is
///   outranked if it ever returns) and records that leader as its peer;
///   a former leader re-claims its own epoch and keeps its peer.
fn decide_leader_boot(
    sidecar: &EpochSidecar,
    probe: impl Fn(&str, u64) -> Option<(u64, Role)>,
) -> (Role, u64, Option<String>, Option<String>) {
    if sidecar.role == Role::Fenced {
        return (
            Role::Fenced,
            sidecar.epoch,
            sidecar.leader.clone(),
            sidecar.peer.clone(),
        );
    }
    let probe_target = match sidecar.role {
        Role::Leader => sidecar.peer.clone(),
        _ => sidecar.leader.clone(),
    };
    if let Some(peer) = probe_target.as_deref() {
        // Probe one epoch *below* our own so the lease can never fence a
        // healthy peer (fencing requires `lease epoch >= peer epoch`); it
        // only reads back the peer's epoch and role.
        if let Some((peer_epoch, peer_role)) = probe(peer, sidecar.epoch.saturating_sub(1)) {
            let outranked = peer_epoch > sidecar.epoch
                || (peer_epoch == sidecar.epoch && peer_role == Role::Leader);
            if outranked {
                return (
                    Role::Fenced,
                    peer_epoch,
                    probe_target.clone(),
                    sidecar.peer.clone(),
                );
            }
        }
    }
    match sidecar.role {
        Role::Leader => (
            Role::Leader,
            // Epoch 0 is reserved for "never led": a fresh leader starts
            // at 1.
            sidecar.epoch.max(1),
            None,
            sidecar.peer.clone(),
        ),
        _ => (
            Role::Leader,
            sidecar.epoch + 1,
            None,
            sidecar.leader.clone(),
        ),
    }
}

/// One best-effort `repl_lease` round trip to `peer`, returning its
/// `(epoch, role)` when it is reachable and replies well-formed.
fn probe_peer(peer: &str, probe_epoch: u64, self_addr: &str) -> Option<(u64, Role)> {
    let mut conn = Client::connect_with_timeout(peer, Duration::from_millis(500)).ok()?;
    let reply = conn
        .request(Request::ReplLease {
            epoch: probe_epoch,
            leader_addr: self_addr.to_string(),
        })
        .ok()?;
    let Reply::Ok { result, .. } = reply else {
        return None;
    };
    let epoch = result.get("epoch").and_then(Value::as_u64)?;
    let role = result
        .get("role")
        .and_then(Value::as_str)
        .and_then(Role::parse)?;
    Some((epoch, role))
}

/// A per-process boot nonce for the replication protocol: pull replies
/// carry it so followers detect a leader restart (whose ship sequence
/// numbering restarted with it) and reset their cursors instead of
/// silently skipping frames.
fn boot_nonce() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    // Never zero, and distinct across same-nanosecond restarts in tests.
    (nanos ^ (u64::from(std::process::id()) << 32)) | 1
}

/// Cadence of the leader/standalone background WAL scrubber.
const SCRUB_LOOP_MS: u64 = 2_000;

/// Background scrub for nodes whose WAL is authoritative (standalone, or
/// the current leader of a pair — a follower scrubs inline in its pull
/// loop, where it can also repair from the leader). Rot is quarantined
/// by truncation: replay cannot see past a mid-file corruption anyway,
/// so truncating loses nothing recovery could have used, and the next
/// append lands on a clean frame boundary.
fn scrub_loop(
    dir: &std::path::Path,
    shards: usize,
    metrics: &Arc<Metrics>,
    repl: Option<&Arc<ReplState>>,
    shutdown: &Arc<AtomicBool>,
) {
    // Per-shard "already reported" latch so an unrepairable corrupt
    // snapshot is counted once, not once per pass.
    let mut reported = vec![false; shards];
    loop {
        let mut slept = 0u64;
        while slept < SCRUB_LOOP_MS {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
            slept += 25;
        }
        if repl.is_some_and(|r| r.role() != Role::Leader) {
            continue;
        }
        metrics.scrub_runs.fetch_add(1, Ordering::Relaxed);
        for (shard, latched) in reported.iter_mut().enumerate() {
            let Ok(report) = crate::wal::scrub_shard(dir, shard) else {
                continue;
            };
            if report.clean() {
                *latched = false;
                continue;
            }
            if let Some(at) = report.corrupt_at {
                let _ = crate::wal::quarantine_shard(dir, shard, at);
            }
            if !*latched {
                *latched = true;
                metrics
                    .scrub_corrupt_frames
                    .fetch_add(report.corrupt_count(), Ordering::Relaxed);
                metrics.wal_degraded.store(1, Ordering::Relaxed);
                eprintln!(
                    "tracond event=scrub_corrupt shard={shard} frames_ok={} \
                     quarantined_bytes={} snapshot_corrupt={} \
                     action=\"quarantined (no peer to repair from)\"",
                    report.frames_ok, report.quarantined_bytes, report.snapshot_corrupt
                );
            }
        }
    }
}

/// How often a fenced node probes for a live leader to rejoin under.
const REJOIN_PROBE_MS: u64 = 300;

/// The self-healing rejoin supervisor: a node fenced mid-flight (by a
/// promoted peer's lease, a higher-epoch pull, or the boot probe) keeps
/// watching its leader hint and, once a live leader answers there,
/// demotes itself back into the follower loop — every shard worker
/// surrenders its state and WAL handle, the shard files are wiped (the
/// epoch sidecar survives), and the node resyncs from the leader's
/// snapshot. Loops for the life of the daemon so the pair survives any
/// number of role swaps.
fn rejoin_supervisor(
    base: FollowerConfig,
    repl: Arc<ReplState>,
    shard_txs: Vec<mpsc::Sender<ShardMsg>>,
    app_ids: HashMap<String, AppId>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        let mut slept = 0u64;
        while slept < REJOIN_PROBE_MS {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
            slept += 25;
        }
        if repl.role() != Role::Fenced {
            continue;
        }
        let Some(leader) = repl.leader_addr() else {
            continue;
        };
        if leader == base.self_addr {
            continue;
        }
        // Confirm the hint actually leads before wiping anything. The
        // probe runs one epoch below ours so it can never fence a peer.
        let probed = probe_peer(&leader, repl.epoch().saturating_sub(1), &base.self_addr);
        let Some((peer_epoch, Role::Leader)) = probed else {
            continue;
        };
        if peer_epoch < repl.epoch() {
            continue;
        }
        // Every shard worker must let go of its WAL handle before the
        // shard files are deleted underneath it.
        let (done_tx, done_rx) = mpsc::channel::<()>();
        for tx in &shard_txs {
            let _ = tx.send(ShardMsg::Demote {
                done: done_tx.clone(),
            });
        }
        drop(done_tx);
        let mut acked = 0usize;
        while acked < shard_txs.len() {
            match done_rx.recv_timeout(Duration::from_secs(5)) {
                Ok(()) => acked += 1,
                Err(_) => break,
            }
        }
        if acked < shard_txs.len() {
            continue; // Shutdown mid-demote; re-evaluate next round.
        }
        if (0..base.shards).any(|shard| remove_shard_files(&base.dir, shard).is_err()) {
            repl.metrics().wal_errors.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let shards = base.shards;
        let route = |name: &str| app_ids.get(name).map(|&id| route_app(id, shards));
        let Ok((wals, _)) = recover_dir(&base.dir, shards, base.snapshot_every, &route) else {
            repl.metrics().wal_errors.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        repl.demote_to_follower(leader.clone());
        eprintln!(
            "tracond event=rejoin addr={} leader={leader} epoch={}",
            base.self_addr,
            repl.epoch()
        );
        let mut cfg = base.clone();
        cfg.leader_addr = leader;
        let rt = FollowerRuntime {
            wals,
            repl: Arc::clone(&repl),
            shard_txs: shard_txs.clone(),
            app_ids: app_ids.clone(),
            shutdown: Arc::clone(&shutdown),
        };
        // Blocks until shutdown or this node promotes again; either way
        // the watch resumes.
        run_follower(cfg, rt);
    }
}

/// Join every connection thread that has already returned, keeping the
/// Vec's length proportional to live connections.
fn reap_finished(handles: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// One shard's worker loop: exclusively owns its [`Service`], answers
/// requests routed to it, contributes fan-out parts, and executes both
/// sides of work-steal handoffs. Self-ticks at the net tick interval so
/// time-driven work (batch deadlines, lease expiry, backoff promotion)
/// never waits on traffic.
fn shard_worker(
    mut svc: Service,
    rx: Receiver<ShardMsg>,
    out: OutSender,
    shutdown: Arc<AtomicBool>,
    tick: Duration,
) {
    /// Upper bound on messages handled per wake, so a deep request
    /// backlog cannot starve the lease/backoff tick indefinitely.
    const WORKER_BATCH: usize = 256;

    let shard = svc.shard();
    let mut drained_sent = false;
    let mut last_tick = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let first = match rx.recv_timeout(tick) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let now = Instant::now();
        // Drain greedily: answer everything already queued under one
        // timestamp and send the reactor one wake for the whole batch,
        // not one pipe write per reply.
        let mut sent = false;
        let mut next = first;
        let mut handled = 0usize;
        while let Some(msg) = next {
            match msg {
                ShardMsg::Request {
                    conn,
                    seq,
                    id,
                    request,
                    hops,
                } => match answer(&mut svc, id, request, now) {
                    Answer::Reply(reply) => out.send_quiet(OutMsg::Reply {
                        conn,
                        seq,
                        line: crate::proto::encode_reply(&reply),
                    }),
                    Answer::Redirect { id, request, to } => out.send_quiet(OutMsg::Redirect {
                        conn,
                        seq,
                        id,
                        request,
                        to,
                        hops,
                    }),
                },
                ShardMsg::Status { agg } => out.send_quiet(OutMsg::StatusPart {
                    agg,
                    shard,
                    snap: svc.status(),
                    apps: svc.app_list().to_vec(),
                }),
                ShardMsg::Drain { agg } => {
                    let snap = svc.drain(now);
                    out.send_quiet(OutMsg::DrainPart { agg, shard, snap });
                }
                ShardMsg::Steal { to, max } => {
                    let tasks = svc.steal_queued(max, to);
                    out.send_quiet(OutMsg::Stolen {
                        from: shard,
                        to,
                        tasks,
                    });
                }
                ShardMsg::Inject { from, tasks } => {
                    svc.inject_stolen(&tasks, from, now);
                }
                ShardMsg::Promote {
                    wal,
                    tasks,
                    next_task_id,
                } => {
                    // This shard's half of a follower promotion: adopt
                    // the replayed state and the now-writable WAL. FIFO
                    // order guarantees this lands before any client
                    // request the reactor routed after the role flip.
                    svc.attach_wal(wal);
                    let recs: Vec<RecoveredTask> = tasks.into_iter().map(|t| t.rec).collect();
                    svc.adopt_recovered(&recs, now);
                    svc.align_next_task_id(next_task_id);
                    svc.write_snapshot();
                }
                ShardMsg::Demote { done } => {
                    // The rejoin supervisor is folding this fenced node
                    // back into a follower: drop every task and the WAL
                    // handle so the shard files can be wiped and resynced
                    // from the new leader's snapshot.
                    svc.demote();
                    let _ = done.send(());
                }
            }
            sent = true;
            handled += 1;
            next = if handled < WORKER_BATCH {
                rx.try_recv().ok()
            } else {
                None
            };
        }
        if now.duration_since(last_tick) >= tick {
            svc.tick(now);
            last_tick = now;
        }
        if !drained_sent && svc.draining() && svc.drained() {
            drained_sent = true;
            out.send(OutMsg::Drained { shard });
            continue;
        }
        if sent {
            out.wake();
        }
    }
}

/// A worker's verdict on one request: a rendered reply, or a redirect
/// because the task was stolen away.
enum Answer {
    Reply(Reply),
    Redirect {
        id: Option<String>,
        request: Request,
        to: usize,
    },
}

/// Execute one routed request against this shard's service. Machine
/// indices in replies are translated from shard-local to global through
/// the shard's machine base, so clients see one coherent cluster.
fn answer(svc: &mut Service, id: Option<String>, request: Request, now: Instant) -> Answer {
    let base = svc.machine_base();
    let reply = match request {
        Request::Submit { app, demand } => {
            match svc.submit_with_demand(&app, demand.unwrap_or_default(), now) {
                Ok(admitted) => {
                    let result = match admitted.placement {
                        Some((vm, score, runtime)) => obj(vec![
                            ("task", n(admitted.task as f64)),
                            ("state", s("placed")),
                            ("machine", n((vm.machine + base) as f64)),
                            ("slot", n(vm.slot as f64)),
                            ("predicted_score", n(score)),
                            ("predicted_runtime", n(runtime)),
                        ]),
                        None => obj(vec![
                            ("task", n(admitted.task as f64)),
                            ("state", s("queued")),
                            ("depth", n(admitted.depth as f64)),
                        ]),
                    };
                    Reply::ok(id, result)
                }
                Err(refusal) => refusal_reply(id, refusal, svc),
            }
        }
        Request::Complete {
            task,
            runtime,
            iops,
        } => match svc.complete(task, runtime, iops, now) {
            Ok(done) => Reply::ok(
                id,
                obj(vec![
                    ("task", n(task as f64)),
                    ("recorded", Value::Bool(true)),
                    ("rebuilt", Value::Bool(done.rebuilt)),
                    ("predictor_swapped", Value::Bool(done.swapped)),
                    ("dispatched", n(done.dispatched as f64)),
                ]),
            ),
            Err(Refusal::UnknownTask { task }) => match svc.migrated_to(task) {
                Some(to) => {
                    return Answer::Redirect {
                        id,
                        request: Request::Complete {
                            task,
                            runtime,
                            iops,
                        },
                        to,
                    }
                }
                None => refusal_reply(id, Refusal::UnknownTask { task }, svc),
            },
            Err(refusal) => refusal_reply(id, refusal, svc),
        },
        Request::TaskInfo { task } => match svc.task_info(task) {
            Some(record) => {
                let mut pairs = vec![
                    ("task", n(task as f64)),
                    ("app", s(svc.app_name(record.app_idx))),
                ];
                if !record.demand.is_empty() {
                    pairs.push(("demand", crate::proto::demand_value(&record.demand)));
                }
                match &record.phase {
                    TaskPhase::Queued => pairs.push(("state", s("queued"))),
                    TaskPhase::Running {
                        vm,
                        neighbor,
                        predicted_score,
                        predicted_runtime,
                        ..
                    } => {
                        pairs.push(("state", s("running")));
                        pairs.push(("machine", n((vm.machine + base) as f64)));
                        pairs.push(("slot", n(vm.slot as f64)));
                        pairs.push((
                            "neighbor",
                            match neighbor {
                                Some(idx) => s(svc.app_name(*idx)),
                                None => Value::Null,
                            },
                        ));
                        pairs.push(("predicted_score", n(*predicted_score)));
                        pairs.push(("predicted_runtime", n(*predicted_runtime)));
                        pairs.push(("attempt", n(f64::from(record.attempts))));
                    }
                    TaskPhase::Completed { runtime } => {
                        pairs.push(("state", s("completed")));
                        pairs.push(("runtime", n(*runtime)));
                    }
                    TaskPhase::DeadLettered { attempts } => {
                        pairs.push(("state", s("dead_lettered")));
                        pairs.push(("attempts", n(f64::from(*attempts))));
                    }
                }
                Reply::ok(id, obj(pairs))
            }
            None => match svc.migrated_to(task) {
                Some(to) => {
                    return Answer::Redirect {
                        id,
                        request: Request::TaskInfo { task },
                        to,
                    }
                }
                None => Reply::error(id, ErrorKind::UnknownTask, format!("no task {task}")),
            },
        },
        // Status/Drain/Shutdown never reach a worker (fan-out and the
        // stop sequence are the reactor's); decode totality means any
        // hole here still answers.
        other => Reply::error(
            id,
            ErrorKind::Malformed,
            format!("request {other:?} is not shard-routable"),
        ),
    };
    Answer::Reply(reply)
}

fn refusal_reply(id: Option<String>, refusal: Refusal, svc: &Service) -> Reply {
    match refusal {
        Refusal::QueueFull { depth } => Reply::backpressure(
            id,
            format!("admission queue full (depth {depth})"),
            svc.retry_after_ms(),
        ),
        Refusal::Draining => Reply::error(id, ErrorKind::Draining, "daemon is draining"),
        Refusal::UnknownApp { name } => Reply::error(
            id,
            ErrorKind::UnknownApp,
            format!("application '{name}' was never profiled"),
        ),
        Refusal::UnknownTask { task } => {
            Reply::error(id, ErrorKind::UnknownTask, format!("no task {task}"))
        }
        Refusal::NotRunning { task } => Reply::error(
            id,
            ErrorKind::UnknownTask,
            format!("task {task} is not running"),
        ),
    }
}

/// Answer one HTTP connection: `GET /healthz` or `GET /metrics`.
fn serve_http(mut stream: TcpStream, draining: &AtomicBool, metrics: &Arc<Metrics>) {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(1_000)))
        .ok();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the header terminator; these are tiny GET requests. The
    // hard deadline reaps clients that trickle bytes to dodge the read
    // timeout, so one slow connection cannot pin its thread forever.
    let deadline = Instant::now() + Duration::from_millis(2_000);
    loop {
        if Instant::now() > deadline {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(count) => {
                buf.extend_from_slice(&chunk[..count]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let target = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let (status, content_type, body) = match path {
        "/healthz" => {
            // `?strict=1` turns silent storage degradation into a
            // non-200 so orchestrators can page on it: a daemon whose
            // WAL went memory-only or whose scrub found unrepaired rot
            // is up, but not durable.
            let strict = query.split('&').any(|kv| kv == "strict=1");
            let degraded = metrics.wal_degraded.load(Ordering::Relaxed) != 0;
            let failing = strict && degraded;
            (
                if failing {
                    "503 Service Unavailable"
                } else {
                    "200 OK"
                },
                "application/json",
                obj(vec![
                    ("ok", Value::Bool(!failing)),
                    ("draining", Value::Bool(draining.load(Ordering::SeqCst))),
                    ("wal_degraded", Value::Bool(degraded)),
                ])
                .to_string(),
            )
        }
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            metrics.render_prometheus(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sidecar(role: Role, epoch: u64, leader: Option<&str>, peer: Option<&str>) -> EpochSidecar {
        EpochSidecar {
            epoch,
            role,
            leader: leader.map(str::to_string),
            peer: peer.map(str::to_string),
        }
    }

    #[test]
    fn a_fresh_or_standalone_leader_claims_epoch_one() {
        let side = sidecar(Role::Leader, 0, None, None);
        let (role, epoch, leader, peer) =
            decide_leader_boot(&side, |_, _| panic!("no peer to probe"));
        assert_eq!((role, epoch, leader, peer), (Role::Leader, 1, None, None));
    }

    #[test]
    fn a_leader_with_an_unreachable_peer_reclaims_its_own_epoch() {
        let side = sidecar(Role::Leader, 4, None, Some("f:1"));
        let (role, epoch, _, peer) = decide_leader_boot(&side, |peer, probe_epoch| {
            assert_eq!((peer, probe_epoch), ("f:1", 3));
            None
        });
        assert_eq!((role, epoch, peer), (Role::Leader, 4, Some("f:1".into())));
    }

    #[test]
    fn a_rebooted_leader_is_fenced_by_its_promoted_follower() {
        // The crashed-leader-reboots hole: the follower promoted to
        // epoch 5 while this node (epoch 4) was down, and its bounded
        // lease retries all fired into the void. The boot probe is what
        // keeps this node from serving as a second leader.
        let side = sidecar(Role::Leader, 4, None, Some("f:1"));
        let (role, epoch, leader, _) = decide_leader_boot(&side, |_, _| Some((5, Role::Leader)));
        assert_eq!((role, epoch, leader), (Role::Fenced, 5, Some("f:1".into())));
    }

    #[test]
    fn a_leader_whose_follower_is_still_following_leads_again() {
        let side = sidecar(Role::Leader, 4, None, Some("f:1"));
        let (role, epoch, _, _) = decide_leader_boot(&side, |_, _| Some((4, Role::Follower)));
        assert_eq!((role, epoch), (Role::Leader, 4));
    }

    #[test]
    fn a_follower_restarted_standalone_defers_to_its_live_leader() {
        // Restarting a follower without --replica-of must not mint a
        // second leader while the real one is alive at the same epoch.
        let side = sidecar(Role::Follower, 4, Some("l:1"), None);
        let (role, epoch, leader, _) = decide_leader_boot(&side, |peer, _| {
            assert_eq!(peer, "l:1");
            Some((4, Role::Leader))
        });
        assert_eq!((role, epoch, leader), (Role::Fenced, 4, Some("l:1".into())));
    }

    #[test]
    fn a_follower_restarted_standalone_outranks_its_dead_leader() {
        // Operator-driven failover: the old leader is gone, so convert
        // to leadership exactly like a live promotion — epoch + 1, with
        // the old leader recorded as the peer to keep fencing it.
        let side = sidecar(Role::Follower, 4, Some("l:1"), None);
        let (role, epoch, _, peer) = decide_leader_boot(&side, |_, _| None);
        assert_eq!((role, epoch, peer), (Role::Leader, 5, Some("l:1".into())));
    }

    #[test]
    fn a_fenced_node_stays_fenced_without_probing() {
        let side = sidecar(Role::Fenced, 6, Some("l:2"), Some("l:1"));
        let (role, epoch, leader, peer) =
            decide_leader_boot(&side, |_, _| panic!("a fenced boot must not probe"));
        assert_eq!(
            (role, epoch, leader, peer),
            (Role::Fenced, 6, Some("l:2".into()), Some("l:1".into()))
        );
    }
}
