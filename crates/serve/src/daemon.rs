//! The tracond network front end: a submission listener speaking the
//! newline-delimited JSON protocol and a minimal HTTP listener for
//! `/healthz` and `/metrics`.
//!
//! Everything is hand-rolled on `std::net`: both listeners run
//! non-blocking accept loops polled against a shared shutdown flag, each
//! connection gets its own thread with read/write timeouts and a bounded
//! line buffer, and every spawned thread's `JoinHandle` is kept so
//! [`DaemonHandle::join`] can prove a clean exit — no leaked threads. A
//! ticker thread drives batch-deadline dispatch and notices when a
//! draining daemon has gone idle.

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tracon_dcsim::Testbed;

use crate::json::{n, obj, s, Value};
use crate::metrics::Metrics;
use crate::proto::{self, ErrorKind, Reply, Request};
use crate::state::{Refusal, ServeConfig, Service, TaskPhase};

/// Network-layer knobs, separate from the scheduling policy in
/// [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Submission listener address; port 0 binds an ephemeral port.
    pub addr: String,
    /// HTTP (healthz/metrics) listener address; port 0 works here too.
    pub http_addr: String,
    /// A connection with no complete line for this long is closed.
    pub idle_timeout_ms: u64,
    /// Per-write timeout before a stalled client is disconnected.
    pub write_timeout_ms: u64,
    /// Longest accepted request line; longer lines are rejected.
    pub max_line_bytes: usize,
    /// Poll interval for accept loops, shutdown checks, and the ticker.
    pub tick_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            http_addr: "127.0.0.1:0".to_string(),
            idle_timeout_ms: 30_000,
            write_timeout_ms: 2_000,
            max_line_bytes: 64 * 1024,
            tick_ms: 25,
        }
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`DaemonHandle::stop`] or let a drain/shutdown request end it, then
/// [`DaemonHandle::join`].
pub struct DaemonHandle {
    /// Actual submission listener address (resolved ephemeral port).
    pub addr: SocketAddr,
    /// Actual HTTP listener address.
    pub http_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    service: Arc<Mutex<Service>>,
    metrics: Arc<Metrics>,
    core_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Lock the service even if a connection thread died mid-update: the
/// core's invariants are re-established before every unlock, so a
/// poisoned mutex carries usable state — refusing to serve would turn
/// one dead thread into a dead daemon.
fn lock_service<'a>(service: &'a Arc<Mutex<Service>>) -> MutexGuard<'a, Service> {
    match service.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl DaemonHandle {
    /// The shared metrics registry (for in-process inspection).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Lock the service core (for in-process tests and assertions).
    pub fn service(&self) -> &Arc<Mutex<Service>> {
        &self.service
    }

    /// True once the daemon has been asked to stop.
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request an immediate stop (equivalent to a `shutdown` op).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the daemon to stop and every spawned thread to exit.
    /// Panics if any thread panicked, which would mean a protocol line
    /// escaped the decode layer's totality guarantee.
    pub fn join(mut self) {
        let mut panicked = 0usize;
        for handle in self.core_threads.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        let mut conns = match self.conn_threads.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        for handle in conns.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        assert!(panicked == 0, "{panicked} daemon thread(s) panicked");
    }
}

/// Boot a daemon: bind both listeners, spawn the accept loops and the
/// ticker, and return once the ports are live.
pub fn start(testbed: &Testbed, cfg: ServeConfig, net: NetConfig) -> std::io::Result<DaemonHandle> {
    let metrics = Arc::new(Metrics::new());
    // `open` recovers queue/in-flight state from the WAL when
    // `cfg.wal_dir` is set; without it this is plain in-memory `new`.
    let service = Arc::new(Mutex::new(Service::open(
        testbed,
        cfg,
        Arc::clone(&metrics),
        Instant::now(),
    )?));
    let shutdown = Arc::new(AtomicBool::new(false));
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let listener = TcpListener::bind(&net.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let http_listener = TcpListener::bind(&net.http_addr)?;
    http_listener.set_nonblocking(true)?;
    let http_addr = http_listener.local_addr()?;

    let tick = Duration::from_millis(net.tick_ms.max(1));
    let mut core_threads = Vec::new();

    // Submission accept loop.
    {
        let shutdown = Arc::clone(&shutdown);
        let service = Arc::clone(&service);
        let metrics = Arc::clone(&metrics);
        let conn_threads = Arc::clone(&conn_threads);
        let net = net.clone();
        core_threads.push(std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shutdown = Arc::clone(&shutdown);
                        let service = Arc::clone(&service);
                        let metrics = Arc::clone(&metrics);
                        let net = net.clone();
                        let handle = std::thread::spawn(move || {
                            serve_connection(stream, &service, &metrics, &shutdown, &net);
                        });
                        match conn_threads.lock() {
                            Ok(mut guard) => guard.push(handle),
                            Err(poisoned) => poisoned.into_inner().push(handle),
                        }
                    }
                    Err(e) if e.kind() == IoErrorKind::WouldBlock => std::thread::sleep(tick),
                    Err(_) => std::thread::sleep(tick),
                }
            }
        }));
    }

    // HTTP accept loop: tiny request-per-connection responses, handled
    // inline (no per-connection thread needed for two GET endpoints).
    {
        let shutdown = Arc::clone(&shutdown);
        let service = Arc::clone(&service);
        let metrics = Arc::clone(&metrics);
        core_threads.push(std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match http_listener.accept() {
                    Ok((stream, _)) => serve_http(stream, &service, &metrics),
                    Err(e) if e.kind() == IoErrorKind::WouldBlock => std::thread::sleep(tick),
                    Err(_) => std::thread::sleep(tick),
                }
            }
        }));
    }

    // Ticker: batch-deadline dispatch + drained-daemon detection.
    {
        let shutdown = Arc::clone(&shutdown);
        let service = Arc::clone(&service);
        core_threads.push(std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                {
                    let mut svc = lock_service(&service);
                    svc.tick(Instant::now());
                    if svc.drained() {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(tick);
            }
        }));
    }

    Ok(DaemonHandle {
        addr,
        http_addr,
        shutdown,
        service,
        metrics,
        core_threads,
        conn_threads,
    })
}

/// Per-connection loop: accumulate bytes, peel complete lines, answer
/// each one. The buffer is bounded: a frame longer than
/// `net.max_line_bytes` gets one structured `frame-too-large` error and
/// the rest of that line is discarded without ever being buffered, so a
/// misbehaving client can neither grow daemon memory nor kill its own
/// connection mid-pipeline. Returns (closing the connection) on EOF,
/// idle timeout, a write failure, or daemon shutdown.
fn serve_connection(
    mut stream: TcpStream,
    service: &Arc<Mutex<Service>>,
    metrics: &Arc<Metrics>,
    shutdown: &Arc<AtomicBool>,
    net: &NetConfig,
) {
    stream.set_nodelay(true).ok();
    // Short read timeout so the loop can poll the shutdown flag; the idle
    // timeout is enforced separately against the last complete line.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(net.write_timeout_ms.max(1))))
        .ok();
    let idle_limit = Duration::from_millis(net.idle_timeout_ms.max(1));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    // True while skipping the tail of an oversized frame (the error reply
    // for it has already been written).
    let mut discarding = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(count) => {
                buf.extend_from_slice(&chunk[..count]);
                loop {
                    let Some(newline) = buf.iter().position(|b| *b == b'\n') else {
                        if discarding {
                            buf.clear();
                        } else if buf.len() > net.max_line_bytes {
                            let reply = Reply::error(
                                None,
                                ErrorKind::FrameTooLarge,
                                format!(
                                    "request line exceeds {} bytes; discarding until newline",
                                    net.max_line_bytes
                                ),
                            );
                            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            if write_reply(&mut stream, &reply).is_err() {
                                return;
                            }
                            buf.clear();
                            discarding = true;
                        }
                        break;
                    };
                    let line_bytes: Vec<u8> = buf.drain(..=newline).collect();
                    if discarding {
                        // Tail of an already-rejected oversized frame.
                        discarding = false;
                        continue;
                    }
                    if line_bytes.len() > net.max_line_bytes {
                        let reply = Reply::error(
                            None,
                            ErrorKind::FrameTooLarge,
                            format!("request line exceeds {} bytes", net.max_line_bytes),
                        );
                        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        if write_reply(&mut stream, &reply).is_err() {
                            return;
                        }
                        continue;
                    }
                    let line = String::from_utf8_lossy(&line_bytes);
                    let line = line.trim_end_matches(['\n', '\r']).trim();
                    if line.is_empty() {
                        continue;
                    }
                    last_activity = Instant::now();
                    let reply = handle_line(line, service, metrics, shutdown);
                    if write_reply(&mut stream, &reply).is_err() {
                        return;
                    }
                }
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if last_activity.elapsed() > idle_limit {
                    return;
                }
            }
            Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

fn write_reply(stream: &mut TcpStream, reply: &Reply) -> std::io::Result<()> {
    let mut line = proto::encode_reply(reply);
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Decode and execute one request line. Total: every input maps to a
/// reply.
fn handle_line(
    line: &str,
    service: &Arc<Mutex<Service>>,
    metrics: &Arc<Metrics>,
    shutdown: &Arc<AtomicBool>,
) -> Reply {
    let envelope = match proto::decode_request(line) {
        Ok(envelope) => envelope,
        Err(e) => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return e.into_reply();
        }
    };
    let id = envelope.id.clone();
    let now = Instant::now();
    let mut svc = lock_service(service);
    let reply = match envelope.request {
        Request::Submit { app } => match svc.submit(&app, now) {
            Ok(admitted) => {
                let result = match admitted.placement {
                    Some((vm, score, runtime)) => obj(vec![
                        ("task", n(admitted.task as f64)),
                        ("state", s("placed")),
                        ("machine", n(vm.machine as f64)),
                        ("slot", n(vm.slot as f64)),
                        ("predicted_score", n(score)),
                        ("predicted_runtime", n(runtime)),
                    ]),
                    None => obj(vec![
                        ("task", n(admitted.task as f64)),
                        ("state", s("queued")),
                        ("depth", n(admitted.depth as f64)),
                    ]),
                };
                Reply::ok(id, result)
            }
            Err(refusal) => refusal_reply(id, refusal, &svc),
        },
        Request::Complete {
            task,
            runtime,
            iops,
        } => match svc.complete(task, runtime, iops, now) {
            Ok(done) => Reply::ok(
                id,
                obj(vec![
                    ("task", n(task as f64)),
                    ("recorded", Value::Bool(true)),
                    ("rebuilt", Value::Bool(done.rebuilt)),
                    ("predictor_swapped", Value::Bool(done.swapped)),
                    ("dispatched", n(done.dispatched as f64)),
                ]),
            ),
            Err(refusal) => refusal_reply(id, refusal, &svc),
        },
        Request::Status => Reply::ok(id, status_value(&svc)),
        Request::TaskInfo { task } => match svc.task_info(task) {
            Some(record) => {
                let mut pairs = vec![
                    ("task", n(task as f64)),
                    ("app", s(svc.app_name(record.app_idx))),
                ];
                match &record.phase {
                    TaskPhase::Queued => pairs.push(("state", s("queued"))),
                    TaskPhase::Running {
                        vm,
                        neighbor,
                        predicted_score,
                        predicted_runtime,
                        ..
                    } => {
                        pairs.push(("state", s("running")));
                        pairs.push(("machine", n(vm.machine as f64)));
                        pairs.push(("slot", n(vm.slot as f64)));
                        pairs.push((
                            "neighbor",
                            match neighbor {
                                Some(idx) => s(svc.app_name(*idx)),
                                None => Value::Null,
                            },
                        ));
                        pairs.push(("predicted_score", n(*predicted_score)));
                        pairs.push(("predicted_runtime", n(*predicted_runtime)));
                        pairs.push(("attempt", n(f64::from(record.attempts))));
                    }
                    TaskPhase::Completed { runtime } => {
                        pairs.push(("state", s("completed")));
                        pairs.push(("runtime", n(*runtime)));
                    }
                    TaskPhase::DeadLettered { attempts } => {
                        pairs.push(("state", s("dead_lettered")));
                        pairs.push(("attempts", n(f64::from(*attempts))));
                    }
                }
                Reply::ok(id, obj(pairs))
            }
            None => Reply::error(id, ErrorKind::UnknownTask, format!("no task {task}")),
        },
        Request::Drain => {
            let snapshot = svc.drain(now);
            if svc.drained() {
                shutdown.store(true, Ordering::SeqCst);
            }
            Reply::ok(
                id,
                obj(vec![
                    ("draining", Value::Bool(true)),
                    ("queued", n(snapshot.queued as f64)),
                    ("delayed", n(snapshot.delayed as f64)),
                    ("running", n(snapshot.running as f64)),
                ]),
            )
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            Reply::ok(id, obj(vec![("stopping", Value::Bool(true))]))
        }
    };
    // A completion may have emptied a draining daemon; notice it here so
    // the exit does not wait for the next ticker poll.
    if svc.drained() {
        shutdown.store(true, Ordering::SeqCst);
    }
    reply
}

fn refusal_reply(id: Option<String>, refusal: Refusal, svc: &Service) -> Reply {
    match refusal {
        Refusal::QueueFull { depth } => Reply::backpressure(
            id,
            format!("admission queue full (depth {depth})"),
            svc.retry_after_ms(),
        ),
        Refusal::Draining => Reply::error(id, ErrorKind::Draining, "daemon is draining"),
        Refusal::UnknownApp { name } => Reply::error(
            id,
            ErrorKind::UnknownApp,
            format!("application '{name}' was never profiled"),
        ),
        Refusal::UnknownTask { task } => {
            Reply::error(id, ErrorKind::UnknownTask, format!("no task {task}"))
        }
        Refusal::NotRunning { task } => Reply::error(
            id,
            ErrorKind::UnknownTask,
            format!("task {task} is not running"),
        ),
    }
}

fn status_value(svc: &Service) -> Value {
    let snapshot = svc.status();
    let apps = Value::Arr(svc.app_list().iter().map(|name| s(name.clone())).collect());
    obj(vec![
        ("apps", apps),
        ("scheduler", s(snapshot.scheduler)),
        ("queued", n(snapshot.queued as f64)),
        ("delayed", n(snapshot.delayed as f64)),
        ("running", n(snapshot.running as f64)),
        ("completed", n(snapshot.completed as f64)),
        ("dead_lettered", n(snapshot.dead_lettered as f64)),
        ("admitted", n(snapshot.admitted as f64)),
        ("rejected", n(snapshot.rejected as f64)),
        ("rebuilds", n(snapshot.rebuilds as f64)),
        ("predictor_swaps", n(snapshot.swaps as f64)),
        ("draining", Value::Bool(snapshot.draining)),
        ("machines", n(snapshot.machines as f64)),
        ("free_slots", n(snapshot.free_slots as f64)),
    ])
}

/// Answer one HTTP connection: `GET /healthz` or `GET /metrics`.
fn serve_http(mut stream: TcpStream, service: &Arc<Mutex<Service>>, metrics: &Arc<Metrics>) {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(1_000)))
        .ok();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the header terminator; these are tiny GET requests. The
    // hard deadline reaps clients that trickle bytes to dodge the read
    // timeout — this loop runs inline in the accept thread, so one slow
    // connection must never stall /healthz for everyone else.
    let deadline = Instant::now() + Duration::from_millis(2_000);
    loop {
        if Instant::now() > deadline {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(count) => {
                buf.extend_from_slice(&chunk[..count]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/healthz" => {
            let draining = lock_service(service).draining();
            (
                "200 OK",
                "application/json",
                obj(vec![
                    ("ok", Value::Bool(true)),
                    ("draining", Value::Bool(draining)),
                ])
                .to_string(),
            )
        }
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            metrics.render_prometheus(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}
