//! tracond wire protocol: typed requests/replies and their JSON codec.
//!
//! Each TCP connection carries newline-delimited JSON documents. Every
//! request names the protocol version (`"v":2`, with `"v":1` still
//! accepted from legacy clients) and may carry a client request id, which
//! the daemon echoes verbatim in the matching reply so pipelined clients
//! can correlate responses. Decoding is total: any line — malformed JSON,
//! wrong version, unknown op, missing field — maps to a structured
//! [`Reply::Error`], never a panic or a dropped connection.
//!
//! Version 2 adds an optional `demand` object to `submit`: per-dimension
//! resource demand (`{"disk":.., "cpu":.., "network":..}`, any subset)
//! advising the scheduler of lanes the profiled characteristics do not
//! cover. Version-1 submissions simply omit it and keep the legacy
//! two-dimension defaults.

use crate::json::{self, n, obj, s, Value};
use tracon_core::{DimVec, ResourceDim};

/// The newest protocol version this daemon speaks (replies are encoded
/// at this version).
pub const PROTOCOL_VERSION: u64 = 2;

/// The oldest protocol version still accepted on the wire.
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// A client request, after the envelope (version + id) has been peeled off.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit one task of the named application for placement.
    Submit {
        /// Profiled application name (e.g. `"video"`).
        app: String,
        /// Optional per-dimension resource demand (protocol v2). `None`
        /// means the legacy two-dimension defaults; an explicit map is
        /// advisory and echoed in `task` replies.
        demand: Option<DimVec>,
    },
    /// Report that a previously placed task finished, feeding the live
    /// model monitor.
    Complete {
        /// Server-assigned task id from the submit reply.
        task: u64,
        /// Measured wall-clock runtime in seconds.
        runtime: f64,
        /// Measured average IOPS over the task's lifetime.
        iops: f64,
    },
    /// Ask for daemon-wide counters and queue state.
    Status,
    /// Ask for the state of one task.
    TaskInfo {
        /// Server-assigned task id.
        task: u64,
    },
    /// Stop admitting work; the daemon exits once in-flight work drains.
    Drain,
    /// Stop immediately, abandoning queued and running tasks.
    Shutdown,
    /// Replication: a follower asks the leader for WAL frames past its
    /// cursor on one shard. Served inline by the reactor, never routed to
    /// a scheduler shard.
    ReplPull {
        /// Highest leader epoch the follower has observed. A pull carrying
        /// a *newer* epoch than the receiver's own fences the receiver.
        epoch: u64,
        /// WAL shard the cursor addresses.
        shard: usize,
        /// Index of the next frame the follower wants (0-based, monotone
        /// over the leader's shipped history for that shard).
        cursor: u64,
        /// The follower's own protocol address, echoed into `not_leader`
        /// hints once the follower promotes.
        addr: String,
        /// The follower's promotion TTL in milliseconds (0 = unknown).
        /// The leader suspends its own writes after this long without a
        /// pull, so the two lease clocks agree on the failover window.
        ttl_ms: u64,
    },
    /// Replication: a newly promoted leader fences its predecessor.
    ReplLease {
        /// The claimant's epoch; receivers with an older epoch step down.
        epoch: u64,
        /// Protocol address of the claimant, for redirect hints.
        leader_addr: String,
    },
    /// Control: arm, disarm, or inspect the daemon's fault-injection
    /// registry (see [`crate::failpoint`]). Served inline by the reactor
    /// and honored on every node regardless of role — chaos harnesses
    /// must be able to torment followers too.
    Fail {
        /// `"arm"`, `"disarm"`, or `"status"`.
        action: String,
        /// Failpoint spec for `arm` (grammar:
        /// `site[@scope]=action[*count][%permille];…`).
        spec: Option<String>,
    },
}

/// A request together with its echoed client id.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Client-chosen request id, echoed in the reply. `None` if omitted.
    pub id: Option<String>,
    /// The decoded request.
    pub request: Request,
}

/// Machine-readable error categories carried in `error.kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a valid request document.
    Malformed,
    /// The request named a protocol version this daemon does not speak.
    BadVersion,
    /// The `op` field named no known operation.
    UnknownOp,
    /// A required field was missing or had the wrong type.
    BadField,
    /// The admission queue is full; retry after `retry_after_ms`.
    Backpressure,
    /// The daemon is draining and admits no new work.
    Draining,
    /// The submitted application name was never profiled.
    UnknownApp,
    /// The task id names no known task.
    UnknownTask,
    /// The request line exceeded the daemon's frame bound; the rest of
    /// the line is discarded but the connection stays open.
    FrameTooLarge,
    /// This node is not the replication leader; mutating requests carry a
    /// `leader_addr`/`epoch` hint naming where to go instead.
    NotLeader,
}

impl ErrorKind {
    /// The wire spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::BadVersion => "bad-version",
            ErrorKind::UnknownOp => "unknown-op",
            ErrorKind::BadField => "bad-field",
            ErrorKind::Backpressure => "backpressure",
            ErrorKind::Draining => "draining",
            ErrorKind::UnknownApp => "unknown-app",
            ErrorKind::UnknownTask => "unknown-task",
            ErrorKind::FrameTooLarge => "frame-too-large",
            ErrorKind::NotLeader => "not-leader",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Option<ErrorKind> {
        Some(match text {
            "malformed" => ErrorKind::Malformed,
            "bad-version" => ErrorKind::BadVersion,
            "unknown-op" => ErrorKind::UnknownOp,
            "bad-field" => ErrorKind::BadField,
            "backpressure" => ErrorKind::Backpressure,
            "draining" => ErrorKind::Draining,
            "unknown-app" => ErrorKind::UnknownApp,
            "unknown-task" => ErrorKind::UnknownTask,
            "frame-too-large" => ErrorKind::FrameTooLarge,
            "not-leader" => ErrorKind::NotLeader,
            _ => return None,
        })
    }
}

/// Redirect hint carried by [`ErrorKind::NotLeader`] errors: where the
/// current leader (as far as the refusing node knows) lives, and at what
/// epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderHint {
    /// Protocol address of the believed leader. `None` when the node is
    /// fenced but has not yet heard who outranked it.
    pub leader_addr: Option<String>,
    /// The refusing node's view of the current replication epoch.
    pub epoch: u64,
}

/// A daemon reply, one line on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Success; `result` is op-specific.
    Ok {
        /// Echoed client request id.
        id: Option<String>,
        /// Op-specific payload.
        result: Value,
    },
    /// Failure with a machine-readable kind.
    Error {
        /// Echoed client request id (`None` when the line was unparseable).
        id: Option<String>,
        /// Error category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// Backpressure hint: retry after this many milliseconds.
        retry_after_ms: Option<u64>,
        /// `not_leader` redirect hint; `None` for every other kind.
        leader: Option<LeaderHint>,
    },
}

impl Reply {
    /// Build a success reply.
    pub fn ok(id: Option<String>, result: Value) -> Reply {
        Reply::Ok { id, result }
    }

    /// Build an error reply without a retry hint.
    pub fn error(id: Option<String>, kind: ErrorKind, message: impl Into<String>) -> Reply {
        Reply::Error {
            id,
            kind,
            message: message.into(),
            retry_after_ms: None,
            leader: None,
        }
    }

    /// Build a backpressure rejection with a retry hint.
    pub fn backpressure(
        id: Option<String>,
        message: impl Into<String>,
        retry_after_ms: u64,
    ) -> Reply {
        Reply::Error {
            id,
            kind: ErrorKind::Backpressure,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
            leader: None,
        }
    }

    /// Build a `not_leader` refusal pointing the client at the believed
    /// leader.
    pub fn not_leader(id: Option<String>, leader_addr: Option<String>, epoch: u64) -> Reply {
        let target = leader_addr.as_deref().unwrap_or("unknown");
        Reply::Error {
            id,
            kind: ErrorKind::NotLeader,
            message: format!("this node is not the leader (epoch {epoch}, try {target})"),
            retry_after_ms: None,
            leader: Some(LeaderHint { leader_addr, epoch }),
        }
    }
}

fn id_value(id: &Option<String>) -> Value {
    match id {
        Some(text) => s(text.clone()),
        None => Value::Null,
    }
}

/// Encode a request envelope as one wire line (no trailing newline).
pub fn encode_request(envelope: &Envelope) -> String {
    let mut pairs = vec![
        ("v", n(PROTOCOL_VERSION as f64)),
        ("id", id_value(&envelope.id)),
    ];
    match &envelope.request {
        Request::Submit { app, demand } => {
            pairs.push(("op", s("submit")));
            pairs.push(("app", s(app.clone())));
            if let Some(d) = demand {
                pairs.push(("demand", demand_value(d)));
            }
        }
        Request::Complete {
            task,
            runtime,
            iops,
        } => {
            pairs.push(("op", s("complete")));
            pairs.push(("task", n(*task as f64)));
            pairs.push(("runtime", n(*runtime)));
            pairs.push(("iops", n(*iops)));
        }
        Request::Status => pairs.push(("op", s("status"))),
        Request::TaskInfo { task } => {
            pairs.push(("op", s("task")));
            pairs.push(("task", n(*task as f64)));
        }
        Request::Drain => pairs.push(("op", s("drain"))),
        Request::Shutdown => pairs.push(("op", s("shutdown"))),
        Request::ReplPull {
            epoch,
            shard,
            cursor,
            addr,
            ttl_ms,
        } => {
            pairs.push(("op", s("repl_pull")));
            pairs.push(("epoch", n(*epoch as f64)));
            pairs.push(("shard", n(*shard as f64)));
            pairs.push(("cursor", n(*cursor as f64)));
            pairs.push(("addr", s(addr.clone())));
            if *ttl_ms > 0 {
                pairs.push(("ttl_ms", n(*ttl_ms as f64)));
            }
        }
        Request::ReplLease { epoch, leader_addr } => {
            pairs.push(("op", s("repl_lease")));
            pairs.push(("epoch", n(*epoch as f64)));
            pairs.push(("leader_addr", s(leader_addr.clone())));
        }
        Request::Fail { action, spec } => {
            pairs.push(("op", s("fail")));
            pairs.push(("action", s(action.clone())));
            if let Some(spec) = spec {
                pairs.push(("spec", s(spec.clone())));
            }
        }
    }
    obj(pairs).to_string()
}

/// A decode failure, carrying everything needed to build the error reply.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodeError {
    /// Echoed id when the envelope was parseable enough to recover one.
    pub id: Option<String>,
    /// Error category (`Malformed`, `BadVersion`, `UnknownOp`, `BadField`).
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl DecodeError {
    /// Turn this failure into the error reply the daemon writes back.
    pub fn into_reply(self) -> Reply {
        Reply::error(self.id, self.kind, self.message)
    }
}

/// Encode a demand vector as a JSON object of its set lanes, keyed by
/// the canonical dimension names.
pub fn demand_value(demand: &DimVec) -> Value {
    obj(demand
        .iter()
        .map(|(dim, v)| (dim.name(), n(v)))
        .collect::<Vec<_>>())
}

/// Decode the optional `demand` object of a v2 submit. Unknown dimension
/// names and non-finite or negative values are structured field errors.
fn field_demand(doc: &Value, id: &Option<String>) -> Result<Option<DimVec>, DecodeError> {
    let bad = |message: String| DecodeError {
        id: id.clone(),
        kind: ErrorKind::BadField,
        message,
    };
    match doc.get("demand") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Obj(pairs)) => {
            let mut demand = DimVec::new();
            for (key, value) in pairs {
                let dim = ResourceDim::parse(key).ok_or_else(|| {
                    bad(format!(
                        "unknown resource dimension '{key}' (known: {})",
                        ResourceDim::ALL
                            .iter()
                            .map(|d| d.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
                match value.as_f64() {
                    Some(v) if v.is_finite() && v >= 0.0 => demand.set(dim, v),
                    _ => {
                        return Err(bad(format!(
                            "invalid demand for '{key}' (expected finite non-negative number)"
                        )))
                    }
                }
            }
            Ok(Some(demand))
        }
        Some(_) => Err(bad(
            "invalid 'demand' (expected object of dimension -> number)".to_string(),
        )),
    }
}

fn field_u64(doc: &Value, id: &Option<String>, key: &str) -> Result<u64, DecodeError> {
    doc.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| DecodeError {
            id: id.clone(),
            kind: ErrorKind::BadField,
            message: format!("missing or invalid '{key}' (expected non-negative integer)"),
        })
}

fn field_f64(doc: &Value, id: &Option<String>, key: &str) -> Result<f64, DecodeError> {
    match doc.get(key).and_then(Value::as_f64) {
        Some(v) if v.is_finite() => Ok(v),
        _ => Err(DecodeError {
            id: id.clone(),
            kind: ErrorKind::BadField,
            message: format!("missing or invalid '{key}' (expected finite number)"),
        }),
    }
}

/// Decode one wire line into a request envelope.
///
/// The id is recovered on a best-effort basis so that even a request with a
/// bad version or unknown op gets an error reply the client can correlate.
pub fn decode_request(line: &str) -> Result<Envelope, DecodeError> {
    let doc = json::parse(line).map_err(|e| DecodeError {
        id: None,
        kind: ErrorKind::Malformed,
        message: format!("invalid JSON: {e}"),
    })?;
    if !matches!(doc, Value::Obj(_)) {
        return Err(DecodeError {
            id: None,
            kind: ErrorKind::Malformed,
            message: "request must be a JSON object".to_string(),
        });
    }
    let id = doc.get("id").and_then(Value::as_str).map(str::to_string);
    match doc.get("v").and_then(Value::as_u64) {
        Some(v) if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v) => {}
        Some(other) => {
            return Err(DecodeError {
                id,
                kind: ErrorKind::BadVersion,
                message: format!(
                    "unsupported protocol version {other} (daemon speaks \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                ),
            })
        }
        None => {
            return Err(DecodeError {
                id,
                kind: ErrorKind::BadVersion,
                message: "missing protocol version field 'v'".to_string(),
            })
        }
    }
    let op = match doc.get("op").and_then(Value::as_str) {
        Some(op) => op,
        None => {
            return Err(DecodeError {
                id,
                kind: ErrorKind::BadField,
                message: "missing or invalid 'op' (expected string)".to_string(),
            })
        }
    };
    let request = match op {
        "submit" => match doc.get("app").and_then(Value::as_str) {
            Some(app) if !app.is_empty() => Request::Submit {
                app: app.to_string(),
                demand: field_demand(&doc, &id)?,
            },
            _ => {
                return Err(DecodeError {
                    id,
                    kind: ErrorKind::BadField,
                    message: "missing or invalid 'app' (expected non-empty string)".to_string(),
                })
            }
        },
        "complete" => Request::Complete {
            task: field_u64(&doc, &id, "task")?,
            runtime: field_f64(&doc, &id, "runtime")?,
            iops: field_f64(&doc, &id, "iops")?,
        },
        "status" => Request::Status,
        "task" => Request::TaskInfo {
            task: field_u64(&doc, &id, "task")?,
        },
        "drain" => Request::Drain,
        "shutdown" => Request::Shutdown,
        "repl_pull" => Request::ReplPull {
            epoch: field_u64(&doc, &id, "epoch")?,
            shard: field_u64(&doc, &id, "shard")? as usize,
            cursor: field_u64(&doc, &id, "cursor")?,
            addr: match doc.get("addr").and_then(Value::as_str) {
                Some(addr) if !addr.is_empty() => addr.to_string(),
                _ => {
                    return Err(DecodeError {
                        id,
                        kind: ErrorKind::BadField,
                        message: "missing or invalid 'addr' (expected non-empty string)"
                            .to_string(),
                    })
                }
            },
            // Optional: pulls from pre-TTL-aware followers carry no hint.
            ttl_ms: doc.get("ttl_ms").and_then(Value::as_u64).unwrap_or(0),
        },
        "repl_lease" => Request::ReplLease {
            epoch: field_u64(&doc, &id, "epoch")?,
            leader_addr: match doc.get("leader_addr").and_then(Value::as_str) {
                Some(addr) if !addr.is_empty() => addr.to_string(),
                _ => {
                    return Err(DecodeError {
                        id,
                        kind: ErrorKind::BadField,
                        message: "missing or invalid 'leader_addr' (expected non-empty string)"
                            .to_string(),
                    })
                }
            },
        },
        "fail" => {
            let action = match doc.get("action").and_then(Value::as_str) {
                Some(a @ ("arm" | "disarm" | "status")) => a.to_string(),
                _ => {
                    return Err(DecodeError {
                        id,
                        kind: ErrorKind::BadField,
                        message: "missing or invalid 'action' (expected arm|disarm|status)"
                            .to_string(),
                    })
                }
            };
            let spec = doc.get("spec").and_then(Value::as_str).map(str::to_string);
            if action == "arm" && spec.is_none() {
                return Err(DecodeError {
                    id,
                    kind: ErrorKind::BadField,
                    message: "'arm' requires a 'spec' string".to_string(),
                });
            }
            Request::Fail { action, spec }
        }
        other => {
            return Err(DecodeError {
                id,
                kind: ErrorKind::UnknownOp,
                message: format!("unknown op '{other}'"),
            })
        }
    };
    Ok(Envelope { id, request })
}

/// Encode a reply as one wire line (no trailing newline).
pub fn encode_reply(reply: &Reply) -> String {
    match reply {
        Reply::Ok { id, result } => obj(vec![
            ("v", n(PROTOCOL_VERSION as f64)),
            ("id", id_value(id)),
            ("ok", Value::Bool(true)),
            ("result", result.clone()),
        ])
        .to_string(),
        Reply::Error {
            id,
            kind,
            message,
            retry_after_ms,
            leader,
        } => {
            let mut error = vec![("kind", s(kind.as_str())), ("message", s(message.clone()))];
            if let Some(ms) = retry_after_ms {
                error.push(("retry_after_ms", n(*ms as f64)));
            }
            if let Some(hint) = leader {
                if let Some(addr) = &hint.leader_addr {
                    error.push(("leader_addr", s(addr.clone())));
                }
                error.push(("epoch", n(hint.epoch as f64)));
            }
            obj(vec![
                ("v", n(PROTOCOL_VERSION as f64)),
                ("id", id_value(id)),
                ("ok", Value::Bool(false)),
                ("error", obj(error)),
            ])
            .to_string()
        }
    }
}

/// Decode a reply line, used by the client and the loopback tests.
pub fn decode_reply(line: &str) -> Result<Reply, String> {
    let doc = json::parse(line).map_err(|e| format!("invalid reply JSON: {e}"))?;
    let id = doc.get("id").and_then(Value::as_str).map(str::to_string);
    match doc.get("ok").and_then(Value::as_bool) {
        Some(true) => {
            let result = doc.get("result").cloned().unwrap_or(Value::Null);
            Ok(Reply::Ok { id, result })
        }
        Some(false) => {
            let error = doc
                .get("error")
                .cloned()
                .ok_or_else(|| "error reply without 'error' object".to_string())?;
            let kind = error
                .get("kind")
                .and_then(Value::as_str)
                .and_then(ErrorKind::from_str)
                .ok_or_else(|| "error reply with unknown 'kind'".to_string())?;
            let message = error
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let retry_after_ms = error.get("retry_after_ms").and_then(Value::as_u64);
            let leader = error
                .get("epoch")
                .and_then(Value::as_u64)
                .map(|epoch| LeaderHint {
                    leader_addr: error
                        .get("leader_addr")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                    epoch,
                });
            Ok(Reply::Error {
                id,
                kind,
                message,
                retry_after_ms,
                leader,
            })
        }
        None => Err("reply without boolean 'ok' field".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrip() {
        let envelope = Envelope {
            id: Some("c3-17".to_string()),
            request: Request::Submit {
                app: "video".to_string(),
                demand: None,
            },
        };
        let line = encode_request(&envelope);
        assert!(!line.contains("demand"), "legacy submit stays lean: {line}");
        assert_eq!(decode_request(&line).unwrap(), envelope);
    }

    #[test]
    fn submit_demand_roundtrip() {
        let envelope = Envelope {
            id: None,
            request: Request::Submit {
                app: "video".to_string(),
                demand: Some(
                    DimVec::new()
                        .with(ResourceDim::Disk, 120.0)
                        .with(ResourceDim::Network, 40.5),
                ),
            },
        };
        let line = encode_request(&envelope);
        assert!(line.contains("\"network\":40.5"), "{line}");
        assert_eq!(decode_request(&line).unwrap(), envelope);
    }

    #[test]
    fn legacy_v1_submit_still_decodes() {
        let e = decode_request("{\"v\":1,\"op\":\"submit\",\"app\":\"video\"}").unwrap();
        assert_eq!(
            e.request,
            Request::Submit {
                app: "video".to_string(),
                demand: None,
            }
        );
    }

    #[test]
    fn bad_demand_is_a_structured_field_error() {
        let e = decode_request("{\"v\":2,\"op\":\"submit\",\"app\":\"a\",\"demand\":{\"tape\":1}}")
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
        assert!(e.message.contains("tape"), "{}", e.message);
        let e =
            decode_request("{\"v\":2,\"op\":\"submit\",\"app\":\"a\",\"demand\":{\"disk\":-4}}")
                .unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
        let e =
            decode_request("{\"v\":2,\"op\":\"submit\",\"app\":\"a\",\"demand\":7}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
    }

    #[test]
    fn complete_roundtrip_preserves_measurements() {
        let envelope = Envelope {
            id: None,
            request: Request::Complete {
                task: 42,
                runtime: 3.75,
                iops: 188.5,
            },
        };
        let line = encode_request(&envelope);
        assert_eq!(decode_request(&line).unwrap(), envelope);
    }

    #[test]
    fn malformed_line_yields_structured_error() {
        let e = decode_request("not json at all").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Malformed);
        assert_eq!(e.id, None);
        let reply = e.into_reply();
        let line = encode_reply(&reply);
        assert_eq!(decode_reply(&line).unwrap(), reply);
    }

    #[test]
    fn version_mismatch_recovers_id() {
        let e = decode_request("{\"v\":9,\"id\":\"x-1\",\"op\":\"status\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadVersion);
        assert_eq!(e.id.as_deref(), Some("x-1"));
    }

    #[test]
    fn unknown_op_and_missing_fields() {
        let e = decode_request("{\"v\":1,\"op\":\"frobnicate\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnknownOp);
        let e = decode_request("{\"v\":1,\"op\":\"submit\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
        let e =
            decode_request("{\"v\":1,\"op\":\"complete\",\"task\":1,\"runtime\":1.0}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
    }

    #[test]
    fn backpressure_reply_carries_retry_hint() {
        let reply = Reply::backpressure(Some("q-9".to_string()), "queue full (cap 4)", 120);
        let line = encode_reply(&reply);
        assert!(line.contains("\"retry_after_ms\":120"), "{line}");
        assert_eq!(decode_reply(&line).unwrap(), reply);
    }

    #[test]
    fn error_kind_wire_names_roundtrip() {
        for kind in [
            ErrorKind::Malformed,
            ErrorKind::BadVersion,
            ErrorKind::UnknownOp,
            ErrorKind::BadField,
            ErrorKind::Backpressure,
            ErrorKind::Draining,
            ErrorKind::UnknownApp,
            ErrorKind::UnknownTask,
            ErrorKind::FrameTooLarge,
            ErrorKind::NotLeader,
        ] {
            assert_eq!(ErrorKind::from_str(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_str("nope"), None);
    }

    #[test]
    fn repl_requests_roundtrip() {
        for request in [
            Request::ReplPull {
                epoch: 3,
                shard: 1,
                cursor: 4096,
                addr: "127.0.0.1:7431".to_string(),
                ttl_ms: 1_200,
            },
            Request::ReplPull {
                epoch: 3,
                shard: 0,
                cursor: 0,
                addr: "127.0.0.1:7431".to_string(),
                // Unknown TTL must survive the roundtrip as 0 (the field
                // is omitted on the wire).
                ttl_ms: 0,
            },
            Request::ReplLease {
                epoch: 4,
                leader_addr: "127.0.0.1:7432".to_string(),
            },
        ] {
            let envelope = Envelope {
                id: Some("r-1".to_string()),
                request,
            };
            let line = encode_request(&envelope);
            assert_eq!(decode_request(&line).unwrap(), envelope);
        }
        let e =
            decode_request("{\"v\":2,\"op\":\"repl_pull\",\"epoch\":1,\"shard\":0,\"cursor\":0}")
                .unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
        let e = decode_request("{\"v\":2,\"op\":\"repl_lease\",\"epoch\":1}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
    }

    #[test]
    fn fail_verb_roundtrips_and_validates() {
        for request in [
            Request::Fail {
                action: "arm".to_string(),
                spec: Some("wal.append.sync=err*3;seed=7".to_string()),
            },
            Request::Fail {
                action: "disarm".to_string(),
                spec: None,
            },
            Request::Fail {
                action: "status".to_string(),
                spec: None,
            },
        ] {
            let envelope = Envelope { id: None, request };
            let line = encode_request(&envelope);
            assert_eq!(decode_request(&line).unwrap(), envelope);
        }
        let e = decode_request("{\"v\":2,\"op\":\"fail\",\"action\":\"explode\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
        let e = decode_request("{\"v\":2,\"op\":\"fail\",\"action\":\"arm\"}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadField);
    }

    #[test]
    fn not_leader_reply_carries_redirect_hint() {
        let reply = Reply::not_leader(Some("s-2".to_string()), Some("127.0.0.1:7431".into()), 7);
        let line = encode_reply(&reply);
        assert!(
            line.contains("\"leader_addr\":\"127.0.0.1:7431\""),
            "{line}"
        );
        assert!(line.contains("\"epoch\":7"), "{line}");
        assert_eq!(decode_reply(&line).unwrap(), reply);

        // A fenced node that has not yet heard the new leader's address
        // still names the epoch that outranked it.
        let reply = Reply::not_leader(None, None, 9);
        let line = encode_reply(&reply);
        assert!(!line.contains("leader_addr"), "{line}");
        assert_eq!(decode_reply(&line).unwrap(), reply);
    }
}
