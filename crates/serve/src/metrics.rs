//! Lock-free daemon counters and their Prometheus text exposition.
//!
//! Every counter is a relaxed atomic updated from the connection threads and
//! read by the HTTP listener; exactness across concurrent readers is not
//! required, monotonicity of each individual counter is. The dispatch
//! latency histogram (submit → placement, wall clock) uses fixed
//! millisecond buckets rendered in the cumulative `le` form Prometheus
//! expects.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (milliseconds) of the dispatch-latency histogram buckets;
/// an implicit `+Inf` bucket follows.
pub const LATENCY_BUCKETS_MS: [u64; 10] = [1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000];

/// Per-shard gauge set, rendered with a `shard="i"` label.
#[derive(Default)]
pub struct ShardGauges {
    /// This shard's admission queue depth.
    pub queue_depth: AtomicU64,
    /// This shard's leased (running) tasks.
    pub leased: AtomicU64,
    /// This shard's dead-letter queue size.
    pub dead_lettered: AtomicU64,
}

/// Shared daemon counters; one instance lives behind an `Arc`.
#[derive(Default)]
pub struct Metrics {
    /// Tasks accepted into the admission queue (includes immediately placed).
    pub admissions: AtomicU64,
    /// Submissions rejected with backpressure.
    pub rejections: AtomicU64,
    /// Submissions rejected because the daemon was draining.
    pub drain_rejections: AtomicU64,
    /// Tasks whose completion was reported by a client.
    pub completions: AtomicU64,
    /// Model rebuilds triggered by reported completions.
    pub rebuilds: AtomicU64,
    /// Predictor swaps applied after rebuilds.
    pub predictor_swaps: AtomicU64,
    /// Lines that failed to decode into a request.
    pub protocol_errors: AtomicU64,
    /// Leases that expired before a completion was reported.
    pub lease_expiries: AtomicU64,
    /// Tasks re-queued (with backoff) after a lease expiry.
    pub requeues: AtomicU64,
    /// Tasks moved to the dead-letter queue after exhausting attempts.
    pub dead_letters: AtomicU64,
    /// Records appended to the write-ahead log.
    pub wal_records: AtomicU64,
    /// Successful group-commit fsyncs (one per `append_batch`, however
    /// many records it carried).
    pub wal_fsyncs: AtomicU64,
    /// Records replayed from the log during crash recovery.
    pub wal_replayed_records: AtomicU64,
    /// Snapshot compactions written.
    pub wal_snapshots: AtomicU64,
    /// WAL append/snapshot failures (the daemon degrades to in-memory).
    pub wal_errors: AtomicU64,
    /// 1 while the WAL is degraded: a recent append/snapshot failed and
    /// acked mutations are not durable, or a scrub found unrepaired
    /// corruption (gauge; cleared when persistence recovers).
    pub wal_degraded: AtomicU64,
    /// Completed background scrub passes over sealed WAL regions.
    pub scrub_runs: AtomicU64,
    /// Corrupt (checksummed-then-rotted) frames or snapshots found by
    /// the scrubber.
    pub scrub_corrupt_frames: AtomicU64,
    /// Corrupt shards repaired — re-pulled from the peer on a pair, or
    /// truncated at the quarantine point standalone.
    pub scrub_repaired: AtomicU64,
    /// Adaptive model rebuilds that failed; the last-good predictor stays.
    pub rebuild_failures: AtomicU64,
    /// Work-steal rebalance passes that moved at least one task.
    pub steals: AtomicU64,
    /// Tasks migrated between shards by work-stealing.
    pub migrated_tasks: AtomicU64,
    /// Current admission queue depth, summed over shards (gauge).
    pub queue_depth: AtomicU64,
    /// Currently running (placed, not yet completed) tasks, summed over
    /// shards (gauge).
    pub running: AtomicU64,
    /// Frames the slowest replica still has to pull, max over shards
    /// (gauge; 0 when replication is off or fully caught up).
    pub repl_lag_frames: AtomicU64,
    /// Current replication epoch (gauge; 0 when replication is off).
    pub repl_epoch: AtomicU64,
    /// Replication role: 0 = leader, 1 = follower, 2 = fenced (gauge).
    pub repl_role: AtomicU64,
    /// Whether the leader has suspended mutations because its registered
    /// follower went silent for the replication TTL (gauge; 0 or 1).
    pub repl_writes_suspended: AtomicU64,
    /// Per-shard gauge vectors (length = shard count, 1 by default).
    shard_gauges: Vec<ShardGauges>,
    /// Cumulative dispatch-latency histogram counts per bucket.
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    /// Sum of observed dispatch latencies in microseconds (for `_sum`).
    latency_sum_us: AtomicU64,
    /// Total observations (for `_count` and the `+Inf` bucket).
    latency_count: AtomicU64,
}

impl Metrics {
    /// Fresh all-zero counters for a single-shard daemon.
    pub fn new() -> Metrics {
        Metrics::with_shards(1)
    }

    /// Fresh all-zero counters with one gauge set per shard.
    pub fn with_shards(shards: usize) -> Metrics {
        Metrics {
            shard_gauges: (0..shards.max(1)).map(|_| ShardGauges::default()).collect(),
            ..Metrics::default()
        }
    }

    /// How many shards the gauge vectors cover.
    pub fn shard_count(&self) -> usize {
        self.shard_gauges.len()
    }

    /// One shard's gauges (None when `shard` is out of range — e.g. a
    /// test-built `Service` sharing a smaller `Metrics`).
    pub fn shard_gauges(&self, shard: usize) -> Option<&ShardGauges> {
        self.shard_gauges.get(shard)
    }

    /// Store one shard's gauges and refresh the summed legacy gauges.
    pub fn set_shard_gauges(&self, shard: usize, queue_depth: u64, leased: u64, dead: u64) {
        if let Some(g) = self.shard_gauges.get(shard) {
            g.queue_depth.store(queue_depth, Ordering::Relaxed);
            g.leased.store(leased, Ordering::Relaxed);
            g.dead_lettered.store(dead, Ordering::Relaxed);
        }
        let (mut q, mut r) = (0u64, 0u64);
        for g in &self.shard_gauges {
            q += g.queue_depth.load(Ordering::Relaxed);
            r += g.leased.load(Ordering::Relaxed);
        }
        self.queue_depth.store(q, Ordering::Relaxed);
        self.running.store(r, Ordering::Relaxed);
    }

    /// Record one submit→placement latency observation.
    pub fn observe_dispatch_latency(&self, micros: u64) {
        let ms = micros / 1000;
        for (i, bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            if ms <= *bound {
                self.latency_buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        // +Inf bucket equals the total count.
        self.latency_buckets[LATENCY_BUCKETS_MS.len()].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(micros, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the full Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP tracond_{name} {help}\n# TYPE tracond_{name} counter\ntracond_{name} {value}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP tracond_{name} {help}\n# TYPE tracond_{name} gauge\ntracond_{name} {value}\n"
            ));
        };
        counter(
            &mut out,
            "admissions_total",
            "Tasks accepted into the admission queue.",
            self.admissions.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rejections_total",
            "Submissions rejected with backpressure.",
            self.rejections.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "drain_rejections_total",
            "Submissions rejected because the daemon was draining.",
            self.drain_rejections.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "completions_total",
            "Task completions reported by clients.",
            self.completions.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "model_rebuilds_total",
            "Adaptive model rebuilds triggered by completions.",
            self.rebuilds.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "predictor_swaps_total",
            "Predictor swaps applied after rebuilds.",
            self.predictor_swaps.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "protocol_errors_total",
            "Request lines that failed to decode.",
            self.protocol_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "lease_expiries_total",
            "Task leases that expired before a completion was reported.",
            self.lease_expiries.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "requeues_total",
            "Tasks re-queued with backoff after a lease expiry.",
            self.requeues.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "dead_letters_total",
            "Tasks dead-lettered after exhausting their attempts.",
            self.dead_letters.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "wal_records_total",
            "Records appended to the write-ahead log.",
            self.wal_records.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "wal_fsyncs_total",
            "Successful WAL group-commit fsyncs (one per append batch).",
            self.wal_fsyncs.load(Ordering::Relaxed),
        );
        // Derived gauge: mean records per group-commit fsync, the batch
        // amortization the reactor's batching actually achieved.
        {
            let records = self.wal_records.load(Ordering::Relaxed);
            let fsyncs = self.wal_fsyncs.load(Ordering::Relaxed);
            let mean = if fsyncs == 0 {
                0.0
            } else {
                records as f64 / fsyncs as f64
            };
            out.push_str(&format!(
                "# HELP tracond_wal_records_per_fsync Mean WAL records per group-commit fsync.\n# TYPE tracond_wal_records_per_fsync gauge\ntracond_wal_records_per_fsync {mean}\n"
            ));
        }
        counter(
            &mut out,
            "wal_replayed_records_total",
            "Log records replayed during crash recovery.",
            self.wal_replayed_records.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "wal_snapshots_total",
            "Snapshot compactions written.",
            self.wal_snapshots.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "wal_errors_total",
            "WAL append or snapshot failures.",
            self.wal_errors.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "wal_degraded",
            "1 while acked mutations are not durable (WAL degraded to memory or unrepaired corruption).",
            self.wal_degraded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "scrub_runs_total",
            "Completed background WAL scrub passes.",
            self.scrub_runs.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "scrub_corrupt_frames_total",
            "Corrupt sealed frames or snapshots found by the scrubber.",
            self.scrub_corrupt_frames.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "scrub_repaired_total",
            "Corrupt shards repaired (peer re-pull on a pair, truncation standalone).",
            self.scrub_repaired.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rebuild_failures_total",
            "Adaptive model rebuilds that failed (last-good predictor kept).",
            self.rebuild_failures.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "steals_total",
            "Work-steal rebalance passes that moved at least one task.",
            self.steals.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "migrated_tasks_total",
            "Tasks migrated between shards by work-stealing.",
            self.migrated_tasks.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "queue_depth",
            "Current admission queue depth (summed over shards).",
            self.queue_depth.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "running_tasks",
            "Tasks currently placed on a VM and not yet completed.",
            self.running.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "repl_lag_frames",
            "WAL frames the slowest replica still has to pull (max over shards).",
            self.repl_lag_frames.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "repl_epoch",
            "Current replication epoch (0 when replication is off).",
            self.repl_epoch.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "repl_role",
            "Replication role: 0 leader, 1 follower, 2 fenced.",
            self.repl_role.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "repl_writes_suspended",
            "1 while the leader refuses mutations because its follower went silent.",
            self.repl_writes_suspended.load(Ordering::Relaxed),
        );
        // Per-shard gauge vectors, one labeled series per shard.
        for (name, help, read) in [
            (
                "shard_queue_depth",
                "Admission queue depth of one shard.",
                &(|g: &ShardGauges| g.queue_depth.load(Ordering::Relaxed))
                    as &dyn Fn(&ShardGauges) -> u64,
            ),
            (
                "shard_leased_tasks",
                "Tasks currently leased (running) on one shard.",
                &|g: &ShardGauges| g.leased.load(Ordering::Relaxed),
            ),
            (
                "shard_dead_lettered",
                "Dead-letter queue size of one shard.",
                &|g: &ShardGauges| g.dead_lettered.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!(
                "# HELP tracond_{name} {help}\n# TYPE tracond_{name} gauge\n"
            ));
            for (shard, g) in self.shard_gauges.iter().enumerate() {
                out.push_str(&format!(
                    "tracond_{name}{{shard=\"{shard}\"}} {}\n",
                    read(g)
                ));
            }
        }
        out.push_str("# HELP tracond_dispatch_latency_seconds Submit-to-placement latency.\n");
        out.push_str("# TYPE tracond_dispatch_latency_seconds histogram\n");
        for (i, bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            out.push_str(&format!(
                "tracond_dispatch_latency_seconds_bucket{{le=\"{}\"}} {}\n",
                *bound as f64 / 1000.0,
                self.latency_buckets[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "tracond_dispatch_latency_seconds_bucket{{le=\"+Inf\"}} {}\n",
            self.latency_buckets[LATENCY_BUCKETS_MS.len()].load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "tracond_dispatch_latency_seconds_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "tracond_dispatch_latency_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_dispatch_latency(500); // 0 ms bucket-wise -> le=1
        m.observe_dispatch_latency(8_000); // 8 ms -> le=10
        m.observe_dispatch_latency(7_000_000); // 7 s -> only +Inf
        let text = m.render_prometheus();
        assert!(text.contains("le=\"0.001\"} 1"), "{text}");
        assert!(text.contains("le=\"0.01\"} 2"), "{text}");
        assert!(text.contains("le=\"5\"} 2"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("dispatch_latency_seconds_count 3"), "{text}");
    }

    /// Pins the wire names of the fault/recovery series: dashboards and
    /// the CI chaos job grep for these exact strings, so renaming one is
    /// a breaking change that must fail here first.
    #[test]
    fn fault_and_recovery_metric_names_are_pinned() {
        let m = Metrics::new();
        m.lease_expiries.fetch_add(1, Ordering::Relaxed);
        m.requeues.fetch_add(2, Ordering::Relaxed);
        m.dead_letters.fetch_add(3, Ordering::Relaxed);
        m.wal_records.fetch_add(4, Ordering::Relaxed);
        m.wal_replayed_records.fetch_add(5, Ordering::Relaxed);
        m.wal_snapshots.fetch_add(6, Ordering::Relaxed);
        m.wal_errors.fetch_add(7, Ordering::Relaxed);
        m.rebuild_failures.fetch_add(8, Ordering::Relaxed);
        m.wal_fsyncs.fetch_add(2, Ordering::Relaxed);
        m.wal_degraded.store(1, Ordering::Relaxed);
        m.scrub_runs.fetch_add(9, Ordering::Relaxed);
        m.scrub_corrupt_frames.fetch_add(10, Ordering::Relaxed);
        m.scrub_repaired.fetch_add(11, Ordering::Relaxed);
        let text = m.render_prometheus();
        for pinned in [
            "tracond_lease_expiries_total 1",
            "tracond_requeues_total 2",
            "tracond_dead_letters_total 3",
            "tracond_wal_records_total 4",
            "tracond_wal_replayed_records_total 5",
            "tracond_wal_snapshots_total 6",
            "tracond_wal_errors_total 7",
            "tracond_rebuild_failures_total 8",
            "tracond_wal_fsyncs_total 2",
            // Scrub/degrade series: the torture CI job and the strict
            // health check grep these exact names.
            "tracond_wal_degraded 1",
            "tracond_scrub_runs_total 9",
            "tracond_scrub_corrupt_frames_total 10",
            "tracond_scrub_repaired_total 11",
            // 4 records over 2 fsyncs: the derived batch-size gauge.
            "tracond_wal_records_per_fsync 2",
        ] {
            assert!(text.contains(pinned), "missing series: {pinned}\n{text}");
        }
    }

    /// Same pinning contract for the replication series: the failover CI
    /// job and the README HA walkthrough grep for these names.
    #[test]
    fn replication_metric_names_are_pinned() {
        let m = Metrics::new();
        m.repl_lag_frames.store(17, Ordering::Relaxed);
        m.repl_epoch.store(3, Ordering::Relaxed);
        m.repl_role.store(1, Ordering::Relaxed);
        m.repl_writes_suspended.store(1, Ordering::Relaxed);
        let text = m.render_prometheus();
        for pinned in [
            "tracond_repl_lag_frames 17",
            "tracond_repl_epoch 3",
            "tracond_repl_role 1",
            "tracond_repl_writes_suspended 1",
            // No fsyncs yet: the derived gauge must render 0, not NaN.
            "tracond_wal_records_per_fsync 0",
        ] {
            assert!(text.contains(pinned), "missing series: {pinned}\n{text}");
        }
    }

    #[test]
    fn shard_metric_names_are_pinned() {
        let m = Metrics::with_shards(2);
        m.steals.fetch_add(2, Ordering::Relaxed);
        m.migrated_tasks.fetch_add(9, Ordering::Relaxed);
        m.set_shard_gauges(0, 4, 1, 0);
        m.set_shard_gauges(1, 6, 2, 3);
        let text = m.render_prometheus();
        for pinned in [
            "tracond_steals_total 2",
            "tracond_migrated_tasks_total 9",
            "tracond_shard_queue_depth{shard=\"0\"} 4",
            "tracond_shard_queue_depth{shard=\"1\"} 6",
            "tracond_shard_leased_tasks{shard=\"0\"} 1",
            "tracond_shard_leased_tasks{shard=\"1\"} 2",
            "tracond_shard_dead_lettered{shard=\"0\"} 0",
            "tracond_shard_dead_lettered{shard=\"1\"} 3",
            // The unlabeled legacy gauges stay as sums over shards.
            "tracond_queue_depth 10",
            "tracond_running_tasks 3",
        ] {
            assert!(text.contains(pinned), "missing series: {pinned}\n{text}");
        }
    }

    #[test]
    fn counters_appear_in_exposition() {
        let m = Metrics::new();
        m.admissions.fetch_add(7, Ordering::Relaxed);
        m.rejections.fetch_add(2, Ordering::Relaxed);
        m.queue_depth.store(3, Ordering::Relaxed);
        let text = m.render_prometheus();
        assert!(text.contains("tracond_admissions_total 7"));
        assert!(text.contains("tracond_rejections_total 2"));
        assert!(text.contains("tracond_queue_depth 3"));
        assert!(text.contains("# TYPE tracond_queue_depth gauge"));
    }
}
