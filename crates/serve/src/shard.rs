//! Shard routing and merged multi-WAL recovery for the sharded daemon.
//!
//! The daemon runs `N` independent [`crate::state::Service`] shards, each
//! the single writer of its own WAL (`wal.0..wal.N-1`). Three pieces of
//! policy live here, all pure and thread-free so tests can drive them
//! directly:
//!
//! - **Routing**: submissions hash to a shard by application via
//!   rendezvous (highest-random-weight) hashing — dependency-free and
//!   minimally disruptive: when the shard count grows from `n` to `n+1`,
//!   an application only moves if the *new* shard wins, so
//!   `route(app, n+1) != route(app, n)` implies `route(app, n+1) == n`
//!   (property-tested in `tests/sharding.rs`).
//! - **Machine partitioning**: the physical cluster is split into
//!   contiguous per-shard slices; replies translate shard-local machine
//!   indices back to global ones through the slice base.
//! - **Merged recovery**: on boot every `wal.*`/`snapshot.*.json` in the
//!   directory is replayed (even files beyond the current shard count),
//!   records are merged per task id with a state-precedence rule, donor
//!   tombstones from interrupted steals are resolved, and each surviving
//!   task is assigned a home shard — its previous shard when the count
//!   is unchanged, a fresh hash route when it changed.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use tracon_core::AppId;

use crate::wal::{existing_shard_count, RecState, RecoveredTask, Wal};

/// Rendezvous-hash a key to one of `shards` buckets: each bucket's weight
/// is a splitmix64-style mix of `(key, bucket)`, the argmax wins. Strict
/// comparison makes the choice deterministic and gives the minimal-
/// disruption property on shard-count changes. The key is mixed before
/// it meets the bucket term: interned app ids are tiny consecutive
/// integers, and without the pre-mix their low-entropy bits clump a
/// small app population onto few shards.
pub fn route_key(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "route over zero shards");
    let key = mix(key);
    let mut best = 0usize;
    let mut best_weight = 0u64;
    for shard in 0..shards {
        let weight = mix(key ^ mix(shard as u64 ^ 0x9E37_79B9_7F4A_7C15));
        if shard == 0 || weight > best_weight {
            best = shard;
            best_weight = weight;
        }
    }
    best
}

/// Route an interned application id to its home shard.
pub fn route_app(app: AppId, shards: usize) -> usize {
    route_key(app.index() as u64, shards)
}

/// Route an application *name* to a shard. Used for names that were
/// never profiled (so no [`AppId`] exists): any deterministic shard will
/// refuse them identically, but hashing keeps the error load spread.
pub fn route_name(name: &str, shards: usize) -> usize {
    let mut key = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        key = (key ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    route_key(key, shards)
}

/// The default shard for a task id under strided allocation: shard `i`
/// issues ids `i+1, i+1+N, i+1+2N, …`, so `(id-1) % N` recovers the
/// issuer without any lookup (id 0 is invalid; mapped to shard 0).
pub fn stride_shard(task: u64, shards: usize) -> usize {
    (task.saturating_sub(1) % shards.max(1) as u64) as usize
}

/// Split `machines` into `shards` contiguous `(base, count)` slices, the
/// remainder spread over the leading shards. Every shard gets at least
/// one machine; callers must validate `shards <= machines`.
pub fn shard_machines(machines: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(
        shards > 0 && shards <= machines,
        "shards must be 1..=machines"
    );
    let per = machines / shards;
    let extra = machines % shards;
    let mut slices = Vec::with_capacity(shards);
    let mut base = 0;
    for shard in 0..shards {
        let count = per + usize::from(shard < extra);
        slices.push((base, count));
        base += count;
    }
    slices
}

/// One task out of the merged recovery, tagged with its home shard.
#[derive(Debug, Clone)]
pub struct HomedTask {
    /// The recovered record (tombstones already resolved to `Queued`).
    pub rec: RecoveredTask,
    /// Which shard re-adopts it.
    pub home: usize,
}

/// The merged result of replaying every shard WAL in a directory.
#[derive(Debug)]
pub struct MergedRecovery {
    /// Every surviving task in id order, with its home shard.
    pub tasks: Vec<HomedTask>,
    /// First unused task id across all shards.
    pub next_task_id: u64,
    /// Log records replayed across all files.
    pub replayed_records: u64,
    /// How many shards left durable state (0 for a fresh directory).
    pub old_shards: usize,
}

/// Replays all shard WALs in `dir`, merges them per task id, and returns
/// open WAL handles for shards `0..shards` plus the homed task set.
///
/// `route` maps an application name to its hash shard (`None` for names
/// no longer profiled — those fall back to the task-id stride and are
/// dropped later by `Service::adopt_recovered`). Files for shards beyond
/// `shards` are replayed but not kept open; the caller deletes them once
/// the re-homed state is snapshotted.
pub fn recover_dir(
    dir: &Path,
    shards: usize,
    snapshot_every: u64,
    route: &dyn Fn(&str) -> Option<usize>,
) -> io::Result<(Vec<Wal>, MergedRecovery)> {
    assert!(shards > 0, "recover over zero shards");
    let old_shards = existing_shard_count(dir);
    let total = old_shards.max(shards);

    let mut wals = Vec::with_capacity(shards);
    let mut merged: HashMap<u64, (RecoveredTask, usize)> = HashMap::new();
    let mut next_task_id = 0u64;
    let mut replayed_records = 0u64;
    for shard in 0..total {
        let (wal, recovery) = Wal::open_shard(dir, shard, snapshot_every)?;
        if shard < shards {
            wals.push(wal);
        }
        next_task_id = next_task_id.max(recovery.next_task_id);
        replayed_records += recovery.replayed_records;
        for rec in recovery.tasks {
            match merged.get_mut(&rec.task) {
                None => {
                    merged.insert(rec.task, (rec, shard));
                }
                Some(existing) => {
                    if wins_over(&rec, &existing.0) {
                        *existing = (rec, shard);
                    }
                }
            }
        }
    }

    // Re-home every survivor. The shard count being unchanged means each
    // task goes back where its winning record was found (preserving past
    // steals); a changed count re-routes everything by application hash.
    let count_changed = old_shards != 0 && old_shards != shards;
    let mut tasks: Vec<HomedTask> = merged
        .into_values()
        .map(|(mut rec, source)| {
            let hint = rec.migrated_to.take().filter(|&to| to < shards);
            let resurrected = rec.state == RecState::Migrated;
            if resurrected {
                // The donor's tombstone is the only surviving trace: the
                // steal was cut mid-handoff, so the task is queued again.
                rec.state = RecState::Queued;
            }
            let fallback = || route(&rec.app).unwrap_or_else(|| stride_shard(rec.task, shards));
            let home = if count_changed {
                fallback()
            } else if resurrected {
                hint.unwrap_or_else(fallback)
            } else if source < shards {
                source
            } else {
                fallback()
            };
            HomedTask { rec, home }
        })
        .collect();
    tasks.sort_unstable_by_key(|t| t.rec.task);

    Ok((
        wals,
        MergedRecovery {
            tasks,
            next_task_id,
            replayed_records,
            old_shards,
        },
    ))
}

/// State precedence for the per-task merge: terminal records beat live
/// ones, leases beat queued, real records beat donor tombstones; equal
/// states resolve by attempt count (later attempt wins).
fn wins_over(candidate: &RecoveredTask, incumbent: &RecoveredTask) -> bool {
    let rank = |s: RecState| -> u8 {
        match s {
            RecState::Migrated => 0,
            RecState::Queued => 1,
            RecState::Leased => 2,
            RecState::Completed | RecState::DeadLettered => 3,
        }
    };
    let (c, i) = (rank(candidate.state), rank(incumbent.state));
    c > i || (c == i && candidate.attempts > incumbent.attempts)
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalRecord;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracon-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn rendezvous_is_stable_when_a_shard_is_added() {
        for key in 0..512u64 {
            for n in 1..8usize {
                let before = route_key(key, n);
                let after = route_key(key, n + 1);
                assert!(
                    after == before || after == n,
                    "key {key} moved {before} -> {after} when shard {n} was added"
                );
            }
        }
    }

    #[test]
    fn rendezvous_spreads_keys_roughly_evenly() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0..4000u64 {
            counts[route_key(key, shards)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 4000 / shards / 2,
                "shard {shard} starved: {counts:?}"
            );
        }
    }

    #[test]
    fn machine_slices_are_contiguous_and_cover_the_cluster() {
        for machines in 1..40usize {
            for shards in 1..=machines.min(8) {
                let slices = shard_machines(machines, shards);
                assert_eq!(slices.len(), shards);
                let mut expect_base = 0;
                for &(base, count) in &slices {
                    assert_eq!(base, expect_base);
                    assert!(count >= 1);
                    expect_base += count;
                }
                assert_eq!(expect_base, machines);
            }
        }
    }

    #[test]
    fn interrupted_steal_resurrects_the_task_exactly_once() {
        // Donor logged the migrate, then crashed before the recipient
        // recorded anything: the tombstone alone must bring the task back
        // on the recipient shard.
        let dir = tmpdir("steal-crash");
        {
            let (mut donor, _) = Wal::open_shard(&dir, 0, 1000).unwrap();
            donor
                .append(&WalRecord::Submit {
                    task: 1,
                    app: "grep".into(),
                })
                .unwrap();
            donor
                .append(&WalRecord::Migrate {
                    task: 1,
                    app: "grep".into(),
                    attempt: 0,
                    from: 0,
                    to: 1,
                })
                .unwrap();
            let _ = Wal::open_shard(&dir, 1, 1000).unwrap();
        }
        let (_, merged) = recover_dir(&dir, 2, 1000, &|_| None).unwrap();
        assert_eq!(merged.tasks.len(), 1);
        assert_eq!(merged.tasks[0].rec.state, RecState::Queued);
        assert_eq!(merged.tasks[0].home, 1, "tombstone hint wins");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_steal_is_not_double_counted() {
        // Both sides logged the migrate and the recipient went on to
        // complete the task: the merge must keep exactly one record, the
        // terminal one.
        let dir = tmpdir("steal-done");
        let migrate = WalRecord::Migrate {
            task: 1,
            app: "grep".into(),
            attempt: 0,
            from: 0,
            to: 1,
        };
        {
            let (mut donor, _) = Wal::open_shard(&dir, 0, 1000).unwrap();
            donor
                .append(&WalRecord::Submit {
                    task: 1,
                    app: "grep".into(),
                })
                .unwrap();
            donor.append(&migrate).unwrap();
            let (mut recipient, _) = Wal::open_shard(&dir, 1, 1000).unwrap();
            recipient.append(&migrate).unwrap();
            recipient
                .append(&WalRecord::Complete {
                    task: 1,
                    runtime: 2.0,
                })
                .unwrap();
        }
        let (_, merged) = recover_dir(&dir, 2, 1000, &|_| None).unwrap();
        assert_eq!(merged.tasks.len(), 1);
        assert_eq!(merged.tasks[0].rec.state, RecState::Completed);
        assert_eq!(merged.tasks[0].home, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrinking_the_shard_count_rehomes_everything_in_range() {
        let dir = tmpdir("shrink");
        {
            for shard in 0..3usize {
                let (mut wal, _) = Wal::open_shard(&dir, shard, 1000).unwrap();
                wal.append(&WalRecord::Submit {
                    task: shard as u64 + 1,
                    app: format!("app{shard}"),
                })
                .unwrap();
            }
        }
        let (wals, merged) = recover_dir(&dir, 1, 1000, &|_| Some(0)).unwrap();
        assert_eq!(wals.len(), 1);
        assert_eq!(merged.old_shards, 3);
        assert_eq!(merged.tasks.len(), 3);
        assert!(merged.tasks.iter().all(|t| t.home == 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
