//! Open- and closed-loop load generation against a live tracond.
//!
//! The generator drives one protocol connection from a single-threaded
//! event loop over a binary heap of due actions: submit an arrival, poll a
//! queued task, or report a completion. Arrivals come from the same
//! seeded Poisson process the simulator uses ([`tracon_dcsim::poisson_n`]),
//! mapped onto wall-clock time by `arrival_scale`. Because the daemon has
//! no task executor — clients *report* completions — the generator
//! synthesizes one per placed task from the daemon's own predicted
//! runtime plus seeded jitter, holding it for a scaled-down wall delay
//! first. Backpressure rejections are retried after the daemon's
//! `retry_after_ms` hint, so a finished run has admitted and completed
//! every request or it reports the loss.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tracon_dcsim::{poisson_n, WorkloadMix};
use tracon_stats::percentile;

use crate::client::Client;
use crate::json::Value;
use crate::proto::{ErrorKind, Reply, Request};

/// Whether arrivals follow a fixed schedule or track completions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Fixed Poisson arrival schedule, regardless of daemon progress.
    Open,
    /// At most `concurrency` requests in flight; a completion triggers
    /// the next submit.
    Closed,
}

/// Generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon submission address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Additional daemon addresses in failover order. On a `not_leader`
    /// refusal the generator reconnects to the redirect hint (or walks
    /// this list) and retries, up to a bounded number of failovers.
    pub addrs: Vec<String>,
    /// Total requests to push through.
    pub requests: usize,
    /// Poisson arrival rate, tasks per minute (open mode).
    pub lambda_per_min: f64,
    /// Application mix for sampled arrivals.
    pub mix: WorkloadMix,
    /// Open or closed loop.
    pub mode: LoadMode,
    /// In-flight bound for closed mode.
    pub concurrency: usize,
    /// Seed for arrivals and synthesized measurements.
    pub seed: u64,
    /// Wall seconds per virtual arrival second (open mode compresses the
    /// trace with values < 1).
    pub arrival_scale: f64,
    /// Wall milliseconds of synthetic "execution" per predicted virtual
    /// second before a completion is reported.
    pub task_ms_per_s: f64,
    /// Cap on the synthetic execution delay.
    pub max_task_ms: u64,
    /// Poll interval while a task sits in the daemon's queue.
    pub poll_ms: u64,
    /// Extra idle TCP connections held open (but silent) for the whole
    /// run — exercises the reactor's many-connections path.
    pub idle_conns: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            addrs: Vec::new(),
            requests: 100,
            lambda_per_min: 60.0,
            mix: WorkloadMix::Medium,
            mode: LoadMode::Open,
            concurrency: 8,
            seed: 0x10AD,
            arrival_scale: 0.01,
            task_ms_per_s: 5.0,
            max_task_ms: 60,
            poll_ms: 10,
            idle_conns: 0,
        }
    }
}

/// What a finished run observed.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests the generator set out to push.
    pub requests: usize,
    /// Requests admitted by the daemon.
    pub admitted: usize,
    /// Backpressure rejections absorbed (each was retried).
    pub backpressure_retries: usize,
    /// Completions acknowledged by the daemon.
    pub completed: usize,
    /// Admitted tasks never completed — must be zero for a clean run.
    pub lost: usize,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
    /// Completions per wall second.
    pub throughput_per_s: f64,
    /// Client-observed submit→completion sojourn percentiles (ms).
    pub sojourn_ms: SojournStats,
}

/// Latency percentiles in milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct SojournStats {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LoadgenReport {
    /// Render the human-readable summary the CLI prints.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} requests, {} admitted ({} backpressure retries), {} completed, {} lost\n\
             wall {:.2} s, throughput {:.1} tasks/s\n\
             sojourn ms: p50 {:.1}  p95 {:.1}  p99 {:.1}  max {:.1}\n",
            self.requests,
            self.admitted,
            self.backpressure_retries,
            self.completed,
            self.lost,
            self.wall_s,
            self.throughput_per_s,
            self.sojourn_ms.p50,
            self.sojourn_ms.p95,
            self.sojourn_ms.p99,
            self.sojourn_ms.max,
        )
    }
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    Submit(usize),
    Poll(u64),
    Complete(u64),
}

/// Upper bound on `not_leader` failovers one clean-path run absorbs
/// before giving up (a redirect loop means the cluster is misconfigured).
const MAX_FAILOVERS: usize = 8;

/// Reconnect after a `not_leader` refusal: the hinted address first, then
/// the primary and the failover list, retrying briefly — a promotion in
/// progress needs a moment before the new leader starts serving.
fn follow_leader(
    cfg: &LoadgenConfig,
    hint: Option<String>,
    failovers: &mut usize,
) -> Result<Client, String> {
    *failovers += 1;
    if *failovers > MAX_FAILOVERS {
        return Err(format!(
            "gave up after {MAX_FAILOVERS} not-leader failovers; no stable leader"
        ));
    }
    let mut targets: Vec<&str> = Vec::new();
    if let Some(addr) = hint.as_deref() {
        targets.push(addr);
    }
    targets.push(cfg.addr.as_str());
    targets.extend(cfg.addrs.iter().map(String::as_str));
    let deadline = Instant::now() + Duration::from_millis(5_000);
    loop {
        for addr in &targets {
            if let Ok(client) = Client::connect_with_timeout(addr, Duration::from_millis(500)) {
                return Ok(client);
            }
        }
        if Instant::now() > deadline {
            return Err(format!("no daemon reachable at any of {targets:?}"));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

struct InFlight {
    submitted_us: u64,
    predicted_runtime: f64,
}

/// Run the generator to completion. Errors are protocol or transport
/// failures; a clean return still requires checking `lost == 0`.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.requests == 0 {
        return Err("loadgen needs at least one request".to_string());
    }
    let mut client =
        Client::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    // Idle-connection ballast: connected, never written to, dropped at
    // the end of the run. The reactor must hold these without a thread
    // (or a ulimit's worth of stacks) each.
    let mut ballast = Vec::with_capacity(cfg.idle_conns);
    for i in 0..cfg.idle_conns {
        let conn = std::net::TcpStream::connect(&cfg.addr).map_err(|e| {
            format!(
                "idle conn {i}/{}: connect {}: {e}",
                cfg.idle_conns, cfg.addr
            )
        })?;
        ballast.push(conn);
    }
    // The daemon's status reply carries the profiled application list in
    // pair-table order, which is exactly the index space `poisson_n`
    // samples over.
    let apps = fetch_apps(&mut client)?;
    if apps.is_empty() {
        return Err("daemon reports no profiled applications".to_string());
    }
    let arrivals = poisson_n(cfg.lambda_per_min, cfg.requests, cfg.mix, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_CAFE);

    let mut heap: BinaryHeap<Reverse<(u64, u64, Action)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut push = |heap: &mut BinaryHeap<_>, due_us: u64, action: Action| {
        seq += 1;
        heap.push(Reverse((due_us, seq, action)));
    };
    let mut next_arrival;
    match cfg.mode {
        LoadMode::Open => {
            for (i, arrival) in arrivals.iter().enumerate() {
                let due = (arrival.time * cfg.arrival_scale * 1e6).max(0.0) as u64;
                push(&mut heap, due, Action::Submit(i));
            }
            next_arrival = arrivals.len();
        }
        LoadMode::Closed => {
            let burst = cfg.concurrency.max(1).min(cfg.requests);
            for i in 0..burst {
                push(&mut heap, i as u64 * 1_000, Action::Submit(i));
            }
            next_arrival = burst;
        }
    }

    let start = Instant::now();
    let mut in_flight: HashMap<u64, InFlight> = HashMap::new();
    let mut sojourns_ms: Vec<f64> = Vec::new();
    let mut admitted = 0usize;
    let mut completed = 0usize;
    let mut retries = 0usize;
    let mut failovers = 0usize;

    while let Some(Reverse((due_us, _, action))) = heap.pop() {
        let now_us = start.elapsed().as_micros() as u64;
        if due_us > now_us {
            std::thread::sleep(Duration::from_micros(due_us - now_us));
        }
        match action {
            Action::Submit(i) => {
                let app = &apps[arrivals[i].app_idx % apps.len()];
                let sent_us = start.elapsed().as_micros() as u64;
                let reply = client
                    .request(Request::Submit {
                        app: app.clone(),
                        demand: None,
                    })
                    .map_err(|e| format!("submit: {e}"))?;
                match reply {
                    Reply::Ok { result, .. } => {
                        admitted += 1;
                        let task = result
                            .get("task")
                            .and_then(Value::as_u64)
                            .ok_or("submit reply without task id")?;
                        let predicted = result
                            .get("predicted_runtime")
                            .and_then(Value::as_f64)
                            .unwrap_or(1.0);
                        in_flight.insert(
                            task,
                            InFlight {
                                submitted_us: sent_us,
                                predicted_runtime: predicted,
                            },
                        );
                        let now = start.elapsed().as_micros() as u64;
                        if result.get("state").and_then(Value::as_str) == Some("placed") {
                            push(
                                &mut heap,
                                now + exec_us(cfg, predicted),
                                Action::Complete(task),
                            );
                        } else {
                            push(&mut heap, now + cfg.poll_ms * 1_000, Action::Poll(task));
                        }
                    }
                    Reply::Error {
                        kind: ErrorKind::Backpressure,
                        retry_after_ms,
                        ..
                    } => {
                        retries += 1;
                        let delay_ms = retry_after_ms.unwrap_or(50).max(1);
                        let now = start.elapsed().as_micros() as u64;
                        push(&mut heap, now + delay_ms * 1_000, Action::Submit(i));
                    }
                    Reply::Error {
                        kind: ErrorKind::NotLeader,
                        leader,
                        ..
                    } => {
                        let hint = leader.and_then(|h| h.leader_addr);
                        client = follow_leader(cfg, hint, &mut failovers)?;
                        let now = start.elapsed().as_micros() as u64;
                        push(&mut heap, now, Action::Submit(i));
                    }
                    Reply::Error { kind, message, .. } => {
                        return Err(format!("submit rejected ({}): {message}", kind.as_str()))
                    }
                }
            }
            Action::Poll(task) => {
                let reply = client
                    .request(Request::TaskInfo { task })
                    .map_err(|e| format!("poll: {e}"))?;
                let result = match reply {
                    Reply::Ok { result, .. } => result,
                    Reply::Error {
                        kind: ErrorKind::NotLeader,
                        leader,
                        ..
                    } => {
                        let hint = leader.and_then(|h| h.leader_addr);
                        client = follow_leader(cfg, hint, &mut failovers)?;
                        let now = start.elapsed().as_micros() as u64;
                        push(&mut heap, now + cfg.poll_ms * 1_000, Action::Poll(task));
                        continue;
                    }
                    _ => return Err(format!("poll of task {task} failed")),
                };
                let now = start.elapsed().as_micros() as u64;
                match result.get("state").and_then(Value::as_str) {
                    Some("running") => {
                        let predicted = result
                            .get("predicted_runtime")
                            .and_then(Value::as_f64)
                            .or_else(|| in_flight.get(&task).map(|f| f.predicted_runtime))
                            .unwrap_or(1.0);
                        if let Some(entry) = in_flight.get_mut(&task) {
                            entry.predicted_runtime = predicted;
                        }
                        push(
                            &mut heap,
                            now + exec_us(cfg, predicted),
                            Action::Complete(task),
                        );
                    }
                    Some("queued") => {
                        push(&mut heap, now + cfg.poll_ms * 1_000, Action::Poll(task))
                    }
                    other => {
                        return Err(format!(
                            "task {task} in unexpected state {other:?} while polling"
                        ))
                    }
                }
            }
            Action::Complete(task) => {
                let entry = in_flight
                    .remove(&task)
                    .ok_or_else(|| format!("completion for unknown in-flight task {task}"))?;
                let runtime = entry.predicted_runtime.max(0.05) * rng.gen_range(0.85..1.15);
                let iops = rng.gen_range(40.0..240.0);
                let reply = client
                    .request(Request::Complete {
                        task,
                        runtime,
                        iops,
                    })
                    .map_err(|e| format!("complete: {e}"))?;
                match reply {
                    Reply::Ok { .. } => {
                        completed += 1;
                        let now = start.elapsed().as_micros() as u64;
                        sojourns_ms.push((now - entry.submitted_us) as f64 / 1_000.0);
                        if cfg.mode == LoadMode::Closed && next_arrival < cfg.requests {
                            push(&mut heap, now, Action::Submit(next_arrival));
                            next_arrival += 1;
                        }
                    }
                    Reply::Error {
                        kind: ErrorKind::NotLeader,
                        leader,
                        ..
                    } => {
                        let hint = leader.and_then(|h| h.leader_addr);
                        client = follow_leader(cfg, hint, &mut failovers)?;
                        in_flight.insert(task, entry);
                        let now = start.elapsed().as_micros() as u64;
                        push(&mut heap, now, Action::Complete(task));
                    }
                    Reply::Error { kind, message, .. } => {
                        return Err(format!(
                            "completion of task {task} rejected ({}): {message}",
                            kind.as_str()
                        ))
                    }
                }
            }
        }
    }

    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let sojourn_ms = if sojourns_ms.is_empty() {
        SojournStats {
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        }
    } else {
        SojournStats {
            p50: percentile(&sojourns_ms, 50.0),
            p95: percentile(&sojourns_ms, 95.0),
            p99: percentile(&sojourns_ms, 99.0),
            max: sojourns_ms.iter().copied().fold(0.0, f64::max),
        }
    };
    Ok(LoadgenReport {
        requests: cfg.requests,
        admitted,
        backpressure_retries: retries,
        completed,
        lost: admitted.saturating_sub(completed),
        wall_s,
        throughput_per_s: completed as f64 / wall_s,
        sojourn_ms,
    })
}

fn exec_us(cfg: &LoadgenConfig, predicted_runtime_s: f64) -> u64 {
    let ms = (predicted_runtime_s.max(0.0) * cfg.task_ms_per_s).min(cfg.max_task_ms as f64);
    (ms * 1_000.0) as u64
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// Knobs for the adversarial load mode (`tracon loadgen --chaos`).
///
/// Instead of maximizing clean throughput, chaos mode attacks the daemon
/// while submitting real work: it kills its own connections, abandons
/// partial frames, injects garbage and oversized lines, deliberately
/// orphans placed tasks so the lease machinery must reclaim them, and
/// tolerates the daemon itself dying mid-run by failing over across
/// `addrs` (a restarted daemon recovers from its WAL, possibly on a new
/// port). Throughout and at the end it checks the task-conservation
/// invariant from the daemon's own `status` counters: every admitted task
/// is exactly one of queued/delayed/running/completed/dead-lettered.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Daemon addresses in failover order; reconnects try each in turn.
    pub addrs: Vec<String>,
    /// Submits to attempt.
    pub requests: usize,
    /// Seed for app choice, measurements, and probe scheduling.
    pub seed: u64,
    /// Kill and re-open the connection every N submits (0 disables).
    pub kill_every: usize,
    /// Send a garbage (non-JSON) line every N submits (0 disables).
    pub garbage_every: usize,
    /// Abandon a partial frame and kill the connection every N submits.
    pub partial_every: usize,
    /// Send an oversized (>64 KiB) line every N submits (0 disables).
    pub oversized_every: usize,
    /// Orphan (never complete) every Nth placed task, leaving it to the
    /// daemon's lease expiry / dead-letter machinery (0 disables).
    pub orphan_every: usize,
    /// How long to wait at the end for the daemon to settle (all
    /// non-terminal tasks resolved by completion or dead-lettering).
    pub settle_timeout_ms: u64,
    /// Total time budget for one reconnect (covers a daemon restart).
    pub reconnect_timeout_ms: u64,
    /// Failpoint spec (`site[@scope]=action[*count][%permille];…`) armed
    /// on the daemon over the `fail` control verb before the storm and
    /// disarmed after; the report then pairs server-side injected faults
    /// with the faults the client observed. `None` leaves the registry
    /// alone.
    pub failpoints: Option<String>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            addrs: Vec::new(),
            requests: 200,
            seed: 0xC4A0,
            kill_every: 17,
            garbage_every: 13,
            partial_every: 29,
            oversized_every: 41,
            orphan_every: 7,
            settle_timeout_ms: 30_000,
            reconnect_timeout_ms: 15_000,
            failpoints: None,
        }
    }
}

/// What a chaos run observed. `conservation_violations == 0` and
/// `settled` are the pass criteria; everything else is color.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Submits acknowledged (admitted) by the daemon.
    pub acked_submits: usize,
    /// Submits whose reply was lost to a dead connection; the daemon may
    /// or may not have admitted them (they are never retried — the
    /// server-side invariant covers both outcomes).
    pub ambiguous_submits: usize,
    /// Backpressure rejections (not retried in chaos mode).
    pub backpressure: usize,
    /// Completions acknowledged.
    pub completions_acked: usize,
    /// Completions refused (task no longer running: lease expired or the
    /// daemon restarted and requeued it) — expected under chaos.
    pub completion_refusals: usize,
    /// Completion replies lost to a dead connection.
    pub ambiguous_completes: usize,
    /// Placed tasks deliberately never completed.
    pub orphaned: usize,
    /// Garbage lines sent and answered with a structured error.
    pub garbage_probes: usize,
    /// Oversized lines sent and answered with `frame-too-large`.
    pub oversized_probes: usize,
    /// Partial frames abandoned mid-write.
    pub partial_frames: usize,
    /// Connections killed by the generator.
    pub connection_kills: usize,
    /// Successful (re)connects, including the first.
    pub reconnects: usize,
    /// `not_leader` refusals absorbed by reconnecting to the hinted (or
    /// next listed) address — expected when a follower takes over.
    pub not_leader_redirects: usize,
    /// Probe replies that were not the expected structured error.
    pub unexpected_replies: usize,
    /// Conservation checks performed against `status`.
    pub conservation_checks: usize,
    /// Checks where admitted != completed+dead_lettered+queued+delayed+running.
    pub conservation_violations: usize,
    /// Whether all work reached a terminal state within the settle window.
    pub settled: bool,
    /// Final daemon counters (admitted, completed, dead-lettered).
    pub final_counts: (u64, u64, u64),
    /// Failpoint sites armed on the daemon at the start of the run.
    pub failpoints_armed: usize,
    /// Faults the daemon reported injecting (its `fail status` counter at
    /// the end of the run; 0 when no spec was armed or the armed node
    /// died before it could be asked).
    pub faults_injected: u64,
}

impl ChaosReport {
    /// Whether the run satisfied the invariant and fully settled.
    pub fn passed(&self) -> bool {
        self.conservation_violations == 0 && self.settled && self.conservation_checks > 0
    }

    /// Faults the *client* observed: replies lost to dead connections
    /// plus refused completions — the visible fallout of whatever the
    /// injected faults (and the generator's own sabotage) broke.
    pub fn faults_observed(&self) -> usize {
        self.ambiguous_submits + self.ambiguous_completes + self.completion_refusals
    }

    /// Render the human-readable summary the CLI prints.
    pub fn render(&self) -> String {
        let failpoint_line = if self.failpoints_armed > 0 {
            format!(
                "failpoints: {} sites armed, {} faults injected server-side, \
                 {} faults observed client-side\n",
                self.failpoints_armed,
                self.faults_injected,
                self.faults_observed(),
            )
        } else {
            String::new()
        };
        format!(
            "chaos: {} submits acked ({} ambiguous, {} backpressure), \
             {} completions ({} refused, {} ambiguous), {} orphaned\n\
             probes: {} garbage, {} oversized, {} partial frames, {} kills, {} reconnects, \
             {} not-leader redirects, {} unexpected replies\n\
             {failpoint_line}conservation: {}/{} checks ok, settled: {} \
             (admitted {}, completed {}, dead-lettered {})\n\
             verdict: {}\n",
            self.acked_submits,
            self.ambiguous_submits,
            self.backpressure,
            self.completions_acked,
            self.completion_refusals,
            self.ambiguous_completes,
            self.orphaned,
            self.garbage_probes,
            self.oversized_probes,
            self.partial_frames,
            self.connection_kills,
            self.reconnects,
            self.not_leader_redirects,
            self.unexpected_replies,
            self.conservation_checks - self.conservation_violations,
            self.conservation_checks,
            self.settled,
            self.final_counts.0,
            self.final_counts.1,
            self.final_counts.2,
            if self.passed() { "PASS" } else { "FAIL" },
        )
    }
}

/// One parsed `status` reply, server-side counters only.
struct WireStatus {
    queued: u64,
    delayed: u64,
    running: u64,
    completed: u64,
    dead_lettered: u64,
    admitted: u64,
}

impl WireStatus {
    fn conserved(&self) -> bool {
        self.admitted
            == self.completed + self.dead_lettered + self.queued + self.delayed + self.running
    }

    fn outstanding(&self) -> u64 {
        self.queued + self.delayed + self.running
    }
}

fn connect_failover(
    addrs: &[String],
    preferred: Option<&str>,
    timeout_ms: u64,
    reconnects: &mut usize,
) -> Result<Client, String> {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms.max(1));
    loop {
        // The believed leader first (a `not_leader` hint), then the
        // configured list in order.
        let preferred = preferred.into_iter();
        for addr in preferred.chain(addrs.iter().map(String::as_str)) {
            if let Ok(client) = Client::connect_with_timeout(addr, Duration::from_secs(2)) {
                *reconnects += 1;
                return Ok(client);
            }
        }
        if Instant::now() > deadline {
            return Err(format!("no daemon reachable at any of {addrs:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn wire_status(client: &mut Client) -> Result<WireStatus, String> {
    let reply = client
        .request(Request::Status)
        .map_err(|e| format!("status: {e}"))?;
    let Reply::Ok { result, .. } = reply else {
        return Err("status request failed".to_string());
    };
    let field = |key: &str| -> Result<u64, String> {
        result
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("status reply missing '{key}'"))
    };
    Ok(WireStatus {
        queued: field("queued")?,
        delayed: field("delayed")?,
        running: field("running")?,
        completed: field("completed")?,
        dead_lettered: field("dead_lettered")?,
        admitted: field("admitted")?,
    })
}

/// Run the chaos generator. A transport-level `Err` means the daemon
/// stayed unreachable past the failover budget; an `Ok` report must still
/// be checked with [`ChaosReport::passed`].
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    if cfg.addrs.is_empty() {
        return Err("chaos mode needs at least one daemon address".to_string());
    }
    if cfg.requests == 0 {
        return Err("chaos mode needs at least one request".to_string());
    }
    let mut report = ChaosReport::default();
    // The address a `not_leader` refusal pointed at; reconnects try it
    // before walking the configured list.
    let mut leader_hint: Option<String> = None;
    macro_rules! reconnect {
        () => {
            connect_failover(
                &cfg.addrs,
                leader_hint.as_deref(),
                cfg.reconnect_timeout_ms,
                &mut report.reconnects,
            )?
        };
    }
    let mut client = reconnect!();
    let apps = fetch_apps(&mut client)?;
    if apps.is_empty() {
        return Err("daemon reports no profiled applications".to_string());
    }
    // Arm server-side failpoints before the storm begins. A rejected spec
    // is a usage error, not chaos: fail loudly.
    if let Some(spec) = &cfg.failpoints {
        let reply = client
            .request(Request::Fail {
                action: "arm".to_string(),
                spec: Some(spec.clone()),
            })
            .map_err(|e| format!("failpoint arm: {e}"))?;
        match reply {
            Reply::Ok { result, .. } => {
                report.failpoints_armed =
                    result.get("armed").and_then(Value::as_u64).unwrap_or(0) as usize;
            }
            Reply::Error { message, .. } => {
                return Err(format!("failpoint arm rejected: {message}"));
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Placed tasks awaiting a synthesized completion: (task, predicted_runtime).
    let mut pending: Vec<(u64, f64)> = Vec::new();
    let mut placed_seen = 0usize;

    let every = |n: usize, i: usize| n > 0 && i % n == n - 1;
    for i in 0..cfg.requests {
        if every(cfg.kill_every, i) {
            report.connection_kills += 1;
            client = reconnect!();
        }
        if every(cfg.partial_every, i) {
            // Leave a torn frame on the wire, then vanish.
            let _ = client.send_raw_bytes(b"{\"v\":1,\"op\":\"subm");
            report.partial_frames += 1;
            report.connection_kills += 1;
            client = reconnect!();
        }
        if every(cfg.garbage_every, i) {
            match client.raw_roundtrip("\u{1}garbage ][ not json \u{7f}") {
                Ok(line) => {
                    report.garbage_probes += 1;
                    if !matches!(crate::proto::decode_reply(&line), Ok(Reply::Error { .. })) {
                        report.unexpected_replies += 1;
                    }
                }
                Err(_) => {
                    client = reconnect!();
                }
            }
        }
        if every(cfg.oversized_every, i) {
            let big = "x".repeat(80 * 1024);
            match client.raw_roundtrip(&big) {
                Ok(line) => {
                    report.oversized_probes += 1;
                    let ok = matches!(
                        crate::proto::decode_reply(&line),
                        Ok(Reply::Error {
                            kind: ErrorKind::FrameTooLarge,
                            ..
                        })
                    );
                    if !ok {
                        report.unexpected_replies += 1;
                    }
                }
                Err(_) => {
                    client = reconnect!();
                }
            }
        }

        let app = apps[rng.gen_range(0..apps.len())].clone();
        match client.request(Request::Submit { app, demand: None }) {
            Ok(Reply::Ok { result, .. }) => {
                report.acked_submits += 1;
                if result.get("state").and_then(Value::as_str) == Some("placed") {
                    if let Some(task) = result.get("task").and_then(Value::as_u64) {
                        placed_seen += 1;
                        if every(cfg.orphan_every, placed_seen - 1) {
                            // Never complete this one: the lease must
                            // reclaim it (requeue, then dead-letter).
                            report.orphaned += 1;
                        } else {
                            let predicted = result
                                .get("predicted_runtime")
                                .and_then(Value::as_f64)
                                .unwrap_or(1.0);
                            pending.push((task, predicted));
                        }
                    }
                }
            }
            Ok(Reply::Error {
                kind: ErrorKind::Backpressure,
                ..
            }) => report.backpressure += 1,
            Ok(Reply::Error {
                kind: ErrorKind::Draining,
                ..
            }) => break,
            Ok(Reply::Error {
                kind: ErrorKind::NotLeader,
                leader,
                ..
            }) => {
                // This node is a follower or has been fenced by a
                // promotion. Chase the hint; the refused submit is not
                // retried (it was unambiguously not admitted).
                report.not_leader_redirects += 1;
                if let Some(addr) = leader.and_then(|h| h.leader_addr) {
                    leader_hint = Some(addr);
                }
                client = reconnect!();
            }
            Ok(Reply::Error { .. }) => report.unexpected_replies += 1,
            Err(_) => {
                // The reply is gone; the admission may have landed. Never
                // retried — the server-side invariant covers both fates.
                report.ambiguous_submits += 1;
                client = reconnect!();
            }
        }

        // Keep completions flowing so the cluster does not clog: report
        // all but the freshest couple, which stay in flight as churn.
        while pending.len() > 2 {
            let (task, predicted) = pending.remove(0);
            let runtime = predicted.max(0.05) * rng.gen_range(0.85..1.15);
            let iops = rng.gen_range(40.0..240.0);
            let complete = Request::Complete {
                task,
                runtime,
                iops,
            };
            match client.request(complete.clone()) {
                Ok(Reply::Ok { .. }) => report.completions_acked += 1,
                Ok(Reply::Error {
                    kind: ErrorKind::NotLeader,
                    leader,
                    ..
                }) => {
                    // Redirect and retry the completion exactly once on
                    // the believed leader; a second refusal is terminal
                    // (a promoted leader requeued the task, so the old
                    // lease is gone — that is the expected outcome).
                    report.not_leader_redirects += 1;
                    if let Some(addr) = leader.and_then(|h| h.leader_addr) {
                        leader_hint = Some(addr);
                    }
                    client = reconnect!();
                    match client.request(complete) {
                        Ok(Reply::Ok { .. }) => report.completions_acked += 1,
                        Ok(Reply::Error { .. }) => report.completion_refusals += 1,
                        Err(_) => {
                            report.ambiguous_completes += 1;
                            client = reconnect!();
                        }
                    }
                }
                Ok(Reply::Error { .. }) => report.completion_refusals += 1,
                Err(_) => {
                    report.ambiguous_completes += 1;
                    client = reconnect!();
                }
            }
        }

        if i % 10 == 9 {
            match wire_status(&mut client) {
                Ok(st) => {
                    report.conservation_checks += 1;
                    if !st.conserved() {
                        report.conservation_violations += 1;
                    }
                }
                Err(_) => {
                    client = reconnect!();
                }
            }
        }
    }

    // Flush remaining completions best-effort.
    for (task, predicted) in pending.drain(..) {
        let runtime = predicted.max(0.05) * rng.gen_range(0.85..1.15);
        let iops = rng.gen_range(40.0..240.0);
        let complete = Request::Complete {
            task,
            runtime,
            iops,
        };
        match client.request(complete.clone()) {
            Ok(Reply::Ok { .. }) => report.completions_acked += 1,
            Ok(Reply::Error {
                kind: ErrorKind::NotLeader,
                leader,
                ..
            }) => {
                report.not_leader_redirects += 1;
                if let Some(addr) = leader.and_then(|h| h.leader_addr) {
                    leader_hint = Some(addr);
                }
                client = reconnect!();
                match client.request(complete) {
                    Ok(Reply::Ok { .. }) => report.completions_acked += 1,
                    Ok(Reply::Error { .. }) => report.completion_refusals += 1,
                    Err(_) => {
                        report.ambiguous_completes += 1;
                        client = reconnect!();
                    }
                }
            }
            Ok(Reply::Error { .. }) => report.completion_refusals += 1,
            Err(_) => {
                report.ambiguous_completes += 1;
                client = reconnect!();
            }
        }
    }

    // Settle: wait for the daemon to resolve every non-terminal task —
    // orphans and requeues drain through lease expiry into completion or
    // the dead-letter queue. Each poll is also a conservation check.
    let deadline = Instant::now() + Duration::from_millis(cfg.settle_timeout_ms.max(1));
    loop {
        match wire_status(&mut client) {
            Ok(st) => {
                report.conservation_checks += 1;
                if !st.conserved() {
                    report.conservation_violations += 1;
                }
                report.final_counts = (st.admitted, st.completed, st.dead_lettered);
                if st.outstanding() == 0 {
                    report.settled = true;
                    break;
                }
            }
            Err(_) => {
                client = reconnect!();
            }
        }
        if Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    // Collect the server-side injection count, then leave the registry
    // clean. Best effort: the armed node may have died mid-run (that is
    // the point of some torture setups), and the survivor's count is
    // still the honest answer for *it*.
    if cfg.failpoints.is_some() {
        if let Ok(Reply::Ok { result, .. }) = client.request(Request::Fail {
            action: "status".to_string(),
            spec: None,
        }) {
            report.faults_injected = result.get("injected").and_then(Value::as_u64).unwrap_or(0);
        }
        let _ = client.request(Request::Fail {
            action: "disarm".to_string(),
            spec: None,
        });
    }
    Ok(report)
}

fn fetch_apps(client: &mut Client) -> Result<Vec<String>, String> {
    let reply = client
        .request(Request::Status)
        .map_err(|e| format!("status: {e}"))?;
    let Reply::Ok { result, .. } = reply else {
        return Err("status request failed".to_string());
    };
    let apps = result
        .get("apps")
        .and_then(Value::as_arr)
        .ok_or("status reply without apps list")?;
    Ok(apps
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect())
}
