//! # tracon-serve
//!
//! `tracond`: TRACON's schedulers as a long-running network service
//! instead of a simulation pass. Where `tracon-dcsim` drives MIOS/MIBS on
//! virtual time, this crate maps them onto wall-clock traffic: clients
//! submit tasks over a newline-delimited JSON protocol on plain TCP,
//! admission is bounded with explicit backpressure, placements come from
//! the same [`tracon_core`] scheduler and scoring-policy machinery the
//! simulator uses, and client-reported completions feed the live
//! [`tracon_dcsim::AdaptiveObserver`] so drift triggers in-place
//! predictor rebuilds against real traffic.
//!
//! * [`json`] — a std-only JSON value/parser/serializer for the wire
//!   protocol (total: malformed input is an error value, never a panic).
//! * [`proto`] — versioned request/reply types and their codec.
//! * [`metrics`] — atomic counters and the Prometheus text exposition
//!   served on `GET /metrics`.
//! * [`state`] — the mutex-guarded service core: bounded admission
//!   queue, per-arrival (MIOS) and batch-window (MIBS/MIX) dispatch,
//!   completion-driven model adaptation.
//! * [`daemon`] — the two listeners (protocol + HTTP health/metrics),
//!   connection threads with read/write timeouts, and the dispatch
//!   ticker; every thread is joined on shutdown.
//! * [`client`] — a small blocking protocol client.
//! * [`loadgen`] — open-/closed-loop Poisson load generation with
//!   throughput and latency-percentile reporting, plus a chaos mode that
//!   attacks the daemon (killed connections, garbage bytes, partial
//!   frames) while asserting task conservation.
//! * [`wal`] — the append-only, checksummed write-ahead log and snapshot
//!   compaction behind crash recovery, plus the background scrub that
//!   re-verifies sealed regions against bit rot.
//! * [`repl`] — leader/follower replication: WAL frame shipping over the
//!   protocol, lease-based promotion with durable epoch fencing,
//!   automatic fenced-node rejoin, and a deterministic in-process
//!   failover harness.
//! * [`failpoint`] — deterministic fault injection: named sites in every
//!   fallible I/O path, armable over the wire or `TRACON_FAILPOINTS`,
//!   zero-cost while disarmed.

#![warn(missing_docs)]
// The daemon request path must never panic on client input or I/O: a
// panicking connection thread poisons the service mutex for everyone.
// Unit tests (cfg(test)) keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod daemon;
pub mod failpoint;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod proto;
mod reactor;
pub mod repl;
pub mod shard;
pub mod state;
pub mod wal;

pub use client::Client;
pub use daemon::{start, DaemonHandle, NetConfig};
pub use loadgen::{run_chaos, ChaosConfig, ChaosReport, LoadMode, LoadgenConfig, LoadgenReport};
pub use metrics::Metrics;
pub use proto::{
    decode_reply, decode_request, encode_reply, encode_request, Envelope, ErrorKind, Reply,
    Request, PROTOCOL_VERSION,
};
pub use repl::{FollowerCore, PullChunk, ReplState, Role, ShipLog};
pub use shard::{recover_dir, route_app, route_key, shard_machines, stride_shard, MergedRecovery};
pub use state::{Refusal, SchedKind, ServeConfig, Service, StatusSnapshot, StolenTask, TaskPhase};
pub use wal::{RecState, RecoveredTask, Recovery, Wal, WalRecord};
