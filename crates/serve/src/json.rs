//! Minimal JSON value model, parser, and serializer for the tracond wire
//! protocol.
//!
//! The daemon exchanges one JSON document per line over plain TCP, so the
//! codec must be dependency-free (std only), deterministic, and tolerant of
//! hostile input: a malformed line must produce a parse error, never a
//! panic. Objects preserve insertion order so encoded replies are stable
//! byte-for-byte for a given logical message, which the protocol roundtrip
//! tests rely on.

use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64`, which is lossless for
/// every integer the protocol carries (task ids stay far below 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, rejecting fractions.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Build an object value from key/value pairs, preserving order.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shorthand for `Value::Str`.
pub fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

/// Shorthand for `Value::Num`.
pub fn n(num: f64) -> Value {
    Value::Num(num)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(x) => write_num(f, *x),
            Value::Str(text) => write_escaped(f, text),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        // JSON has no Inf/NaN; encode as null so a reply never becomes
        // unparseable because a model produced a degenerate number.
        return f.write_str("null");
    }
    if x.fract() == 0.0 && x.abs() < 1e15 {
        write!(f, "{}", x as i64)
    } else {
        write!(f, "{x}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, text: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in text.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Why a document failed to parse; rendered into protocol error replies.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset where parsing gave up.
    pub at: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

/// Parse a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 48;

fn err(at: usize, reason: &str) -> ParseError {
    ParseError {
        at,
        reason: reason.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs: Vec<(String, Value)> = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(err(*pos, "expected string key in object"));
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid keyword"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    let parsed: f64 = text.parse().map_err(|_| err(start, "invalid number"))?;
    if !parsed.is_finite() {
        return Err(err(start, "number out of range"));
    }
    Ok(Value::Num(parsed))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are replaced rather than rejected; the
                        // protocol never emits them, so fidelity there is moot.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are guaranteed valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| err(*pos, "truncated string"))?;
                if (c as u32) < 0x20 {
                    return Err(err(*pos, "raw control character in string"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_simple_object() {
        let v = obj(vec![
            ("v", n(1.0)),
            ("id", s("c0-1")),
            ("ok", Value::Bool(true)),
            ("items", Value::Arr(vec![n(1.0), n(2.5), Value::Null])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(n(42.0).to_string(), "42");
        assert_eq!(n(0.5).to_string(), "0.5");
        assert_eq!(n(-3.0).to_string(), "-3");
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = s("a\"b\\c\nd\u{1}");
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01x",
            "{} trailing",
            "nul",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "expected parse failure for {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let mut deep = String::new();
        for _ in 0..200 {
            deep.push('[');
        }
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(n(f64::NAN).to_string(), "null");
        assert_eq!(n(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn object_get_and_accessors() {
        let v = parse("{\"a\": 3, \"b\": \"x\", \"c\": [true]}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Value::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(n(1.5).as_u64(), None);
        assert_eq!(n(-1.0).as_u64(), None);
    }
}
