//! Crash recovery for tracond: an append-only, fsync'd write-ahead log
//! with periodic snapshot compaction.
//!
//! Every admission-state transition (submit, lease, requeue, dead-letter,
//! complete) is appended as one length-prefixed, CRC32-checksummed frame
//! *before* the daemon replies to the client, and the file is synced per
//! append — a `kill -9` can lose at most a record the client was never
//! told about. On restart, [`Wal::open`] replays `snapshot.json` plus the
//! log tail and hands the service a [`Recovery`] from which it rebuilds
//! its admission queue and in-flight set; a torn tail (partial frame,
//! bad checksum) ends the replay and is truncated away rather than
//! aborting recovery.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload: one JSON object]
//! ```
//!
//! Records (see DESIGN.md §9 for the full format):
//!
//! ```text
//! {"op":"submit","task":7,"app":"grep"}
//! {"op":"lease","task":7,"attempt":0}
//! {"op":"requeue","task":7,"attempt":1}
//! {"op":"dead","task":7,"attempts":5}
//! {"op":"complete","task":7,"runtime":12.5}
//! ```
//!
//! Every `snapshot_every` records the service serializes its task table
//! into `snapshot.json` (atomic tmp + rename) and the log is truncated,
//! bounding both replay time and disk use.

use crate::json::{self, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one record's payload; anything larger is corruption.
const MAX_RECORD_BYTES: u32 = 1 << 20;
const SNAPSHOT_FILE: &str = "snapshot.json";
const LOG_FILE: &str = "wal.log";

/// CRC-32 (IEEE 802.3, reflected) — dependency-free, bitwise.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One logged admission-state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A task was admitted.
    Submit {
        /// Task id.
        task: u64,
        /// Application name.
        app: String,
    },
    /// A task was dispatched and leased to an executor.
    Lease {
        /// Task id.
        task: u64,
        /// Which execution this is (failed attempts so far).
        attempt: u32,
    },
    /// A lease expired and the task re-entered the (delayed) queue.
    Requeue {
        /// Task id.
        task: u64,
        /// Failed attempts after the expiry.
        attempt: u32,
    },
    /// A task exhausted its attempts and moved to the dead-letter queue.
    DeadLetter {
        /// Task id.
        task: u64,
        /// Total failed attempts.
        attempts: u32,
    },
    /// A task completed.
    Complete {
        /// Task id.
        task: u64,
        /// Realized runtime, seconds.
        runtime: f64,
    },
}

impl WalRecord {
    fn encode(&self) -> Value {
        match self {
            WalRecord::Submit { task, app } => json::obj(vec![
                ("op", json::s("submit")),
                ("task", json::n(*task as f64)),
                ("app", json::s(app.clone())),
            ]),
            WalRecord::Lease { task, attempt } => json::obj(vec![
                ("op", json::s("lease")),
                ("task", json::n(*task as f64)),
                ("attempt", json::n(f64::from(*attempt))),
            ]),
            WalRecord::Requeue { task, attempt } => json::obj(vec![
                ("op", json::s("requeue")),
                ("task", json::n(*task as f64)),
                ("attempt", json::n(f64::from(*attempt))),
            ]),
            WalRecord::DeadLetter { task, attempts } => json::obj(vec![
                ("op", json::s("dead")),
                ("task", json::n(*task as f64)),
                ("attempts", json::n(f64::from(*attempts))),
            ]),
            WalRecord::Complete { task, runtime } => json::obj(vec![
                ("op", json::s("complete")),
                ("task", json::n(*task as f64)),
                ("runtime", json::n(*runtime)),
            ]),
        }
    }

    fn decode(v: &Value) -> Option<WalRecord> {
        let task = v.get("task")?.as_u64()?;
        match v.get("op")?.as_str()? {
            "submit" => Some(WalRecord::Submit {
                task,
                app: v.get("app")?.as_str()?.to_string(),
            }),
            "lease" => Some(WalRecord::Lease {
                task,
                attempt: v.get("attempt")?.as_u64()? as u32,
            }),
            "requeue" => Some(WalRecord::Requeue {
                task,
                attempt: v.get("attempt")?.as_u64()? as u32,
            }),
            "dead" => Some(WalRecord::DeadLetter {
                task,
                attempts: v.get("attempts")?.as_u64()? as u32,
            }),
            "complete" => Some(WalRecord::Complete {
                task,
                runtime: v.get("runtime")?.as_f64()?,
            }),
            _ => None,
        }
    }
}

/// The durable state of one task, as reconstructed by replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecState {
    /// Admitted, waiting for dispatch.
    Queued,
    /// Dispatched under a lease when the daemon stopped — the executor's
    /// connection died with the daemon, so recovery requeues it.
    Leased,
    /// Completed.
    Completed,
    /// Dead-lettered.
    DeadLettered,
}

/// One task's recovered record.
#[derive(Debug, Clone)]
pub struct RecoveredTask {
    /// Task id.
    pub task: u64,
    /// Application name.
    pub app: String,
    /// Failed attempts so far.
    pub attempts: u32,
    /// Durable state.
    pub state: RecState,
    /// Realized runtime for completed tasks (0 otherwise).
    pub runtime: f64,
}

/// What [`Wal::open`] reconstructed.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Every known task, in original submit order.
    pub tasks: Vec<RecoveredTask>,
    /// First unused task id (ids stay unique across restarts).
    pub next_task_id: u64,
    /// Log records replayed (snapshot entries not included).
    pub replayed_records: u64,
    /// Bytes dropped from a torn tail, if any.
    pub truncated_bytes: u64,
    /// Checksummed-but-undecodable records skipped (version skew).
    pub skipped_records: u64,
}

/// The open write-ahead log.
pub struct Wal {
    file: File,
    dir: PathBuf,
    records_since_snapshot: u64,
    snapshot_every: u64,
}

fn read_snapshot(dir: &Path, recovery: &mut Recovery) -> io::Result<()> {
    let path = dir.join(SNAPSHOT_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let v = json::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {e}")))?;
    recovery.next_task_id = v.get("next_task_id").and_then(Value::as_u64).unwrap_or(0);
    if let Some(tasks) = v.get("tasks").and_then(Value::as_arr) {
        for t in tasks {
            let (Some(task), Some(app)) = (
                t.get("task").and_then(Value::as_u64),
                t.get("app").and_then(Value::as_str),
            ) else {
                recovery.skipped_records += 1;
                continue;
            };
            let state = match t.get("state").and_then(Value::as_str) {
                Some("queued") => RecState::Queued,
                Some("leased") => RecState::Leased,
                Some("completed") => RecState::Completed,
                Some("dead") => RecState::DeadLettered,
                _ => {
                    recovery.skipped_records += 1;
                    continue;
                }
            };
            recovery.tasks.push(RecoveredTask {
                task,
                app: app.to_string(),
                attempts: t.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32,
                state,
                runtime: t.get("runtime").and_then(Value::as_f64).unwrap_or(0.0),
            });
        }
    }
    Ok(())
}

fn apply(recovery: &mut Recovery, rec: WalRecord) {
    let find = |tasks: &mut Vec<RecoveredTask>, id: u64| -> Option<usize> {
        tasks.iter().position(|t| t.task == id)
    };
    match rec {
        WalRecord::Submit { task, app } => {
            if find(&mut recovery.tasks, task).is_none() {
                recovery.tasks.push(RecoveredTask {
                    task,
                    app,
                    attempts: 0,
                    state: RecState::Queued,
                    runtime: 0.0,
                });
            }
        }
        WalRecord::Lease { task, attempt } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::Leased;
                recovery.tasks[i].attempts = attempt;
            }
        }
        WalRecord::Requeue { task, attempt } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::Queued;
                recovery.tasks[i].attempts = attempt;
            }
        }
        WalRecord::DeadLetter { task, attempts } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::DeadLettered;
                recovery.tasks[i].attempts = attempts;
            }
        }
        WalRecord::Complete { task, runtime } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::Completed;
                recovery.tasks[i].runtime = runtime;
            }
        }
    }
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, replaying snapshot +
    /// log into a [`Recovery`]. A torn or corrupt tail ends the replay
    /// and is truncated so the next append starts on a clean frame
    /// boundary.
    pub fn open(dir: &Path, snapshot_every: u64) -> io::Result<(Wal, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let mut recovery = Recovery::default();
        read_snapshot(dir, &mut recovery)?;

        let log_path = dir.join(LOG_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&log_path)?;
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        let mut off = 0usize;
        let valid_end = loop {
            if off + 8 > buf.len() {
                break off;
            }
            let len_bytes: [u8; 4] = match buf[off..off + 4].try_into() {
                Ok(b) => b,
                Err(_) => break off,
            };
            let crc_bytes: [u8; 4] = match buf[off + 4..off + 8].try_into() {
                Ok(b) => b,
                Err(_) => break off,
            };
            let len = u32::from_le_bytes(len_bytes);
            if len == 0 || len > MAX_RECORD_BYTES || off + 8 + len as usize > buf.len() {
                break off;
            }
            let payload = &buf[off + 8..off + 8 + len as usize];
            if crc32(payload) != u32::from_le_bytes(crc_bytes) {
                break off;
            }
            match std::str::from_utf8(payload)
                .ok()
                .and_then(|t| json::parse(t).ok())
                .as_ref()
                .and_then(WalRecord::decode)
            {
                Some(rec) => {
                    apply(&mut recovery, rec);
                    recovery.replayed_records += 1;
                }
                None => recovery.skipped_records += 1,
            }
            off += 8 + len as usize;
        };
        if valid_end < buf.len() {
            recovery.truncated_bytes = (buf.len() - valid_end) as u64;
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
        }
        let max_id = recovery.tasks.iter().map(|t| t.task + 1).max().unwrap_or(0);
        recovery.next_task_id = recovery.next_task_id.max(max_id);
        Ok((
            Wal {
                file,
                dir: dir.to_path_buf(),
                records_since_snapshot: recovery.replayed_records,
                snapshot_every: snapshot_every.max(1),
            },
            recovery,
        ))
    }

    /// Appends one record and syncs it to disk (write-ahead: call before
    /// acknowledging the transition to the client).
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let payload = rec.encode().to_string().into_bytes();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.records_since_snapshot += 1;
        Ok(())
    }

    /// Whether enough records accumulated that the owner should snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.records_since_snapshot >= self.snapshot_every
    }

    /// Writes a full-state snapshot (atomically: tmp + rename) and
    /// truncates the log. `tasks` must be in submit order.
    pub fn snapshot(&mut self, tasks: &[RecoveredTask], next_task_id: u64) -> io::Result<()> {
        let entries: Vec<Value> = tasks
            .iter()
            .map(|t| {
                json::obj(vec![
                    ("task", json::n(t.task as f64)),
                    ("app", json::s(t.app.clone())),
                    ("attempts", json::n(f64::from(t.attempts))),
                    (
                        "state",
                        json::s(match t.state {
                            RecState::Queued => "queued",
                            RecState::Leased => "leased",
                            RecState::Completed => "completed",
                            RecState::DeadLettered => "dead",
                        }),
                    ),
                    ("runtime", json::n(t.runtime)),
                ])
            })
            .collect();
        let doc = json::obj(vec![
            ("v", json::n(1.0)),
            ("next_task_id", json::n(next_task_id as f64)),
            ("tasks", Value::Arr(entries)),
        ]);
        let tmp = self.dir.join("snapshot.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(doc.to_string().as_bytes())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // Make the rename durable (best effort — not all platforms allow
        // syncing a directory handle).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracon-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_replays_all_records() {
        let dir = tmpdir("roundtrip");
        {
            let (mut wal, rec) = Wal::open(&dir, 1000).unwrap();
            assert_eq!(rec.tasks.len(), 0);
            wal.append(&WalRecord::Submit {
                task: 0,
                app: "grep".into(),
            })
            .unwrap();
            wal.append(&WalRecord::Submit {
                task: 1,
                app: "sort".into(),
            })
            .unwrap();
            wal.append(&WalRecord::Lease {
                task: 0,
                attempt: 0,
            })
            .unwrap();
            wal.append(&WalRecord::Complete {
                task: 0,
                runtime: 3.5,
            })
            .unwrap();
            wal.append(&WalRecord::Requeue {
                task: 1,
                attempt: 1,
            })
            .unwrap();
        }
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 5);
        assert_eq!(rec.next_task_id, 2);
        assert_eq!(rec.tasks.len(), 2);
        assert_eq!(rec.tasks[0].state, RecState::Completed);
        assert_eq!(rec.tasks[0].runtime, 3.5);
        assert_eq!(rec.tasks[1].state, RecState::Queued);
        assert_eq!(rec.tasks[1].attempts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
            wal.append(&WalRecord::Submit {
                task: 0,
                app: "grep".into(),
            })
            .unwrap();
        }
        // Append garbage simulating a frame cut mid-write.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(LOG_FILE))
                .unwrap();
            f.write_all(&[0x20, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
        }
        let (mut wal, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 1);
        assert_eq!(rec.tasks.len(), 1);
        assert!(rec.truncated_bytes > 0);
        // The log is writable again on a clean boundary.
        wal.append(&WalRecord::Lease {
            task: 0,
            attempt: 0,
        })
        .unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 2);
        assert_eq!(rec.tasks[0].state, RecState::Leased);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_frame() {
        let dir = tmpdir("crc");
        {
            let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
            for i in 0..3u64 {
                wal.append(&WalRecord::Submit {
                    task: i,
                    app: "a".into(),
                })
                .unwrap();
            }
        }
        // Flip one payload byte of the *second* frame.
        {
            let mut bytes = std::fs::read(dir.join(LOG_FILE)).unwrap();
            let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            let second_payload = 8 + first_len + 8;
            bytes[second_payload] ^= 0xFF;
            std::fs::write(dir.join(LOG_FILE), &bytes).unwrap();
        }
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 1, "replay stops at the bad frame");
        assert!(rec.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_and_survives_restart() {
        let dir = tmpdir("snap");
        {
            let (mut wal, _) = Wal::open(&dir, 2).unwrap();
            wal.append(&WalRecord::Submit {
                task: 0,
                app: "grep".into(),
            })
            .unwrap();
            wal.append(&WalRecord::Submit {
                task: 1,
                app: "sort".into(),
            })
            .unwrap();
            assert!(wal.snapshot_due());
            let tasks = vec![
                RecoveredTask {
                    task: 0,
                    app: "grep".into(),
                    attempts: 0,
                    state: RecState::Queued,
                    runtime: 0.0,
                },
                RecoveredTask {
                    task: 1,
                    app: "sort".into(),
                    attempts: 2,
                    state: RecState::DeadLettered,
                    runtime: 0.0,
                },
            ];
            wal.snapshot(&tasks, 2).unwrap();
            assert!(!wal.snapshot_due());
            // Post-snapshot records land in the truncated log.
            wal.append(&WalRecord::Lease {
                task: 0,
                attempt: 0,
            })
            .unwrap();
        }
        let (_, rec) = Wal::open(&dir, 2).unwrap();
        assert_eq!(rec.next_task_id, 2);
        assert_eq!(rec.replayed_records, 1, "only the post-snapshot record");
        assert_eq!(rec.tasks.len(), 2);
        assert_eq!(rec.tasks[0].state, RecState::Leased);
        assert_eq!(rec.tasks[1].state, RecState::DeadLettered);
        assert_eq!(rec.tasks[1].attempts, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let dir = tmpdir("empty");
        let (_, rec) = Wal::open(&dir, 10).unwrap();
        assert_eq!(rec.tasks.len(), 0);
        assert_eq!(rec.next_task_id, 0);
        assert_eq!(rec.replayed_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
