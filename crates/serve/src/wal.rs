//! Crash recovery for tracond: an append-only, fsync'd write-ahead log
//! with periodic snapshot compaction.
//!
//! Every admission-state transition (submit, lease, requeue, dead-letter,
//! complete) is appended as one length-prefixed, CRC32-checksummed frame
//! *before* the daemon replies to the client, and the file is synced per
//! append — a `kill -9` can lose at most a record the client was never
//! told about. On restart, [`Wal::open`] replays `snapshot.json` plus the
//! log tail and hands the service a [`Recovery`] from which it rebuilds
//! its admission queue and in-flight set; a torn tail (partial frame,
//! bad checksum) ends the replay and is truncated away rather than
//! aborting recovery.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload: one JSON object]
//! ```
//!
//! Records (see DESIGN.md §9 for the full format):
//!
//! ```text
//! {"op":"submit","task":7,"app":"grep"}
//! {"op":"lease","task":7,"attempt":0}
//! {"op":"requeue","task":7,"attempt":1}
//! {"op":"dead","task":7,"attempts":5}
//! {"op":"complete","task":7,"runtime":12.5}
//! {"op":"migrate","task":7,"app":"grep","attempt":1,"from":2,"to":0}
//! ```
//!
//! Every `snapshot_every` records the service serializes its task table
//! into the shard's snapshot file (atomic tmp + rename) and the log is
//! truncated, bounding both replay time and disk use.
//!
//! The directory holds one log + snapshot pair **per scheduler shard**
//! (`wal.0`/`snapshot.0.json` … `wal.N-1`/`snapshot.N-1.json`), each with
//! a single writer. A `migrate` record appears in *both* sides of a
//! work-steal: the donor's copy turns its task into a tombstone pointing
//! at the recipient, the recipient's copy adopts the task — whichever
//! copy survives a crash, the task is recovered exactly once by the
//! merged replay in [`crate::shard`].

use crate::failpoint;
use crate::json::{self, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one record's payload; anything larger is corruption.
const MAX_RECORD_BYTES: u32 = 1 << 20;
/// Pre-sharding file names, adopted as shard 0 on first open.
const LEGACY_SNAPSHOT_FILE: &str = "snapshot.json";
const LEGACY_LOG_FILE: &str = "wal.log";

/// Log file name for one shard (`wal.3`).
pub fn shard_log_name(shard: usize) -> String {
    format!("wal.{shard}")
}

/// Snapshot file name for one shard (`snapshot.3.json`).
pub fn shard_snapshot_name(shard: usize) -> String {
    format!("snapshot.{shard}.json")
}

/// How many shards left durable state in `dir`: one past the highest
/// shard index with a log or snapshot file (legacy `wal.log` counts as
/// shard 0). Returns 0 for an empty or absent directory.
pub fn existing_shard_count(dir: &Path) -> usize {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return 0,
    };
    let mut count = 0usize;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let idx = if name == LEGACY_LOG_FILE || name == LEGACY_SNAPSHOT_FILE {
            Some(0)
        } else if let Some(n) = name.strip_prefix("wal.") {
            n.parse::<usize>().ok()
        } else if let Some(n) = name
            .strip_prefix("snapshot.")
            .and_then(|n| n.strip_suffix(".json"))
        {
            n.parse::<usize>().ok()
        } else {
            None
        };
        if let Some(i) = idx {
            count = count.max(i + 1);
        }
    }
    count
}

/// Deletes one shard's log and snapshot files (used after a recovery
/// that shrank the shard count re-homed their tasks). Missing files are
/// fine; a crash between merge and removal just re-merges next boot.
pub fn remove_shard_files(dir: &Path, shard: usize) -> io::Result<()> {
    for name in [shard_log_name(shard), shard_snapshot_name(shard)] {
        match std::fs::remove_file(dir.join(name)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// CRC-32 (IEEE 802.3, reflected) — dependency-free, bitwise.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One logged admission-state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A task was admitted.
    Submit {
        /// Task id.
        task: u64,
        /// Application name.
        app: String,
    },
    /// A task was dispatched and leased to an executor.
    Lease {
        /// Task id.
        task: u64,
        /// Which execution this is (failed attempts so far).
        attempt: u32,
    },
    /// A lease expired and the task re-entered the (delayed) queue.
    Requeue {
        /// Task id.
        task: u64,
        /// Failed attempts after the expiry.
        attempt: u32,
    },
    /// A task exhausted its attempts and moved to the dead-letter queue.
    DeadLetter {
        /// Task id.
        task: u64,
        /// Total failed attempts.
        attempts: u32,
    },
    /// A task completed.
    Complete {
        /// Task id.
        task: u64,
        /// Realized runtime, seconds.
        runtime: f64,
    },
    /// A queued task moved between shards in a work-steal. The donor
    /// appends this before forgetting the task; the recipient appends an
    /// identical record when it adopts. Replay interprets the record by
    /// which shard's log it sits in.
    Migrate {
        /// Task id.
        task: u64,
        /// Application name (so the record alone can resurrect the task).
        app: String,
        /// Failed attempts at migration time.
        attempt: u32,
        /// Donor shard.
        from: usize,
        /// Recipient shard.
        to: usize,
    },
}

impl WalRecord {
    /// The JSON payload of this record, exactly as framed in the log.
    /// Public so the replication layer can ship records over the wire in
    /// the same format the WAL replays.
    pub fn encode(&self) -> Value {
        match self {
            WalRecord::Submit { task, app } => json::obj(vec![
                ("op", json::s("submit")),
                ("task", json::n(*task as f64)),
                ("app", json::s(app.clone())),
            ]),
            WalRecord::Lease { task, attempt } => json::obj(vec![
                ("op", json::s("lease")),
                ("task", json::n(*task as f64)),
                ("attempt", json::n(f64::from(*attempt))),
            ]),
            WalRecord::Requeue { task, attempt } => json::obj(vec![
                ("op", json::s("requeue")),
                ("task", json::n(*task as f64)),
                ("attempt", json::n(f64::from(*attempt))),
            ]),
            WalRecord::DeadLetter { task, attempts } => json::obj(vec![
                ("op", json::s("dead")),
                ("task", json::n(*task as f64)),
                ("attempts", json::n(f64::from(*attempts))),
            ]),
            WalRecord::Complete { task, runtime } => json::obj(vec![
                ("op", json::s("complete")),
                ("task", json::n(*task as f64)),
                ("runtime", json::n(*runtime)),
            ]),
            WalRecord::Migrate {
                task,
                app,
                attempt,
                from,
                to,
            } => json::obj(vec![
                ("op", json::s("migrate")),
                ("task", json::n(*task as f64)),
                ("app", json::s(app.clone())),
                ("attempt", json::n(f64::from(*attempt))),
                ("from", json::n(*from as f64)),
                ("to", json::n(*to as f64)),
            ]),
        }
    }

    /// Inverse of [`WalRecord::encode`]; `None` on version skew.
    pub fn decode(v: &Value) -> Option<WalRecord> {
        let task = v.get("task")?.as_u64()?;
        match v.get("op")?.as_str()? {
            "submit" => Some(WalRecord::Submit {
                task,
                app: v.get("app")?.as_str()?.to_string(),
            }),
            "lease" => Some(WalRecord::Lease {
                task,
                attempt: v.get("attempt")?.as_u64()? as u32,
            }),
            "requeue" => Some(WalRecord::Requeue {
                task,
                attempt: v.get("attempt")?.as_u64()? as u32,
            }),
            "dead" => Some(WalRecord::DeadLetter {
                task,
                attempts: v.get("attempts")?.as_u64()? as u32,
            }),
            "complete" => Some(WalRecord::Complete {
                task,
                runtime: v.get("runtime")?.as_f64()?,
            }),
            "migrate" => Some(WalRecord::Migrate {
                task,
                app: v.get("app")?.as_str()?.to_string(),
                attempt: v.get("attempt")?.as_u64()? as u32,
                from: v.get("from")?.as_u64()? as usize,
                to: v.get("to")?.as_u64()? as usize,
            }),
            _ => None,
        }
    }
}

/// The durable state of one task, as reconstructed by replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecState {
    /// Admitted, waiting for dispatch.
    Queued,
    /// Dispatched under a lease when the daemon stopped — the executor's
    /// connection died with the daemon, so recovery requeues it.
    Leased,
    /// Completed.
    Completed,
    /// Dead-lettered.
    DeadLettered,
    /// Stolen away to another shard (donor-side tombstone). The merged
    /// replay resurrects the task as queued on `migrated_to` only when
    /// no other shard's log has a live record for it.
    Migrated,
}

/// One task's recovered record.
#[derive(Debug, Clone)]
pub struct RecoveredTask {
    /// Task id.
    pub task: u64,
    /// Application name.
    pub app: String,
    /// Failed attempts so far.
    pub attempts: u32,
    /// Durable state.
    pub state: RecState,
    /// Realized runtime for completed tasks (0 otherwise).
    pub runtime: f64,
    /// Recipient shard for [`RecState::Migrated`] tombstones.
    pub migrated_to: Option<usize>,
}

impl RecoveredTask {
    /// A fresh queued record (the common constructor in replay).
    fn queued(task: u64, app: String, attempts: u32) -> RecoveredTask {
        RecoveredTask {
            task,
            app,
            attempts,
            state: RecState::Queued,
            runtime: 0.0,
            migrated_to: None,
        }
    }
}

/// What [`Wal::open`] reconstructed.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Every known task, in original submit order.
    pub tasks: Vec<RecoveredTask>,
    /// First unused task id (ids stay unique across restarts).
    pub next_task_id: u64,
    /// Log records replayed (snapshot entries not included).
    pub replayed_records: u64,
    /// Bytes dropped from a torn tail, if any.
    pub truncated_bytes: u64,
    /// Checksummed-but-undecodable records skipped (version skew).
    pub skipped_records: u64,
}

/// The open write-ahead log for one shard.
pub struct Wal {
    file: File,
    dir: PathBuf,
    shard: usize,
    records_since_snapshot: u64,
    snapshot_every: u64,
}

fn read_snapshot(dir: &Path, shard: usize, recovery: &mut Recovery) -> io::Result<()> {
    let path = dir.join(shard_snapshot_name(shard));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    decode_snapshot(&text, recovery)
}

/// Parses a snapshot document (the exact bytes of a `snapshot.N.json`
/// file) into an in-progress [`Recovery`]. Undecodable entries bump
/// `skipped_records` rather than failing the whole install.
pub fn decode_snapshot(text: &str, recovery: &mut Recovery) -> io::Result<()> {
    let v = json::parse(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {e}")))?;
    recovery.next_task_id = v.get("next_task_id").and_then(Value::as_u64).unwrap_or(0);
    if let Some(tasks) = v.get("tasks").and_then(Value::as_arr) {
        for t in tasks {
            let (Some(task), Some(app)) = (
                t.get("task").and_then(Value::as_u64),
                t.get("app").and_then(Value::as_str),
            ) else {
                recovery.skipped_records += 1;
                continue;
            };
            let state = match t.get("state").and_then(Value::as_str) {
                Some("queued") => RecState::Queued,
                Some("leased") => RecState::Leased,
                Some("completed") => RecState::Completed,
                Some("dead") => RecState::DeadLettered,
                Some("migrated") => RecState::Migrated,
                _ => {
                    recovery.skipped_records += 1;
                    continue;
                }
            };
            recovery.tasks.push(RecoveredTask {
                task,
                app: app.to_string(),
                attempts: t.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32,
                state,
                runtime: t.get("runtime").and_then(Value::as_f64).unwrap_or(0.0),
                migrated_to: t.get("to").and_then(Value::as_u64).map(|n| n as usize),
            });
        }
    }
    Ok(())
}

/// Folds one record into an in-progress [`Recovery`], exactly as log
/// replay does. Pure and idempotent per task (later records win), which
/// is what lets replication re-deliver duplicate frames harmlessly.
/// Public so the deterministic repl harness can replay shipped frames
/// without touching a real log file.
pub fn apply(recovery: &mut Recovery, rec: WalRecord, shard: usize) {
    let find = |tasks: &mut Vec<RecoveredTask>, id: u64| -> Option<usize> {
        tasks.iter().position(|t| t.task == id)
    };
    match rec {
        WalRecord::Submit { task, app } => {
            if find(&mut recovery.tasks, task).is_none() {
                recovery.tasks.push(RecoveredTask::queued(task, app, 0));
            }
        }
        WalRecord::Lease { task, attempt } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::Leased;
                recovery.tasks[i].attempts = attempt;
            }
        }
        WalRecord::Requeue { task, attempt } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::Queued;
                recovery.tasks[i].attempts = attempt;
            }
        }
        WalRecord::DeadLetter { task, attempts } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::DeadLettered;
                recovery.tasks[i].attempts = attempts;
            }
        }
        WalRecord::Complete { task, runtime } => {
            if let Some(i) = find(&mut recovery.tasks, task) {
                recovery.tasks[i].state = RecState::Completed;
                recovery.tasks[i].runtime = runtime;
            }
        }
        WalRecord::Migrate {
            task,
            app,
            attempt,
            from,
            to,
        } => {
            if to == shard {
                // Recipient-side adopt: the task now lives here, queued.
                match find(&mut recovery.tasks, task) {
                    Some(i) => {
                        recovery.tasks[i].state = RecState::Queued;
                        recovery.tasks[i].attempts = attempt;
                        recovery.tasks[i].migrated_to = None;
                    }
                    None => recovery
                        .tasks
                        .push(RecoveredTask::queued(task, app, attempt)),
                }
            } else if from == shard {
                // Donor-side tombstone, kept so the task survives even if
                // the donor compacts before the recipient records it.
                match find(&mut recovery.tasks, task) {
                    Some(i) => {
                        recovery.tasks[i].state = RecState::Migrated;
                        recovery.tasks[i].attempts = attempt;
                        recovery.tasks[i].migrated_to = Some(to);
                    }
                    None => {
                        let mut t = RecoveredTask::queued(task, app, attempt);
                        t.state = RecState::Migrated;
                        t.migrated_to = Some(to);
                        recovery.tasks.push(t);
                    }
                }
            }
        }
    }
}

/// Renames a pre-sharding `wal.log`/`snapshot.json` pair to the shard-0
/// names, so directories written by earlier daemons recover cleanly.
fn adopt_legacy_layout(dir: &Path) -> io::Result<()> {
    for (old, new) in [
        (LEGACY_LOG_FILE.to_string(), shard_log_name(0)),
        (LEGACY_SNAPSHOT_FILE.to_string(), shard_snapshot_name(0)),
    ] {
        let old_path = dir.join(&old);
        let new_path = dir.join(&new);
        if old_path.exists() && !new_path.exists() {
            std::fs::rename(&old_path, &new_path)?;
        }
    }
    Ok(())
}

impl Wal {
    /// Opens (creating if needed) shard 0's log in `dir`. See
    /// [`Wal::open_shard`].
    pub fn open(dir: &Path, snapshot_every: u64) -> io::Result<(Wal, Recovery)> {
        Wal::open_shard(dir, 0, snapshot_every)
    }

    /// Opens (creating if needed) one shard's log in `dir`, replaying its
    /// snapshot + log into a [`Recovery`]. A torn or corrupt tail ends
    /// the replay and is truncated so the next append starts on a clean
    /// frame boundary.
    pub fn open_shard(
        dir: &Path,
        shard: usize,
        snapshot_every: u64,
    ) -> io::Result<(Wal, Recovery)> {
        std::fs::create_dir_all(dir)?;
        if shard == 0 {
            adopt_legacy_layout(dir)?;
        }
        let mut recovery = Recovery::default();
        read_snapshot(dir, shard, &mut recovery)?;

        let log_path = dir.join(shard_log_name(shard));
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&log_path)?;
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        let mut off = 0usize;
        let valid_end = loop {
            if off + 8 > buf.len() {
                break off;
            }
            let len_bytes: [u8; 4] = match buf[off..off + 4].try_into() {
                Ok(b) => b,
                Err(_) => break off,
            };
            let crc_bytes: [u8; 4] = match buf[off + 4..off + 8].try_into() {
                Ok(b) => b,
                Err(_) => break off,
            };
            let len = u32::from_le_bytes(len_bytes);
            if len == 0 || len > MAX_RECORD_BYTES || off + 8 + len as usize > buf.len() {
                break off;
            }
            let payload = &buf[off + 8..off + 8 + len as usize];
            if crc32(payload) != u32::from_le_bytes(crc_bytes) {
                break off;
            }
            match std::str::from_utf8(payload)
                .ok()
                .and_then(|t| json::parse(t).ok())
                .as_ref()
                .and_then(WalRecord::decode)
            {
                Some(rec) => {
                    apply(&mut recovery, rec, shard);
                    recovery.replayed_records += 1;
                }
                None => recovery.skipped_records += 1,
            }
            off += 8 + len as usize;
        };
        if valid_end < buf.len() {
            recovery.truncated_bytes = (buf.len() - valid_end) as u64;
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
        }
        let max_id = recovery.tasks.iter().map(|t| t.task + 1).max().unwrap_or(0);
        recovery.next_task_id = recovery.next_task_id.max(max_id);
        Ok((
            Wal {
                file,
                dir: dir.to_path_buf(),
                shard,
                records_since_snapshot: recovery.replayed_records,
                snapshot_every: snapshot_every.max(1),
            },
            recovery,
        ))
    }

    /// Which shard's log this is.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Appends one record and syncs it to disk (write-ahead: call before
    /// acknowledging the transition to the client).
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        self.append_batch(std::slice::from_ref(rec))
    }

    /// Appends a batch of records with a single write + fsync — the
    /// durability cost of one record for the whole batch, which is what
    /// makes multi-task steals cheap.
    pub fn append_batch(&mut self, recs: &[WalRecord]) -> io::Result<()> {
        if recs.is_empty() {
            return Ok(());
        }
        let mut frame = Vec::new();
        for rec in recs {
            let payload = rec.encode().to_string().into_bytes();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
        }
        if !failpoint::armed() {
            // The steady state: one relaxed load, no scope string built.
            self.file.write_all(&frame)?;
            self.file.sync_data()?;
            self.records_since_snapshot += recs.len() as u64;
            return Ok(());
        }
        let scope = self.dir.to_string_lossy();
        match failpoint::should_fail("wal.append.write", &scope) {
            Some(failpoint::Action::Short) => {
                // A torn write: persist a strict prefix of the frame and
                // report failure. Once later appends land behind it, the
                // prefix is mid-file garbage only the scrubber will see.
                let cut = (frame.len() / 2).max(1);
                let _ = self.file.write_all(&frame[..cut]);
                let _ = self.file.sync_data();
                return Err(failpoint::injected_error("wal.append.write"));
            }
            Some(_) => return Err(failpoint::injected_error("wal.append.write")),
            None => {}
        }
        self.file.write_all(&frame)?;
        match failpoint::should_fail("wal.append.sync", &scope) {
            // A lying fsync: the data may sit in the page cache only.
            Some(failpoint::Action::Skip) => {}
            Some(_) => return Err(failpoint::injected_error("wal.append.sync")),
            None => self.file.sync_data()?,
        }
        self.records_since_snapshot += recs.len() as u64;
        Ok(())
    }

    /// Whether enough records accumulated that the owner should snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.records_since_snapshot >= self.snapshot_every
    }

    /// Change the snapshot cadence after opening (clamped to >= 1).
    pub fn set_snapshot_every(&mut self, every: u64) {
        self.snapshot_every = every.max(1);
    }

    /// Writes a full-state snapshot (atomically: tmp + rename) and
    /// truncates the log. `tasks` must be in submit order.
    pub fn snapshot(&mut self, tasks: &[RecoveredTask], next_task_id: u64) -> io::Result<()> {
        let blob = encode_snapshot(tasks, next_task_id);
        self.install_snapshot_blob(&blob)
    }

    /// Installs a pre-encoded snapshot document (tmp + rename + dir sync)
    /// and truncates the log — how a lagging follower adopts the
    /// leader's compaction horizon wholesale.
    pub fn install_snapshot_blob(&mut self, blob: &str) -> io::Result<()> {
        // Scope string only built when the registry is armed; disarmed the
        // four hooks below are each a single relaxed load.
        let scope = if failpoint::armed() {
            self.dir.to_string_lossy().into_owned()
        } else {
            String::new()
        };
        if failpoint::should_fail("wal.snapshot.tmp", &scope).is_some() {
            return Err(failpoint::injected_error("wal.snapshot.tmp"));
        }
        let tmp = self.dir.join(format!("snapshot.{}.tmp", self.shard));
        let mut f = File::create(&tmp)?;
        f.write_all(blob.as_bytes())?;
        f.sync_data()?;
        drop(f);
        if failpoint::should_fail("wal.snapshot.rename", &scope).is_some() {
            return Err(failpoint::injected_error("wal.snapshot.rename"));
        }
        std::fs::rename(&tmp, self.dir.join(shard_snapshot_name(self.shard)))?;
        // Make the rename durable (best effort — not all platforms allow
        // syncing a directory handle).
        if failpoint::should_fail("wal.snapshot.dirsync", &scope).is_none() {
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        if failpoint::should_fail("wal.snapshot.truncate", &scope).is_some() {
            return Err(failpoint::injected_error("wal.snapshot.truncate"));
        }
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

/// What one read-only scrub pass over a shard found. The scrubber walks
/// the *sealed* region of the log — frames fully contained in the file
/// length observed when the pass started — so it never mistakes an
/// in-flight append for rot; the live writer only ever extends the file.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Which shard was scrubbed.
    pub shard: usize,
    /// Sealed frames whose checksum verified.
    pub frames_ok: u64,
    /// Byte offset of the first corrupt sealed frame, if any. Everything
    /// from here to the sealed end is the quarantined range: replay
    /// cannot see past the bad frame, so the suffix is unreachable.
    pub corrupt_at: Option<u64>,
    /// Bytes in the quarantined range.
    pub quarantined_bytes: u64,
    /// The snapshot document failed CRC-equivalent verification (parse).
    pub snapshot_corrupt: bool,
    /// Bytes scanned this pass (snapshot + sealed log), for throughput.
    pub scanned_bytes: u64,
}

impl ScrubReport {
    /// No corruption found.
    pub fn clean(&self) -> bool {
        self.corrupt_at.is_none() && !self.snapshot_corrupt
    }

    /// Corrupt frames found this pass (counting the whole quarantined
    /// suffix as unreachable, the metric counts the first bad frame plus
    /// the snapshot when rotted).
    pub fn corrupt_count(&self) -> u64 {
        u64::from(self.corrupt_at.is_some()) + u64::from(self.snapshot_corrupt)
    }
}

/// Re-verifies one shard's snapshot and sealed log frames without
/// touching either file. Safe to run against a live writer: only frames
/// fully contained in the length observed at the start of the pass are
/// judged, and a frame extending past it is an in-flight tail, not rot.
pub fn scrub_shard(dir: &Path, shard: usize) -> io::Result<ScrubReport> {
    let mut report = ScrubReport {
        shard,
        ..ScrubReport::default()
    };
    match std::fs::read_to_string(dir.join(shard_snapshot_name(shard))) {
        Ok(text) => {
            report.scanned_bytes += text.len() as u64;
            let mut throwaway = Recovery::default();
            if decode_snapshot(&text, &mut throwaway).is_err() {
                report.snapshot_corrupt = true;
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let buf = match std::fs::read(dir.join(shard_log_name(shard))) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let sealed = buf.len();
    let mut off = 0usize;
    while off + 8 <= sealed {
        let len = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
        if len == 0 || len > MAX_RECORD_BYTES {
            // An implausible length header could be a half-written len
            // field; recovery truncates here either way, so treat it as
            // the sealed region's corrupt horizon.
            report.corrupt_at = Some(off as u64);
            break;
        }
        let end = off + 8 + len as usize;
        if end > sealed {
            // In-flight tail: the frame extends past the length we
            // observed; the writer may still be appending it.
            break;
        }
        let crc = u32::from_le_bytes([buf[off + 4], buf[off + 5], buf[off + 6], buf[off + 7]]);
        if crc32(&buf[off + 8..end]) != crc {
            report.corrupt_at = Some(off as u64);
            break;
        }
        report.frames_ok += 1;
        off = end;
    }
    if let Some(at) = report.corrupt_at {
        report.quarantined_bytes = sealed as u64 - at;
    }
    report.scanned_bytes += sealed as u64;
    Ok(report)
}

/// Quarantines a corrupt log suffix by truncating the shard's log at
/// `at` (the offset a [`scrub_shard`] pass reported). Returns the bytes
/// removed. Safe against the live `O_APPEND` writer: its next append
/// lands at the new end of file on a clean frame boundary. The records
/// in the truncated range were already unreachable to replay.
pub fn quarantine_shard(dir: &Path, shard: usize, at: u64) -> io::Result<u64> {
    let path = dir.join(shard_log_name(shard));
    let file = OpenOptions::new().write(true).open(&path)?;
    let len = file.metadata()?.len();
    if at >= len {
        return Ok(0);
    }
    file.set_len(at)?;
    file.sync_data()?;
    Ok(len - at)
}

/// Serializes a task table into the snapshot document format — the exact
/// bytes [`Wal::snapshot`] persists and [`decode_snapshot`] parses.
/// `tasks` must be in submit order.
pub fn encode_snapshot(tasks: &[RecoveredTask], next_task_id: u64) -> String {
    let entries: Vec<Value> = tasks
        .iter()
        .map(|t| {
            let mut fields = vec![
                ("task", json::n(t.task as f64)),
                ("app", json::s(t.app.clone())),
                ("attempts", json::n(f64::from(t.attempts))),
                (
                    "state",
                    json::s(match t.state {
                        RecState::Queued => "queued",
                        RecState::Leased => "leased",
                        RecState::Completed => "completed",
                        RecState::DeadLettered => "dead",
                        RecState::Migrated => "migrated",
                    }),
                ),
                ("runtime", json::n(t.runtime)),
            ];
            if let Some(to) = t.migrated_to {
                fields.push(("to", json::n(to as f64)));
            }
            json::obj(fields)
        })
        .collect();
    json::obj(vec![
        ("v", json::n(1.0)),
        ("next_task_id", json::n(next_task_id as f64)),
        ("tasks", Value::Arr(entries)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracon-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_replays_all_records() {
        let dir = tmpdir("roundtrip");
        {
            let (mut wal, rec) = Wal::open(&dir, 1000).unwrap();
            assert_eq!(rec.tasks.len(), 0);
            wal.append(&WalRecord::Submit {
                task: 0,
                app: "grep".into(),
            })
            .unwrap();
            wal.append(&WalRecord::Submit {
                task: 1,
                app: "sort".into(),
            })
            .unwrap();
            wal.append(&WalRecord::Lease {
                task: 0,
                attempt: 0,
            })
            .unwrap();
            wal.append(&WalRecord::Complete {
                task: 0,
                runtime: 3.5,
            })
            .unwrap();
            wal.append(&WalRecord::Requeue {
                task: 1,
                attempt: 1,
            })
            .unwrap();
        }
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 5);
        assert_eq!(rec.next_task_id, 2);
        assert_eq!(rec.tasks.len(), 2);
        assert_eq!(rec.tasks[0].state, RecState::Completed);
        assert_eq!(rec.tasks[0].runtime, 3.5);
        assert_eq!(rec.tasks[1].state, RecState::Queued);
        assert_eq!(rec.tasks[1].attempts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
            wal.append(&WalRecord::Submit {
                task: 0,
                app: "grep".into(),
            })
            .unwrap();
        }
        // Append garbage simulating a frame cut mid-write.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(shard_log_name(0)))
                .unwrap();
            f.write_all(&[0x20, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
        }
        let (mut wal, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 1);
        assert_eq!(rec.tasks.len(), 1);
        assert!(rec.truncated_bytes > 0);
        // The log is writable again on a clean boundary.
        wal.append(&WalRecord::Lease {
            task: 0,
            attempt: 0,
        })
        .unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 2);
        assert_eq!(rec.tasks[0].state, RecState::Leased);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_frame() {
        let dir = tmpdir("crc");
        {
            let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
            for i in 0..3u64 {
                wal.append(&WalRecord::Submit {
                    task: i,
                    app: "a".into(),
                })
                .unwrap();
            }
        }
        // Flip one payload byte of the *second* frame.
        {
            let mut bytes = std::fs::read(dir.join(shard_log_name(0))).unwrap();
            let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            let second_payload = 8 + first_len + 8;
            bytes[second_payload] ^= 0xFF;
            std::fs::write(dir.join(shard_log_name(0)), &bytes).unwrap();
        }
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 1, "replay stops at the bad frame");
        assert!(rec.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_and_survives_restart() {
        let dir = tmpdir("snap");
        {
            let (mut wal, _) = Wal::open(&dir, 2).unwrap();
            wal.append(&WalRecord::Submit {
                task: 0,
                app: "grep".into(),
            })
            .unwrap();
            wal.append(&WalRecord::Submit {
                task: 1,
                app: "sort".into(),
            })
            .unwrap();
            assert!(wal.snapshot_due());
            let tasks = vec![
                RecoveredTask {
                    task: 0,
                    app: "grep".into(),
                    attempts: 0,
                    state: RecState::Queued,
                    runtime: 0.0,
                    migrated_to: None,
                },
                RecoveredTask {
                    task: 1,
                    app: "sort".into(),
                    attempts: 2,
                    state: RecState::DeadLettered,
                    runtime: 0.0,
                    migrated_to: None,
                },
            ];
            wal.snapshot(&tasks, 2).unwrap();
            assert!(!wal.snapshot_due());
            // Post-snapshot records land in the truncated log.
            wal.append(&WalRecord::Lease {
                task: 0,
                attempt: 0,
            })
            .unwrap();
        }
        let (_, rec) = Wal::open(&dir, 2).unwrap();
        assert_eq!(rec.next_task_id, 2);
        assert_eq!(rec.replayed_records, 1, "only the post-snapshot record");
        assert_eq!(rec.tasks.len(), 2);
        assert_eq!(rec.tasks[0].state, RecState::Leased);
        assert_eq!(rec.tasks[1].state, RecState::DeadLettered);
        assert_eq!(rec.tasks[1].attempts, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let dir = tmpdir("empty");
        let (_, rec) = Wal::open(&dir, 10).unwrap();
        assert_eq!(rec.tasks.len(), 0);
        assert_eq!(rec.next_task_id, 0);
        assert_eq!(rec.replayed_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migrate_is_a_tombstone_for_the_donor_and_an_adopt_for_the_recipient() {
        let dir = tmpdir("migrate");
        let rec = WalRecord::Migrate {
            task: 7,
            app: "grep".into(),
            attempt: 1,
            from: 0,
            to: 2,
        };
        {
            let (mut donor, _) = Wal::open_shard(&dir, 0, 1000).unwrap();
            donor
                .append(&WalRecord::Submit {
                    task: 7,
                    app: "grep".into(),
                })
                .unwrap();
            donor.append(&rec).unwrap();
            let (mut recipient, _) = Wal::open_shard(&dir, 2, 1000).unwrap();
            recipient.append(&rec).unwrap();
        }
        let (_, donor_rec) = Wal::open_shard(&dir, 0, 1000).unwrap();
        assert_eq!(donor_rec.tasks.len(), 1);
        assert_eq!(donor_rec.tasks[0].state, RecState::Migrated);
        assert_eq!(donor_rec.tasks[0].migrated_to, Some(2));
        let (_, recip_rec) = Wal::open_shard(&dir, 2, 1000).unwrap();
        assert_eq!(recip_rec.tasks.len(), 1);
        assert_eq!(recip_rec.tasks[0].state, RecState::Queued);
        assert_eq!(recip_rec.tasks[0].attempts, 1);
        assert_eq!(recip_rec.tasks[0].app, "grep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_replays_like_single_appends() {
        let dir = tmpdir("batch");
        {
            let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
            let recs: Vec<WalRecord> = (0..5)
                .map(|i| WalRecord::Submit {
                    task: i,
                    app: "a".into(),
                })
                .collect();
            wal.append_batch(&recs).unwrap();
        }
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 5);
        assert_eq!(rec.tasks.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_file_layout_is_adopted_as_shard_zero() {
        let dir = tmpdir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        // Write a record under the new layout, then rename to the legacy
        // names as a pre-sharding daemon would have left them.
        {
            let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
            wal.append(&WalRecord::Submit {
                task: 3,
                app: "grep".into(),
            })
            .unwrap();
        }
        std::fs::rename(dir.join(shard_log_name(0)), dir.join(LEGACY_LOG_FILE)).unwrap();
        assert_eq!(existing_shard_count(&dir), 1);
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.tasks.len(), 1, "legacy wal.log must be replayed");
        assert!(dir.join(shard_log_name(0)).exists());
        assert!(!dir.join(LEGACY_LOG_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The same splitmix64 the sim harness uses — seeded, dependency-free
    /// randomness for the torture loop.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn seed_log(dir: &PathBuf, n: u64) {
        let (mut wal, _) = Wal::open(dir, 1000).unwrap();
        for i in 0..n {
            wal.append(&WalRecord::Submit {
                task: i,
                app: "grep".into(),
            })
            .unwrap();
        }
    }

    #[test]
    fn scrub_detects_mid_file_bit_rot_and_quarantine_truncates() {
        let dir = tmpdir("scrub-rot");
        seed_log(&dir, 5);
        assert!(scrub_shard(&dir, 0).unwrap().clean());
        // Rot one payload byte of the second frame: replay would stop
        // there, so frames 2..5 are the unreachable quarantined suffix.
        let log = dir.join(shard_log_name(0));
        let mut bytes = std::fs::read(&log).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second = 8 + first_len;
        bytes[second + 8] ^= 0x01;
        std::fs::write(&log, &bytes).unwrap();
        let report = scrub_shard(&dir, 0).unwrap();
        assert!(!report.clean());
        assert_eq!(report.frames_ok, 1);
        assert_eq!(report.corrupt_at, Some(second as u64));
        assert_eq!(
            report.quarantined_bytes,
            (bytes.len() - second) as u64,
            "quarantined range must run from the bad frame to the sealed end"
        );
        let removed = quarantine_shard(&dir, 0, second as u64).unwrap();
        assert_eq!(removed, report.quarantined_bytes);
        assert!(scrub_shard(&dir, 0).unwrap().clean());
        // The truncated log replays its intact prefix and accepts writes.
        let (mut wal, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 1);
        assert_eq!(rec.truncated_bytes, 0, "quarantine already cut the rot");
        wal.append(&WalRecord::Lease {
            task: 0,
            attempt: 0,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_ignores_an_in_flight_tail() {
        let dir = tmpdir("scrub-tail");
        seed_log(&dir, 3);
        // A frame header whose payload extends past end-of-file is an
        // append in progress, not rot: the pass must stay clean.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(shard_log_name(0)))
                .unwrap();
            f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0x01])
                .unwrap();
        }
        let report = scrub_shard(&dir, 0).unwrap();
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.frames_ok, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_flags_a_rotted_snapshot() {
        let dir = tmpdir("scrub-snap");
        {
            let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
            let tasks = vec![RecoveredTask {
                task: 0,
                app: "grep".into(),
                attempts: 0,
                state: RecState::Queued,
                runtime: 0.0,
                migrated_to: None,
            }];
            wal.snapshot(&tasks, 1).unwrap();
        }
        let snap = dir.join(shard_snapshot_name(0));
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[0] = b'\\';
        std::fs::write(&snap, &bytes).unwrap();
        let report = scrub_shard(&dir, 0).unwrap();
        assert!(report.snapshot_corrupt);
        assert!(report.corrupt_count() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Proptest-style torture: flip random bytes anywhere in the log and
    /// snapshot; scrub and recovery must never panic, replay must stop
    /// at the first bad frame, and quarantining what scrub reports must
    /// always leave a log that reopens with nothing left to truncate.
    #[test]
    fn torture_random_bit_flips_never_panic_recovery() {
        let mut rng = 0x7261_636F_6E00_0A0Bu64;
        for round in 0..40 {
            let dir = tmpdir(&format!("torture-{round}"));
            let n = 4 + splitmix(&mut rng) % 8;
            seed_log(&dir, n);
            let log = dir.join(shard_log_name(0));
            let mut bytes = std::fs::read(&log).unwrap();
            let flips = 1 + splitmix(&mut rng) % 3;
            for _ in 0..flips {
                let at = (splitmix(&mut rng) as usize) % bytes.len();
                bytes[at] ^= 1 << (splitmix(&mut rng) % 8);
            }
            std::fs::write(&log, &bytes).unwrap();
            let report = scrub_shard(&dir, 0).unwrap();
            assert!(report.frames_ok <= n, "round {round}");
            if let Some(at) = report.corrupt_at {
                assert_eq!(report.quarantined_bytes, bytes.len() as u64 - at);
                quarantine_shard(&dir, 0, at).unwrap();
            }
            // Recovery replays the intact prefix without panicking —
            // whether or not the flips landed in a sealed frame — and
            // after a quarantine there is no torn tail left to cut.
            let (_, rec) = Wal::open(&dir, 1000).unwrap();
            assert!(
                rec.replayed_records + rec.skipped_records <= n,
                "round {round}"
            );
            if report.corrupt_at.is_some() {
                assert_eq!(rec.truncated_bytes, 0, "round {round}");
                assert!(
                    rec.replayed_records + rec.skipped_records <= report.frames_ok,
                    "round {round}: replay must stop no later than scrub's horizon"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn append_failpoints_inject_then_disarm_restores() {
        let _gate = crate::failpoint::test_gate();
        crate::failpoint::disarm_all();
        let dir = tmpdir("failpoint-append");
        let tag = dir.to_string_lossy().into_owned();
        let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
        crate::failpoint::arm(&format!("wal.append.sync@{tag}=err*1")).unwrap();
        let err = wal
            .append(&WalRecord::Submit {
                task: 0,
                app: "grep".into(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("failpoint injected"), "{err}");
        // The budget is spent: the next append persists normally.
        wal.append(&WalRecord::Submit {
            task: 1,
            app: "grep".into(),
        })
        .unwrap();
        crate::failpoint::disarm_all();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert!(rec.replayed_records >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_failpoint_leaves_rot_only_scrub_sees() {
        let _gate = crate::failpoint::test_gate();
        crate::failpoint::disarm_all();
        let dir = tmpdir("failpoint-short");
        let tag = dir.to_string_lossy().into_owned();
        let (mut wal, _) = Wal::open(&dir, 1000).unwrap();
        wal.append(&WalRecord::Submit {
            task: 0,
            app: "grep".into(),
        })
        .unwrap();
        crate::failpoint::arm(&format!("wal.append.write@{tag}=short*1")).unwrap();
        wal.append(&WalRecord::Submit {
            task: 1,
            app: "grep".into(),
        })
        .unwrap_err();
        crate::failpoint::disarm_all();
        // Appends continue after the torn frame: the prefix is now
        // sealed mid-file garbage.
        wal.append(&WalRecord::Submit {
            task: 2,
            app: "grep".into(),
        })
        .unwrap();
        let report = scrub_shard(&dir, 0).unwrap();
        assert!(!report.clean(), "{report:?}");
        assert_eq!(report.frames_ok, 1);
        assert!(report.quarantined_bytes > 0);
        let at = report.corrupt_at.unwrap();
        quarantine_shard(&dir, 0, at).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 1000).unwrap();
        assert_eq!(rec.replayed_records, 1, "only the pre-rot record survives");
        assert_eq!(rec.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_scan_sees_logs_and_snapshots() {
        let dir = tmpdir("scan");
        assert_eq!(existing_shard_count(&dir), 0);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(existing_shard_count(&dir), 0);
        let _ = Wal::open_shard(&dir, 2, 10).unwrap();
        assert_eq!(existing_shard_count(&dir), 3);
        remove_shard_files(&dir, 2).unwrap();
        assert_eq!(existing_shard_count(&dir), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
