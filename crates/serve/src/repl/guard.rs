//! Leader-side lease bookkeeping: the replication **slot** and write
//! **suspension**.
//!
//! The follower's lease logic ([`super::FollowerCore`]) promotes it when
//! the leader goes silent for the TTL. This is the mirror image: the
//! leader tracks the last `repl_pull` it served and, once its registered
//! follower has been silent for the same TTL, stops acknowledging
//! mutations — by then the follower may legitimately have promoted, and
//! a write acked here would never be replicated. Suspension bounds the
//! lost-acked-write window to at most one TTL of a partition; it does
//! not change the node's [`super::Role`] (a suspended leader still
//! serves reads and pulls, and resumes if its follower turns out to be
//! alive).
//!
//! The slot also enforces the **single-follower pair**: epochs are
//! claimed as `observed + 1` with no tiebreaker, so two followers of the
//! same leader could promote to the *same* epoch and never fence each
//! other. Allowing only one registered follower address per leader
//! incarnation makes that topology unreachable — a second follower is
//! refused until the operator restarts the leader to re-pair it.
//!
//! Like [`super::FollowerCore`], this is a pure state machine over
//! caller-supplied milliseconds so the reactor and the deterministic
//! [`super::sim`] harness run identical logic.

/// Verdict on one incoming `repl_pull`. The caller must have fenced on a
/// higher epoch *before* consulting the guard: a pull stamped with an
/// epoch `<=` the leader's proves the puller has not durably promoted
/// (promotion claims a strictly greater epoch before anything else),
/// which is what makes [`PullAdmission::Granted`] with `resumed: true`
/// safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullAdmission {
    /// Serve the pull; the lease is renewed.
    Granted {
        /// Writes were suspended and this pull proved the follower never
        /// promoted, so they may resume.
        resumed: bool,
    },
    /// A different follower already holds the replication slot.
    Conflict {
        /// The registered follower's address.
        holder: String,
    },
}

/// The leader's view of its one follower: who holds the slot, when it
/// last pulled, and whether writes are suspended.
#[derive(Debug)]
pub struct LeaderGuard {
    ttl_ms: u64,
    holder: Option<String>,
    last_pull_ms: u64,
    suspended: bool,
}

impl LeaderGuard {
    /// A guard with no registered follower (a standalone WAL-backed
    /// daemon never suspends).
    pub fn new(ttl_ms: u64) -> LeaderGuard {
        LeaderGuard {
            ttl_ms: ttl_ms.max(1),
            holder: None,
            last_pull_ms: 0,
            suspended: false,
        }
    }

    /// The registered follower's address, if any.
    pub fn holder(&self) -> Option<&str> {
        self.holder.as_deref()
    }

    /// True when this pull registers the first follower of this leader
    /// incarnation (worth persisting as the peer hint).
    pub fn vacant(&self) -> bool {
        self.holder.is_none()
    }

    /// Tighten the TTL to the puller's advertised promotion TTL (0 =
    /// unknown, ignored). The guarantee "the leader suspends no later
    /// than its follower promotes" needs the leader's clock to run on
    /// the *follower's* TTL when that is the shorter one; TTLs only ever
    /// shrink so a transiently misconfigured puller cannot loosen the
    /// window back up.
    pub fn observe_ttl(&mut self, ttl_ms: u64) {
        if ttl_ms > 0 {
            self.ttl_ms = self.ttl_ms.min(ttl_ms.max(1));
        }
    }

    /// Admit (or refuse) one pull from `addr` at `now_ms`. The first
    /// address to pull takes the slot for the life of the process; the
    /// same address renews the lease and lifts any suspension.
    pub fn on_pull(&mut self, addr: &str, now_ms: u64) -> PullAdmission {
        match &self.holder {
            Some(holder) if holder != addr => PullAdmission::Conflict {
                holder: holder.clone(),
            },
            _ => {
                if self.holder.is_none() {
                    self.holder = Some(addr.to_string());
                }
                self.last_pull_ms = now_ms;
                let resumed = self.suspended;
                self.suspended = false;
                PullAdmission::Granted { resumed }
            }
        }
    }

    /// Advance the clock; returns true when writes newly suspend (the
    /// registered follower has been silent for the TTL).
    pub fn tick(&mut self, now_ms: u64) -> bool {
        if self.suspended || self.holder.is_none() {
            return false;
        }
        if now_ms.saturating_sub(self.last_pull_ms) >= self.ttl_ms {
            self.suspended = true;
            return true;
        }
        false
    }

    /// When writes are suspended, the address of the silent follower —
    /// the best redirect hint, since that node is the one that may have
    /// promoted.
    pub fn suspended_hint(&self) -> Option<&str> {
        if self.suspended {
            self.holder.as_deref()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_follower_takes_the_slot_and_silence_suspends_writes() {
        let mut guard = LeaderGuard::new(100);
        assert!(guard.vacant());
        // No follower registered: silence alone never suspends.
        assert!(!guard.tick(10_000));
        assert_eq!(
            guard.on_pull("10.0.0.2:7400", 50),
            PullAdmission::Granted { resumed: false }
        );
        assert!(!guard.vacant());
        assert!(!guard.tick(149));
        assert!(guard.tick(150), "TTL of silence must suspend writes");
        assert_eq!(guard.suspended_hint(), Some("10.0.0.2:7400"));
        // Only the first lapse reports a transition.
        assert!(!guard.tick(500));
    }

    #[test]
    fn a_pull_from_the_holder_renews_and_resumes() {
        let mut guard = LeaderGuard::new(100);
        guard.on_pull("f1", 0);
        assert!(guard.tick(100));
        // The holder turns out to be alive (and, by its epoch, provably
        // unpromoted): writes resume.
        assert_eq!(
            guard.on_pull("f1", 120),
            PullAdmission::Granted { resumed: true }
        );
        assert_eq!(guard.suspended_hint(), None);
        assert!(!guard.tick(219));
        assert!(guard.tick(220));
    }

    #[test]
    fn the_ttl_tightens_to_the_pullers_but_never_loosens() {
        let mut guard = LeaderGuard::new(1_500);
        guard.observe_ttl(0); // unknown: ignored
        guard.on_pull("f1", 0);
        assert!(!guard.tick(1_499));
        guard.observe_ttl(1_200);
        guard.on_pull("f1", 2_000);
        guard.observe_ttl(1_500); // looser advert changes nothing
        assert!(!guard.tick(3_199));
        assert!(guard.tick(3_200), "suspension must run on the tighter TTL");
    }

    #[test]
    fn a_second_follower_is_refused_even_after_the_holder_lapses() {
        let mut guard = LeaderGuard::new(100);
        guard.on_pull("f1", 0);
        assert_eq!(
            guard.on_pull("f2", 10),
            PullAdmission::Conflict {
                holder: "f1".into()
            }
        );
        // The slot stays with the (possibly promoted) holder even once
        // it is silent: handing it to f2 could mint a second synced
        // follower and, with it, an equal-epoch split brain.
        assert!(guard.tick(200));
        assert_eq!(
            guard.on_pull("f2", 300),
            PullAdmission::Conflict {
                holder: "f1".into()
            }
        );
        assert_eq!(guard.suspended_hint(), Some("f1"));
    }
}
