//! The leader-side WAL ship log: an in-memory, sequence-numbered tail of
//! each shard's write-ahead log that followers pull over the protocol.
//!
//! Every record group-committed by a shard worker is also pushed here
//! (after the fsync attempt, so a pulled frame is never *ahead* of the
//! follower relative to the leader's durable log by more than the one
//! batch that failed to fsync — and a duplicate or extra frame is
//! harmless, because recovery's per-task merge is idempotent). Snapshot
//! compaction trims the tail: the base sequence jumps past the trimmed
//! frames and the compacted snapshot blob is kept so a follower behind
//! the horizon gets a snapshot install instead of a gap.
//!
//! Sequence numbers are per-shard and per-leader-incarnation: a follower
//! that observes a leader reboot (see the `boot` field of a pull reply)
//! resets its cursors to zero and resyncs from the snapshot.

use std::sync::Mutex;

use crate::wal::WalRecord;

/// Upper bound on frames returned by one pull, so a cold follower's
/// catch-up never renders an unbounded reply line.
pub const MAX_PULL_FRAMES: usize = 256;

/// One pull's worth of replication data for a single shard.
#[derive(Debug, Clone, PartialEq)]
pub struct PullChunk {
    /// Compacted snapshot blob to install first (present only when the
    /// follower's cursor fell behind the compaction horizon).
    pub snapshot: Option<String>,
    /// WAL records to append after the optional snapshot install.
    pub frames: Vec<WalRecord>,
    /// The follower's next cursor after applying this chunk.
    pub next: u64,
    /// The leader's head sequence; `ship_next - next` is the lag in
    /// frames still to pull.
    pub ship_next: u64,
}

/// One shard's shippable tail.
#[derive(Default)]
struct ShardShip {
    /// Sequence number of `frames[0]`.
    base: u64,
    /// Records since the last trim, in append order.
    frames: Vec<WalRecord>,
    /// The snapshot blob that covers everything before `base`.
    snap: Option<String>,
}

/// Per-shard ship logs behind one mutex each; shard workers push, the
/// reactor serves pulls.
pub struct ShipLog {
    shards: Vec<Mutex<ShardShip>>,
    /// Failpoint scope for this instance's `repl.ship.push` site, so a
    /// test can arm faults against its own ship without touching other
    /// ships alive in the same process.
    scope: String,
}

impl ShipLog {
    /// An empty ship log for `shards` shards.
    pub fn new(shards: usize) -> ShipLog {
        ShipLog::new_scoped(shards, String::new())
    }

    /// An empty ship log whose failpoint sites carry `scope`.
    pub fn new_scoped(shards: usize, scope: String) -> ShipLog {
        ShipLog {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            scope,
        }
    }

    /// How many shards this log covers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, ShardShip> {
        self.shards[shard]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Append one group-committed batch to a shard's tail.
    pub fn push(&self, shard: usize, recs: &[WalRecord]) {
        if shard >= self.shards.len() || recs.is_empty() {
            return;
        }
        // Failpoint: silently drop the batch from the ship. No sequence
        // gap opens (later pushes just take earlier numbers); the records
        // reach the follower only with the next snapshot trim — exactly
        // the lag window the scrub/repair properties exercise.
        if crate::failpoint::should_fail("repl.ship.push", &self.scope).is_some() {
            return;
        }
        self.lock(shard).frames.extend_from_slice(recs);
    }

    /// Compact: drop the buffered frames and remember `snapshot` as the
    /// blob covering them. The base advances to at least 1 so a brand-new
    /// follower (cursor 0) always starts with a snapshot install rather
    /// than assuming it saw the pre-snapshot frames.
    pub fn trim(&self, shard: usize, snapshot: String) {
        if shard >= self.shards.len() {
            return;
        }
        let mut guard = self.lock(shard);
        guard.base = (guard.base + guard.frames.len() as u64).max(1);
        guard.frames.clear();
        guard.snap = Some(snapshot);
    }

    /// The sequence number the next pushed record will get.
    pub fn next_seq(&self, shard: usize) -> u64 {
        if shard >= self.shards.len() {
            return 0;
        }
        let guard = self.lock(shard);
        guard.base + guard.frames.len() as u64
    }

    /// Frames currently buffered (since the last trim).
    pub fn frames_len(&self, shard: usize) -> usize {
        if shard >= self.shards.len() {
            return 0;
        }
        self.lock(shard).frames.len()
    }

    /// Serve one follower pull from `cursor`. Behind the horizon the
    /// chunk leads with the snapshot blob and restarts from `base`;
    /// otherwise it is a plain frame range capped at [`MAX_PULL_FRAMES`].
    pub fn pull(&self, shard: usize, cursor: u64) -> PullChunk {
        if shard >= self.shards.len() {
            return PullChunk {
                snapshot: None,
                frames: Vec::new(),
                next: cursor,
                ship_next: cursor,
            };
        }
        let guard = self.lock(shard);
        let head = guard.base + guard.frames.len() as u64;
        let (snapshot, from) = if cursor < guard.base {
            (guard.snap.clone(), guard.base)
        } else {
            (None, cursor.min(head))
        };
        let idx = (from - guard.base) as usize;
        let take = guard.frames.len().saturating_sub(idx).min(MAX_PULL_FRAMES);
        PullChunk {
            snapshot,
            frames: guard.frames[idx..idx + take].to_vec(),
            next: from + take as u64,
            ship_next: head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: u64) -> WalRecord {
        WalRecord::Submit {
            task,
            app: "grep".into(),
        }
    }

    #[test]
    fn cursors_walk_the_tail_in_order() {
        let ship = ShipLog::new(1);
        ship.push(0, &[rec(1), rec(2)]);
        ship.push(0, &[rec(3)]);
        let chunk = ship.pull(0, 0);
        assert!(chunk.snapshot.is_none());
        assert_eq!(chunk.frames, vec![rec(1), rec(2), rec(3)]);
        assert_eq!(chunk.next, 3);
        assert_eq!(chunk.ship_next, 3);
        // Caught up: an empty chunk, cursor unchanged.
        let chunk = ship.pull(0, 3);
        assert!(chunk.frames.is_empty());
        assert_eq!(chunk.next, 3);
    }

    #[test]
    fn trim_forces_snapshot_install_for_stale_cursors() {
        let ship = ShipLog::new(1);
        ship.push(0, &[rec(1), rec(2)]);
        ship.trim(0, "snap-a".into());
        ship.push(0, &[rec(3)]);
        // Cursor 1 predates the horizon (base is now 2): snapshot first,
        // then the post-trim frames.
        let chunk = ship.pull(0, 1);
        assert_eq!(chunk.snapshot.as_deref(), Some("snap-a"));
        assert_eq!(chunk.frames, vec![rec(3)]);
        assert_eq!(chunk.next, 3);
        // A caught-up cursor is served incrementally, no snapshot.
        let chunk = ship.pull(0, 2);
        assert!(chunk.snapshot.is_none());
        assert_eq!(chunk.frames, vec![rec(3)]);
    }

    #[test]
    fn fresh_follower_gets_a_snapshot_even_after_an_empty_trim() {
        // The boot-time compaction of an empty daemon trims zero frames;
        // base must still advance past 0 so cursor 0 takes the snapshot
        // path and installs the (empty) authoritative state.
        let ship = ShipLog::new(1);
        ship.trim(0, "boot".into());
        let chunk = ship.pull(0, 0);
        assert_eq!(chunk.snapshot.as_deref(), Some("boot"));
        assert_eq!(chunk.next, 1);
    }

    #[test]
    fn pulls_are_capped() {
        let ship = ShipLog::new(1);
        let many: Vec<WalRecord> = (0..MAX_PULL_FRAMES as u64 + 40).map(rec).collect();
        ship.push(0, &many);
        let chunk = ship.pull(0, 0);
        assert_eq!(chunk.frames.len(), MAX_PULL_FRAMES);
        assert_eq!(chunk.next, MAX_PULL_FRAMES as u64);
        assert_eq!(chunk.ship_next, many.len() as u64);
        let rest = ship.pull(0, chunk.next);
        assert_eq!(rest.frames.len(), 40);
        assert_eq!(rest.next, rest.ship_next);
    }

    #[test]
    fn out_of_range_shards_are_inert() {
        let ship = ShipLog::new(1);
        ship.push(9, &[rec(1)]);
        ship.trim(9, "x".into());
        let chunk = ship.pull(9, 5);
        assert!(chunk.snapshot.is_none() && chunk.frames.is_empty());
        assert_eq!(chunk.next, 5);
        assert_eq!(ship.next_seq(9), 0);
    }
}
