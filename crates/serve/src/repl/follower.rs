//! Follower-side replication: the pure pull/lease state machine
//! ([`FollowerCore`]) and the thread that drives it against a live
//! leader ([`run_follower`]), including automatic promotion.
//!
//! The core is deliberately free of clocks, sockets, and files — time is
//! a `u64` of caller-supplied milliseconds and replies arrive as decoded
//! chunks — so the deterministic [`crate::repl::sim`] harness and the
//! real thread run the exact same election/lease logic.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tracon_core::AppId;

use crate::client::Client;
use crate::json::Value;
use crate::proto::{ErrorKind, Reply, Request};
use crate::reactor::ShardMsg;
use crate::repl::{decode_pull_chunk, write_sidecar, EpochSidecar, ReplState, Role};
use crate::shard::{recover_dir, route_app, HomedTask};
use crate::wal::{self, Recovery, Wal};

/// Static configuration for a follower node.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The leader's protocol address (`--replica-of`).
    pub leader_addr: String,
    /// This node's own protocol address, echoed in pulls and used as the
    /// redirect target once promoted.
    pub self_addr: String,
    /// WAL directory (shard logs + `repl.epoch` sidecar).
    pub dir: PathBuf,
    /// Shard count (must match the leader's).
    pub shards: usize,
    /// Snapshot cadence handed to promoted WAL handles.
    pub snapshot_every: u64,
    /// Lease TTL: no successful pull for this long promotes the follower.
    pub ttl_ms: u64,
    /// Pull cadence.
    pub poll_ms: u64,
}

/// What the caller should do with one decoded pull reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkAction {
    /// Install the snapshot (if any) and append the frames.
    Apply {
        /// The leader's epoch advanced; persist it before applying.
        epoch_changed: bool,
    },
    /// The leader rebooted (boot nonce changed): cursors were reset to
    /// zero, discard this chunk and re-pull from scratch.
    Reset,
    /// Reply from an older epoch than one already observed; discard.
    Stale,
}

/// The pure follower state machine: epoch tracking, per-shard cursors,
/// and the leader lease.
#[derive(Debug)]
pub struct FollowerCore {
    epoch: u64,
    cursors: Vec<u64>,
    /// Boot nonce of the leader incarnation the cursors refer to.
    boot: Option<u64>,
    last_contact_ms: u64,
    ttl_ms: u64,
    /// At least one pull succeeded. A follower that never reached the
    /// leader may not promote: promotion safety rests on the claimed
    /// epoch exceeding the leader's, which requires having observed it.
    synced: bool,
}

impl FollowerCore {
    /// A fresh follower at `epoch` (its durable sidecar value; 0 for a
    /// brand-new node) whose lease clock starts at `now_ms`.
    pub fn new(shards: usize, epoch: u64, ttl_ms: u64, now_ms: u64) -> FollowerCore {
        FollowerCore {
            epoch,
            cursors: vec![0; shards.max(1)],
            boot: None,
            last_contact_ms: now_ms,
            ttl_ms,
            synced: false,
        }
    }

    /// Last observed leader epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One shard's pull cursor.
    pub fn cursor(&self, shard: usize) -> u64 {
        self.cursors.get(shard).copied().unwrap_or(0)
    }

    /// Send one shard's cursor home. Cursor 0 is always behind the
    /// leader's compaction horizon (the ship base never stays at 0), so
    /// the next pull answers with a full snapshot install — the scrub
    /// repair path uses exactly this to re-pull a quarantined shard.
    pub fn reset_cursor(&mut self, shard: usize) {
        if let Some(cursor) = self.cursors.get_mut(shard) {
            *cursor = 0;
        }
    }

    /// Whether a successful pull has ever happened.
    pub fn synced(&self) -> bool {
        self.synced
    }

    /// Build the next pull request for `shard`. The request advertises
    /// this follower's promotion TTL so the leader's write-suspension
    /// clock runs at least as fast as the promotion clock.
    pub fn pull_request(&self, shard: usize, self_addr: &str) -> Request {
        Request::ReplPull {
            epoch: self.epoch,
            shard,
            cursor: self.cursor(shard),
            addr: self_addr.to_string(),
            ttl_ms: self.ttl_ms,
        }
    }

    /// Digest one pull reply's header; mutates cursor/epoch/lease state
    /// and says what to do with the chunk body.
    pub fn on_chunk(
        &mut self,
        shard: usize,
        leader_epoch: u64,
        leader_boot: u64,
        next: u64,
        now_ms: u64,
    ) -> ChunkAction {
        if leader_epoch < self.epoch {
            return ChunkAction::Stale;
        }
        let epoch_changed = leader_epoch > self.epoch;
        let rebooted = self.boot.is_some_and(|b| b != leader_boot);
        self.boot = Some(leader_boot);
        self.epoch = leader_epoch;
        self.last_contact_ms = now_ms;
        self.synced = true;
        if rebooted {
            // Ship sequence numbers restart with the leader process;
            // cursors from the previous incarnation are meaningless.
            for cursor in &mut self.cursors {
                *cursor = 0;
            }
            return ChunkAction::Reset;
        }
        if let Some(cursor) = self.cursors.get_mut(shard) {
            *cursor = next;
        }
        ChunkAction::Apply { epoch_changed }
    }

    /// The leader's lease has lapsed: synced at least once and silent
    /// for the TTL.
    pub fn lease_lapsed(&self, now_ms: u64) -> bool {
        self.synced && now_ms.saturating_sub(self.last_contact_ms) >= self.ttl_ms
    }

    /// The epoch this node would claim on promotion: strictly greater
    /// than every epoch the old leader served at (it cannot have served
    /// at a higher one without this follower or its successor observing
    /// it — epochs only change on promotions, which are durably claimed
    /// before serving).
    pub fn claim_epoch(&self) -> u64 {
        self.epoch + 1
    }
}

/// Everything the follower thread borrows from the daemon.
pub(crate) struct FollowerRuntime {
    /// The follower's open WAL handles (one per shard); surrendered to
    /// the shard workers at promotion.
    pub wals: Vec<Wal>,
    /// Shared replication state.
    pub repl: Arc<ReplState>,
    /// Per-shard worker channels (for `ShardMsg::Promote`).
    pub shard_txs: Vec<Sender<ShardMsg>>,
    /// Profiled app name -> id, for recovery routing at promotion.
    pub app_ids: HashMap<String, AppId>,
    /// Daemon-wide shutdown flag.
    pub shutdown: Arc<AtomicBool>,
}

/// How often the follower re-walks its sealed WAL regions for bit rot.
const SCRUB_INTERVAL_MS: u64 = 500;

/// The follower replication thread: pull every shard each poll round,
/// append/install locally, scrub the local WAL for rot (repairing by
/// re-pulling the affected shard from the leader), and promote when the
/// leader's lease lapses. Returns when the daemon shuts down or after a
/// successful promotion; if the promoted leader is later fenced, the
/// daemon's rejoin supervisor demotes it back into this loop.
pub(crate) fn run_follower(cfg: FollowerConfig, rt: FollowerRuntime) {
    let FollowerRuntime {
        wals,
        repl,
        shard_txs,
        app_ids,
        shutdown,
    } = rt;
    let start = Instant::now();
    let mut core = FollowerCore::new(cfg.shards, repl.epoch(), cfg.ttl_ms.max(1), 0);
    let mut wals = wals;
    // Per-shard materialized mirror of the shipped stream (snapshot +
    // frames applied in order): what lets a caught-up follower compact
    // its own WAL instead of growing it for the life of the pair.
    let mut mirrors: Vec<Recovery> = wals.iter().map(|_| Recovery::default()).collect();
    // Shards whose local WAL was quarantined by a scrub and are waiting
    // for the snapshot re-install that completes the repair.
    let mut pending_repair: Vec<bool> = vec![false; wals.len()];
    let mut last_scrub_ms = 0u64;
    let mut leader = cfg.leader_addr.clone();
    let mut client: Option<Client> = None;
    let connect_timeout = Duration::from_millis(cfg.ttl_ms.clamp(100, 2_000));

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = start.elapsed().as_millis() as u64;
        if core.lease_lapsed(now) {
            promote(
                &cfg, &core, wals, &repl, &shard_txs, &app_ids, &shutdown, &leader,
            );
            return;
        }
        if now.saturating_sub(last_scrub_ms) >= SCRUB_INTERVAL_MS {
            last_scrub_ms = now;
            scrub_pass(&cfg, &repl, &mut core, &mut mirrors, &mut pending_repair);
        }

        if client.is_none() {
            client = Client::connect_with_timeout(&leader, connect_timeout).ok();
        }
        if let Some(conn) = client.as_mut() {
            let mut round_lag = 0u64;
            let mut drop_conn = false;
            for (shard, wal) in wals.iter_mut().enumerate() {
                let before = core.epoch();
                match conn.request(core.pull_request(shard, &cfg.self_addr)) {
                    Ok(Reply::Ok { result, .. }) => {
                        let Some((epoch, boot, rshard, chunk)) = decode_pull_chunk(&result) else {
                            drop_conn = true;
                            break;
                        };
                        if rshard != shard {
                            drop_conn = true;
                            break;
                        }
                        let now = start.elapsed().as_millis() as u64;
                        match core.on_chunk(shard, epoch, boot, chunk.next, now) {
                            ChunkAction::Apply { .. } => {
                                if core.epoch() != before {
                                    persist_epoch(&cfg.dir, core.epoch(), &leader, &repl);
                                }
                                let installed =
                                    apply_chunk(wal, &mut mirrors[shard], &chunk, shard, &repl);
                                if pending_repair[shard] {
                                    if installed {
                                        // The quarantined shard now holds
                                        // the leader's authoritative
                                        // snapshot: repair complete.
                                        pending_repair[shard] = false;
                                        let metrics = repl.metrics();
                                        metrics.scrub_repaired.fetch_add(1, Ordering::Relaxed);
                                        if !pending_repair.iter().any(|p| *p) {
                                            metrics.wal_degraded.store(0, Ordering::Relaxed);
                                        }
                                        eprintln!(
                                            "tracond event=scrub_repaired shard={shard} \
                                             source=\"peer snapshot install\""
                                        );
                                    } else if chunk.snapshot.is_some() {
                                        // The install itself failed; go
                                        // back to the snapshot path.
                                        core.reset_cursor(shard);
                                    }
                                }
                                round_lag =
                                    round_lag.max(chunk.ship_next.saturating_sub(chunk.next));
                            }
                            ChunkAction::Reset => {
                                if core.epoch() != before {
                                    persist_epoch(&cfg.dir, core.epoch(), &leader, &repl);
                                }
                                // Cursors went back to zero; the next
                                // round re-pulls from the snapshot.
                            }
                            ChunkAction::Stale => {}
                        }
                    }
                    Ok(Reply::Error {
                        kind: ErrorKind::NotLeader,
                        leader: hint,
                        ..
                    }) => {
                        // The node we poll is itself fenced or following;
                        // chase the hint (never ourselves).
                        if let Some(hint) = hint {
                            if let Some(addr) = hint.leader_addr {
                                if addr != cfg.self_addr {
                                    leader = addr;
                                    repl.set_leader_addr(Some(leader.clone()));
                                }
                            }
                        }
                        drop_conn = true;
                        break;
                    }
                    Ok(_) | Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }
            if drop_conn {
                client = None;
            } else {
                repl.metrics()
                    .repl_lag_frames
                    .store(round_lag, Ordering::Relaxed);
            }
        }

        // Sleep one poll interval in small slices so shutdown stays snappy.
        let mut slept = 0u64;
        let poll = cfg.poll_ms.max(1);
        while slept < poll {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let step = (poll - slept).min(25);
            std::thread::sleep(Duration::from_millis(step));
            slept += step;
        }
    }
}

/// Durably record an observed epoch, along with the leader we are
/// following (the boot-time probe target if this node restarts without
/// `--replica-of`). A failure is counted but not fatal for a *follower*
/// (promotion, by contrast, refuses to proceed).
fn persist_epoch(dir: &Path, epoch: u64, leader: &str, repl: &Arc<ReplState>) {
    let sidecar = EpochSidecar {
        epoch,
        role: Role::Follower,
        leader: Some(leader.to_string()),
        peer: None,
    };
    if write_sidecar(dir, &sidecar).is_err() {
        repl.metrics().wal_errors.fetch_add(1, Ordering::Relaxed);
    }
    repl.observe_epoch(epoch);
}

/// Install the snapshot (if any) and append the frames to one shard WAL,
/// mirroring the leader-side counters. The materialized `mirror` tracks
/// the same stream so that, once enough frames accumulate, the follower
/// compacts its own WAL locally — a healthy pair never crosses the
/// leader's compaction horizon, so without this the follower's log (and
/// its promotion replay time) would grow for the life of the pair.
///
/// Returns `true` when the chunk carried a snapshot blob and it was
/// installed successfully (the signal the scrub-repair path waits on).
fn apply_chunk(
    wal: &mut Wal,
    mirror: &mut Recovery,
    chunk: &crate::repl::PullChunk,
    shard: usize,
    repl: &Arc<ReplState>,
) -> bool {
    let metrics = repl.metrics();
    let mut installed = false;
    if let Some(blob) = &chunk.snapshot {
        let injected = crate::failpoint::armed()
            && crate::failpoint::should_fail("repl.follower.install", &shard.to_string()).is_some();
        if !injected && wal.install_snapshot_blob(blob).is_ok() {
            metrics.wal_snapshots.fetch_add(1, Ordering::Relaxed);
            installed = true;
            // The install truncated the log: the mirror restarts from
            // exactly the installed document.
            *mirror = Recovery::default();
            if wal::decode_snapshot(blob, mirror).is_err() {
                metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    if !chunk.frames.is_empty() {
        match wal.append_batch(&chunk.frames) {
            Ok(()) => {
                for frame in &chunk.frames {
                    wal::apply(mirror, frame.clone(), shard);
                }
                metrics
                    .wal_records
                    .fetch_add(chunk.frames.len() as u64, Ordering::Relaxed);
                metrics.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    if wal.snapshot_due() {
        let next = mirror
            .tasks
            .iter()
            .map(|t| t.task + 1)
            .max()
            .unwrap_or(0)
            .max(mirror.next_task_id);
        mirror.next_task_id = next;
        if wal.snapshot(&mirror.tasks, next).is_ok() {
            metrics.wal_snapshots.fetch_add(1, Ordering::Relaxed);
        } else {
            metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    installed
}

/// One scrub pass over every shard's sealed WAL region. A shard with rot
/// (mid-file CRC mismatch, implausible frame length, or an unparseable
/// snapshot) is quarantined on the spot — the log is truncated at the
/// corrupt offset — and queued for repair: the materialized mirror and
/// the pull cursor both reset so the next pull re-installs the leader's
/// authoritative snapshot wholesale. The live `Wal` handle stays valid
/// across the truncation because its fd is `O_APPEND`: the next append
/// lands at the new (clean-boundary) end of file.
fn scrub_pass(
    cfg: &FollowerConfig,
    repl: &Arc<ReplState>,
    core: &mut FollowerCore,
    mirrors: &mut [Recovery],
    pending_repair: &mut [bool],
) {
    let metrics = repl.metrics();
    metrics.scrub_runs.fetch_add(1, Ordering::Relaxed);
    for shard in 0..mirrors.len() {
        let Ok(report) = wal::scrub_shard(&cfg.dir, shard) else {
            continue;
        };
        if report.clean() {
            continue;
        }
        if let Some(at) = report.corrupt_at {
            let _ = wal::quarantine_shard(&cfg.dir, shard, at);
        }
        mirrors[shard] = Recovery::default();
        core.reset_cursor(shard);
        if !pending_repair[shard] {
            // First detection for this shard: count it and raise the
            // degraded gauge. A corrupt *snapshot* keeps scrubbing dirty
            // until the re-install overwrites it — gate the counters on
            // the repair flag so one incident is one increment.
            pending_repair[shard] = true;
            metrics
                .scrub_corrupt_frames
                .fetch_add(report.corrupt_count(), Ordering::Relaxed);
            metrics.wal_degraded.store(1, Ordering::Relaxed);
            eprintln!(
                "tracond event=scrub_corrupt shard={shard} frames_ok={} quarantined_bytes={} \
                 snapshot_corrupt={} action=\"re-pull from leader\"",
                report.frames_ok, report.quarantined_bytes, report.snapshot_corrupt
            );
        }
    }
}

/// Take over: durably claim `epoch+1`, replay the shipped WALs through
/// merged recovery, hand every shard worker its state and WAL handle,
/// flip the shared role to leader (last, with Release ordering), and
/// best-effort fence the old leader.
#[allow(clippy::too_many_arguments)]
fn promote(
    cfg: &FollowerConfig,
    core: &FollowerCore,
    wals: Vec<Wal>,
    repl: &Arc<ReplState>,
    shard_txs: &[Sender<ShardMsg>],
    app_ids: &HashMap<String, AppId>,
    shutdown: &Arc<AtomicBool>,
    old_leader: &str,
) {
    let new_epoch = core.claim_epoch();
    // Release the file handles before recovery reopens them.
    drop(wals);
    let shards = cfg.shards;
    let route = |name: &str| app_ids.get(name).map(|&id| route_app(id, shards));
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The epoch claim must be durable BEFORE any request is served
        // under it: a power cut between promotion and the first serve
        // must come back as (at least) this epoch, or a concurrently
        // promoted peer could be outranked by our zombie. The deposed
        // leader goes in as the peer so a reboot of THIS node probes it
        // before re-claiming.
        let claim = EpochSidecar {
            epoch: new_epoch,
            role: Role::Leader,
            leader: Some(cfg.self_addr.clone()),
            peer: Some(old_leader.to_string()),
        };
        if write_sidecar(&cfg.dir, &claim).is_err() {
            repl.metrics().wal_errors.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        let recovered = recover_dir(&cfg.dir, shards, cfg.snapshot_every, &route);
        let (new_wals, recovery) = match recovered {
            Ok(pair) => pair,
            Err(_) => {
                repl.metrics().wal_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(100));
                continue;
            }
        };
        repl.metrics()
            .wal_replayed_records
            .fetch_add(recovery.replayed_records, Ordering::Relaxed);
        for (shard, wal) in new_wals.into_iter().enumerate() {
            let tasks: Vec<HomedTask> = recovery
                .tasks
                .iter()
                .filter(|t| t.home == shard)
                .cloned()
                .collect();
            let _ = shard_txs[shard].send(ShardMsg::Promote {
                wal,
                tasks,
                next_task_id: recovery.next_task_id,
            });
        }
        // Role flip last: a reactor that observes Leader (Acquire) is
        // guaranteed the Promote messages are already in each shard's
        // FIFO ahead of any request it routes afterwards.
        repl.promote(new_epoch, Some(cfg.self_addr.clone()));
        repl.set_peer(Some(old_leader.to_string()));
        repl.metrics().repl_lag_frames.store(0, Ordering::Relaxed);
        // Fence the predecessor. Safety does not depend on this
        // arriving — the old leader suspends its own writes once our
        // pulls stop, fences on any higher-epoch pull, and probes us at
        // its next boot — but an acknowledged fence converges client
        // redirects in one round trip instead of a TTL.
        fence_predecessor(old_leader, new_epoch, &cfg.self_addr, cfg.ttl_ms, shutdown);
        return;
    }
}

/// How many times a freshly promoted leader re-sends its `repl_lease`
/// to the predecessor before giving up (the boot-time probe covers a
/// predecessor that is down for longer than this).
const FENCE_ATTEMPTS: u32 = 8;

/// Re-send `repl_lease` to the deposed leader, spaced about one TTL
/// apart, until it acknowledges being outranked or the attempts run
/// out. Bounded on purpose: the predecessor's port may be reassigned to
/// an unrelated process after it dies, so this must not retry forever.
fn fence_predecessor(
    old_leader: &str,
    epoch: u64,
    self_addr: &str,
    ttl_ms: u64,
    shutdown: &Arc<AtomicBool>,
) {
    let pause_ms = ttl_ms.clamp(100, 2_000);
    for attempt in 0..FENCE_ATTEMPTS {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(mut conn) = Client::connect_with_timeout(old_leader, Duration::from_millis(500)) {
            if let Ok(Reply::Ok { result, .. }) = conn.request(Request::ReplLease {
                epoch,
                leader_addr: self_addr.to_string(),
            }) {
                if lease_acknowledged(&result, epoch) {
                    return;
                }
            }
        }
        if attempt + 1 == FENCE_ATTEMPTS {
            return;
        }
        // Sleep in slices so daemon shutdown is never held up by this.
        let mut slept = 0u64;
        while slept < pause_ms {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let step = (pause_ms - slept).min(25);
            std::thread::sleep(Duration::from_millis(step));
            slept += step;
        }
    }
}

/// Whether a `repl_lease` reply proves the receiver stepped down: it
/// reports at least the claimed epoch under a non-leader role. Anything
/// else (older epoch, still "leader", malformed) means the fence has
/// not landed.
fn lease_acknowledged(result: &Value, claimed: u64) -> bool {
    let epoch_ok = result
        .get("epoch")
        .and_then(Value::as_u64)
        .is_some_and(|epoch| epoch >= claimed);
    let stepped_down = result
        .get("role")
        .and_then(Value::as_str)
        .is_some_and(|role| role != Role::Leader.as_str());
    epoch_ok && stepped_down
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_renews_on_chunks_and_lapses_when_silent() {
        let mut core = FollowerCore::new(1, 0, 100, 0);
        // Never synced: silence alone must NOT promote.
        assert!(!core.lease_lapsed(10_000));
        // First contact observes epoch 1 (we booted at 0): persist it.
        assert_eq!(
            core.on_chunk(0, 1, 7, 5, 50),
            ChunkAction::Apply {
                epoch_changed: true
            }
        );
        assert_eq!(core.cursor(0), 5);
        assert!(!core.lease_lapsed(149));
        assert!(core.lease_lapsed(150));
        assert_eq!(
            core.on_chunk(0, 1, 7, 9, 200),
            ChunkAction::Apply {
                epoch_changed: false
            }
        );
        assert!(!core.lease_lapsed(299));
        assert_eq!(core.claim_epoch(), 2);
    }

    #[test]
    fn older_epochs_are_dropped() {
        let mut core = FollowerCore::new(1, 5, 100, 0);
        assert_eq!(core.on_chunk(0, 4, 7, 9, 10), ChunkAction::Stale);
        assert_eq!(core.cursor(0), 0, "stale chunk must not move the cursor");
        assert!(!core.synced(), "stale contact must not arm the lease");
    }

    #[test]
    fn lease_ack_requires_the_claimed_epoch_and_a_stepped_down_role() {
        let ok = crate::json::parse(r#"{"epoch":5,"role":"fenced"}"#).unwrap();
        assert!(lease_acknowledged(&ok, 5));
        assert!(lease_acknowledged(&ok, 4));
        // Higher epoch than claimed still acks (someone outranked us too,
        // but the predecessor is certainly not serving at OUR epoch).
        let higher = crate::json::parse(r#"{"epoch":9,"role":"follower"}"#).unwrap();
        assert!(lease_acknowledged(&higher, 5));
        // Still leading, older epoch, or malformed: not acknowledged.
        let leading = crate::json::parse(r#"{"epoch":5,"role":"leader"}"#).unwrap();
        assert!(!lease_acknowledged(&leading, 5));
        let stale = crate::json::parse(r#"{"epoch":4,"role":"fenced"}"#).unwrap();
        assert!(!lease_acknowledged(&stale, 5));
        let junk = crate::json::parse(r#"{"ok":true}"#).unwrap();
        assert!(!lease_acknowledged(&junk, 1));
    }

    /// REVIEW fix: a caught-up follower must compact its own WAL instead
    /// of appending forever — the mirror replay must produce a snapshot
    /// that a later recovery agrees with.
    #[test]
    fn a_caught_up_follower_compacts_its_wal_locally() {
        use crate::metrics::Metrics;
        use crate::repl::{PullChunk, ShipLog};
        use crate::wal::WalRecord;

        let dir =
            std::env::temp_dir().join(format!("tracon-follower-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let metrics = Arc::new(Metrics::new());
        let repl = Arc::new(ReplState::new(
            Role::Follower,
            1,
            None,
            Arc::new(ShipLog::new(1)),
            Arc::clone(&metrics),
            Some(dir.clone()),
            1,
        ));
        let (mut wal, _) = Wal::open_shard(&dir, 0, 4).unwrap();
        let mut mirror = Recovery::default();

        // Ship 3 tasks + 3 completions in caught-up-sized chunks: enough
        // records to trip the snapshot_every=4 cadence at least once.
        for task in 0..3u64 {
            let chunk = PullChunk {
                snapshot: None,
                frames: vec![
                    WalRecord::Submit {
                        task,
                        app: "grep".into(),
                    },
                    WalRecord::Complete { task, runtime: 1.0 },
                ],
                next: (task + 1) * 2,
                ship_next: (task + 1) * 2,
            };
            apply_chunk(&mut wal, &mut mirror, &chunk, 0, &repl);
        }
        assert!(
            metrics.wal_snapshots.load(Ordering::Relaxed) >= 1,
            "no local compaction happened"
        );
        assert!(
            !wal.snapshot_due(),
            "compaction must reset the records-since-snapshot counter"
        );
        drop(wal);

        // A recovery of the compacted directory sees the same world the
        // mirror does: all 3 tasks completed, ids not reused.
        let (_, recovered) = Wal::open_shard(&dir, 0, 4).unwrap();
        assert_eq!(recovered.tasks.len(), 3);
        assert_eq!(recovered.next_task_id, 3);
        assert!(
            recovered.replayed_records < 6,
            "log was never truncated: all {} records replayed",
            recovered.replayed_records
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leader_reboot_resets_cursors() {
        let mut core = FollowerCore::new(2, 0, 100, 0);
        core.on_chunk(0, 1, 7, 40, 10);
        core.on_chunk(1, 1, 7, 12, 10);
        assert_eq!((core.cursor(0), core.cursor(1)), (40, 12));
        // Same epoch, new boot nonce: a restarted leader whose ship
        // numbering restarted — both cursors go home.
        assert_eq!(core.on_chunk(0, 1, 8, 3, 20), ChunkAction::Reset);
        assert_eq!((core.cursor(0), core.cursor(1)), (0, 0));
        // And the next chunk from the new incarnation applies normally.
        assert_eq!(
            core.on_chunk(0, 1, 8, 3, 30),
            ChunkAction::Apply {
                epoch_changed: false
            }
        );
        assert_eq!(core.cursor(0), 3);
    }
}
