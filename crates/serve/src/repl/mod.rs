//! Leader/follower replication for tracond: WAL shipping, lease-based
//! leader election, and epoch fencing.
//!
//! The topology is a warm-standby pair (or chain): one **leader** serves
//! all mutating traffic and appends to its per-shard WALs exactly as a
//! standalone daemon would; each shard worker additionally pushes every
//! group-committed batch into an in-memory [`ShipLog`]. A **follower**
//! (started with `--replica-of ADDR`) runs the same daemon minus
//! mutations: it polls the leader with `repl_pull` requests over the
//! ordinary NDJSON protocol, appends the returned frames to its own
//! WALs, and installs compacted snapshots when it falls behind the
//! leader's compaction horizon. Non-leader nodes answer `submit` and
//! `complete` with a structured `not-leader` error carrying the leader's
//! address and epoch so clients can redirect.
//!
//! **Leases and promotion.** Every successful pull renews the follower's
//! view of the leader's lease. When no pull succeeds for the lease TTL,
//! the follower promotes itself: it durably bumps the **epoch**
//! (fsync'd to `repl.epoch` in the WAL directory *before* serving any
//! request), replays its shipped WALs through the ordinary merged
//! recovery, hands each shard worker its recovered state, and starts
//! answering as the leader. A stale leader that comes back learns the
//! new epoch from the first `repl_lease` or higher-epoch `repl_pull` it
//! sees and **fences** itself: it stops mutating and redirects clients
//! to the new leader. Epochs only ever grow, and a promoted follower's
//! epoch is strictly greater than any epoch the old leader served at,
//! so a partitioned stale leader can never outrank the promotion.
//!
//! The [`sim`] harness runs the same protocol state machines over
//! seeded in-process links (drops, delays, duplicates, partitions — no
//! sockets) so election safety, log matching, and conservation across
//! failover are fast deterministic unit properties.

pub mod follower;
pub mod guard;
pub mod ship;
pub mod sim;

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{n, obj, s, Value};
use crate::metrics::Metrics;
use crate::wal::WalRecord;

pub use follower::{ChunkAction, FollowerConfig, FollowerCore};
pub use guard::{LeaderGuard, PullAdmission};
pub use ship::{PullChunk, ShipLog, MAX_PULL_FRAMES};

/// A node's replication role. The numeric values are the wire/metrics
/// encoding (`tracond_repl_role`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Role {
    /// Serving mutations and shipping WAL frames.
    Leader = 0,
    /// Pulling frames from the leader; mutations are redirected.
    Follower = 1,
    /// A deposed leader: a higher epoch exists, all mutations are
    /// redirected to it until the operator restarts this node.
    Fenced = 2,
}

impl Role {
    /// Stable lowercase name (used in the epoch sidecar and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Leader => "leader",
            Role::Follower => "follower",
            Role::Fenced => "fenced",
        }
    }

    fn from_u8(raw: u8) -> Role {
        match raw {
            0 => Role::Leader,
            1 => Role::Follower,
            _ => Role::Fenced,
        }
    }

    /// Parse a sidecar/wire role name; `None` for anything unknown.
    pub fn parse(name: &str) -> Option<Role> {
        match name {
            "leader" => Some(Role::Leader),
            "follower" => Some(Role::Follower),
            "fenced" => Some(Role::Fenced),
            _ => None,
        }
    }
}

/// Shared replication state: the node's role, epoch, leader hint, and
/// ship log. One instance lives behind an `Arc` shared by the reactor
/// (gating + serving pulls), the shard workers (shipping), and the
/// follower thread (pulling + promotion).
pub struct ReplState {
    role: AtomicU8,
    epoch: AtomicU64,
    leader_addr: Mutex<Option<String>>,
    /// The replication peer this node most recently paired with: the
    /// registered follower on a leader, the deposed leader on a promoted
    /// node. Persisted in the sidecar so a rebooted leader knows whom to
    /// probe before serving.
    peer: Mutex<Option<String>>,
    ship: Arc<ShipLog>,
    metrics: Arc<Metrics>,
    /// WAL directory holding the `repl.epoch` sidecar (`None` only in
    /// WAL-less simulation harnesses).
    dir: Option<PathBuf>,
    /// This leader incarnation's boot nonce; followers reset their
    /// cursors when it changes, because ship sequence numbers restart
    /// with the process.
    boot: u64,
}

impl ReplState {
    /// Build the shared state; gauges are synced immediately.
    pub fn new(
        role: Role,
        epoch: u64,
        leader_addr: Option<String>,
        ship: Arc<ShipLog>,
        metrics: Arc<Metrics>,
        dir: Option<PathBuf>,
        boot: u64,
    ) -> ReplState {
        metrics
            .repl_role
            .store(role as u8 as u64, Ordering::Relaxed);
        metrics.repl_epoch.store(epoch, Ordering::Relaxed);
        ReplState {
            role: AtomicU8::new(role as u8),
            epoch: AtomicU64::new(epoch),
            leader_addr: Mutex::new(leader_addr),
            peer: Mutex::new(None),
            ship,
            metrics,
            dir,
            boot,
        }
    }

    /// Current role. Acquire pairs with the Release in [`Self::set_role`]
    /// so a reactor that observes `Leader` also observes everything the
    /// promotion published before the flip (the per-shard `Promote`
    /// messages are sent first, and channel sends are themselves
    /// release-ordered with respect to the worker's receive).
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire))
    }

    /// Flip the role (Release; see [`Self::role`]).
    pub fn set_role(&self, role: Role) {
        self.role.store(role as u8, Ordering::Release);
        self.metrics
            .repl_role
            .store(role as u8 as u64, Ordering::Relaxed);
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Raise the epoch (it never goes backwards) and sync the gauge.
    pub fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.metrics
            .repl_epoch
            .store(self.epoch.load(Ordering::Acquire), Ordering::Relaxed);
    }

    /// The best-known leader address (for `not-leader` redirects).
    pub fn leader_addr(&self) -> Option<String> {
        self.leader_addr
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Update the leader hint.
    pub fn set_leader_addr(&self, addr: Option<String>) {
        *self
            .leader_addr
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = addr;
    }

    /// The recorded replication peer, if any.
    pub fn peer(&self) -> Option<String> {
        self.peer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Set the peer hint in memory only (boot-time load from the sidecar).
    pub fn set_peer(&self, addr: Option<String>) {
        *self
            .peer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = addr;
    }

    /// Record a newly paired peer and persist it into the sidecar, so a
    /// crashed-and-rebooted leader knows whom to probe before serving.
    pub fn record_peer(&self, addr: &str) {
        self.set_peer(Some(addr.to_string()));
        self.persist(self.role());
    }

    /// Adopt a higher epoch and leader hint *without* fencing — how a
    /// non-leader node digests a `repl_lease` so its redirects converge
    /// on the claimant immediately.
    pub fn observe_leader(&self, epoch: u64, leader: Option<String>) {
        self.observe_epoch(epoch);
        if leader.is_some() {
            self.set_leader_addr(leader);
        }
    }

    /// Durably rewrite the sidecar from current state under `role`;
    /// failures are counted, not fatal (the caller decides whether
    /// durability is a hard requirement — promotion persists *before*
    /// flipping state and uses [`write_sidecar`] directly).
    fn persist(&self, role: Role) {
        if let Some(dir) = &self.dir {
            let sidecar = EpochSidecar {
                epoch: self.epoch(),
                role,
                leader: self.leader_addr(),
                peer: self.peer(),
            };
            if write_sidecar(dir, &sidecar).is_err() {
                self.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The shared ship log.
    pub fn ship(&self) -> &Arc<ShipLog> {
        &self.ship
    }

    /// The shared metrics handle.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// This incarnation's boot nonce.
    pub fn boot(&self) -> u64 {
        self.boot
    }

    /// Step down: a higher (or equal, from a newer claimant) epoch
    /// exists. Adopts the epoch, records the new leader for redirects,
    /// persists the observed epoch best-effort, and flips to
    /// [`Role::Fenced`] last so mutation gating engages only after the
    /// redirect hint is in place.
    pub fn fence(&self, epoch: u64, leader: Option<String>) {
        self.observe_epoch(epoch);
        if leader.is_some() {
            self.set_leader_addr(leader);
        }
        // The persisted sidecar keeps the leader hint and peer too, so a
        // fenced node that reboots comes back fenced and still knows
        // where to redirect clients.
        self.persist(Role::Fenced);
        self.set_role(Role::Fenced);
    }

    /// Take over as leader at `epoch` (already durably claimed by the
    /// caller). The role flip is last: everything the new leader
    /// published before this call is visible to a reactor that sees
    /// `Leader`.
    pub fn promote(&self, epoch: u64, self_addr: Option<String>) {
        self.observe_epoch(epoch);
        self.set_leader_addr(self_addr);
        self.set_role(Role::Leader);
    }

    /// Self-healing rejoin: a fenced ex-leader that confirmed a live
    /// leader demotes into its follower. The Follower role is persisted
    /// *before* the in-memory flip (same discipline as [`Self::fence`]),
    /// so a crash mid-rejoin reboots as a follower of the recorded
    /// leader instead of re-entering the fence/probe cycle.
    pub fn demote_to_follower(&self, leader: String) {
        self.set_leader_addr(Some(leader));
        self.persist(Role::Follower);
        self.set_role(Role::Follower);
    }
}

/// Name of the durable epoch sidecar inside the WAL directory.
pub const EPOCH_FILE: &str = "repl.epoch";

/// The durable replication sidecar: the claimed/observed epoch plus the
/// role this node last held and its last known leader and peer
/// addresses. Role and addresses let a rebooted node avoid the
/// split-brain trap of blindly re-claiming leadership: a node that was
/// fenced comes back fenced, and a node that led probes its recorded
/// peer before serving mutations again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSidecar {
    /// The durable epoch (0 = never replicated).
    pub epoch: u64,
    /// The role this node last persisted under.
    pub role: Role,
    /// Last known leader address (redirect hint for fenced/follower
    /// boots).
    pub leader: Option<String>,
    /// The replication peer (the follower, seen from the leader; the
    /// deposed leader, seen from a promoted node).
    pub peer: Option<String>,
}

impl Default for EpochSidecar {
    fn default() -> EpochSidecar {
        EpochSidecar {
            epoch: 0,
            // A node with no sidecar (or a pre-role sidecar) has never
            // been fenced, which is what booting as leader relied on.
            role: Role::Leader,
            leader: None,
            peer: None,
        }
    }
}

/// Read the full sidecar from `dir`; all defaults when absent or
/// unreadable (a fresh node).
pub fn read_sidecar(dir: &Path) -> EpochSidecar {
    let Ok(text) = std::fs::read_to_string(dir.join(EPOCH_FILE)) else {
        return EpochSidecar::default();
    };
    let Ok(doc) = crate::json::parse(&text) else {
        return EpochSidecar::default();
    };
    let grab = |key: &str| {
        doc.get(key)
            .and_then(Value::as_str)
            .filter(|v| !v.is_empty())
            .map(str::to_string)
    };
    EpochSidecar {
        epoch: doc.get("epoch").and_then(Value::as_u64).unwrap_or(0),
        role: doc
            .get("role")
            .and_then(Value::as_str)
            .and_then(Role::parse)
            .unwrap_or(Role::Leader),
        leader: grab("leader"),
        peer: grab("peer"),
    }
}

/// Read the durable replication epoch from `dir`; 0 when the sidecar is
/// absent or unreadable (a fresh node).
pub fn read_epoch(dir: &Path) -> u64 {
    read_sidecar(dir).epoch
}

/// Durably persist the replication sidecar: write to a temp file, fsync,
/// rename over the sidecar, fsync the directory — the same discipline as
/// snapshot installs, so a claimed epoch survives power loss before any
/// request is served under it. The temp name carries a sequence number
/// so two writers (follower thread vs reactor fence) cannot interleave
/// inside one temp file; last rename wins whole.
pub fn write_sidecar(dir: &Path, sidecar: &EpochSidecar) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if crate::failpoint::armed()
        && crate::failpoint::should_fail("repl.sidecar", &dir.to_string_lossy()).is_some()
    {
        return Err(crate::failpoint::injected_error("repl.sidecar"));
    }
    std::fs::create_dir_all(dir)?;
    let mut pairs = vec![
        ("epoch", n(sidecar.epoch as f64)),
        ("role", s(sidecar.role.as_str())),
    ];
    if let Some(leader) = &sidecar.leader {
        pairs.push(("leader", s(leader.clone())));
    }
    if let Some(peer) = &sidecar.peer {
        pairs.push(("peer", s(peer.clone())));
    }
    let doc = obj(pairs).to_string();
    let tmp = dir.join(format!(
        "repl.epoch.{}.tmp",
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(doc.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(EPOCH_FILE))?;
    if let Ok(dirf) = std::fs::File::open(dir) {
        let _ = dirf.sync_data();
    }
    Ok(())
}

/// Persist epoch and role only (no leader/peer hints) — the minimal
/// sidecar write used by tests and simple callers.
pub fn write_epoch(dir: &Path, epoch: u64, role: Role) -> io::Result<()> {
    write_sidecar(
        dir,
        &EpochSidecar {
            epoch,
            role,
            leader: None,
            peer: None,
        },
    )
}

/// Render a `repl_pull` reply payload: epoch, boot nonce, shard, the
/// optional snapshot blob, the frame array, and the cursor bounds.
pub fn encode_pull_chunk(epoch: u64, boot: u64, shard: usize, chunk: &PullChunk) -> Value {
    let mut pairs: Vec<(&str, Value)> = vec![
        ("epoch", n(epoch as f64)),
        ("boot", n(boot as f64)),
        ("shard", n(shard as f64)),
    ];
    if let Some(blob) = &chunk.snapshot {
        pairs.push(("snapshot", s(blob.clone())));
    }
    pairs.push((
        "frames",
        Value::Arr(chunk.frames.iter().map(WalRecord::encode).collect()),
    ));
    pairs.push(("next", n(chunk.next as f64)));
    pairs.push(("ship_next", n(chunk.ship_next as f64)));
    obj(pairs)
}

/// Decode a `repl_pull` reply payload back into `(epoch, boot, shard,
/// chunk)`; `None` for structurally invalid documents (including any
/// frame that is not a well-formed WAL record — a partial chunk would
/// silently diverge the follower, so the whole reply is rejected).
pub fn decode_pull_chunk(result: &Value) -> Option<(u64, u64, usize, PullChunk)> {
    let epoch = result.get("epoch").and_then(Value::as_u64)?;
    let boot = result.get("boot").and_then(Value::as_u64)?;
    let shard = result.get("shard").and_then(Value::as_u64)? as usize;
    let next = result.get("next").and_then(Value::as_u64)?;
    let ship_next = result.get("ship_next").and_then(Value::as_u64)?;
    let snapshot = match result.get("snapshot") {
        None => None,
        Some(v) => Some(v.as_str()?.to_string()),
    };
    let mut frames = Vec::new();
    if let Some(Value::Arr(items)) = result.get("frames") {
        frames.reserve(items.len());
        for item in items {
            frames.push(WalRecord::decode(item)?);
        }
    }
    Some((
        epoch,
        boot,
        shard,
        PullChunk {
            snapshot,
            frames,
            next,
            ship_next,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracon-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn epoch_sidecar_roundtrips_and_defaults_to_zero() {
        let dir = tmpdir("epoch");
        assert_eq!(read_epoch(&dir), 0);
        assert_eq!(read_sidecar(&dir), EpochSidecar::default());
        write_epoch(&dir, 7, Role::Leader).unwrap();
        assert_eq!(read_epoch(&dir), 7);
        assert_eq!(read_sidecar(&dir).role, Role::Leader);
        write_epoch(&dir, 9, Role::Fenced).unwrap();
        assert_eq!(read_epoch(&dir), 9);
        assert_eq!(read_sidecar(&dir).role, Role::Fenced);
        // Garbage in the sidecar reads as a fresh node, not a panic.
        std::fs::write(dir.join(EPOCH_FILE), b"not json").unwrap();
        assert_eq!(read_epoch(&dir), 0);
        assert_eq!(read_sidecar(&dir).role, Role::Leader);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_keeps_role_and_addresses_across_a_reboot() {
        let dir = tmpdir("sidecar");
        let full = EpochSidecar {
            epoch: 4,
            role: Role::Fenced,
            leader: Some("10.0.0.2:7400".into()),
            peer: Some("10.0.0.3:7400".into()),
        };
        write_sidecar(&dir, &full).unwrap();
        assert_eq!(read_sidecar(&dir), full);
        // A pre-role sidecar (epoch only) still parses, defaulting to the
        // historical boot-as-leader behavior.
        std::fs::write(dir.join(EPOCH_FILE), b"{\"epoch\":3}").unwrap();
        assert_eq!(
            read_sidecar(&dir),
            EpochSidecar {
                epoch: 3,
                ..EpochSidecar::default()
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observe_leader_adopts_epoch_and_hint_without_fencing() {
        let state = ReplState::new(
            Role::Follower,
            3,
            Some("old:1".into()),
            Arc::new(ShipLog::new(1)),
            Arc::new(Metrics::new()),
            None,
            1,
        );
        state.observe_leader(5, Some("new:2".into()));
        assert_eq!(state.role(), Role::Follower, "observation must not fence");
        assert_eq!(state.epoch(), 5);
        assert_eq!(state.leader_addr().as_deref(), Some("new:2"));
        // A stale observation neither regresses the epoch nor (with no
        // hint) clears the address.
        state.observe_leader(4, None);
        assert_eq!(state.epoch(), 5);
        assert_eq!(state.leader_addr().as_deref(), Some("new:2"));
    }

    #[test]
    fn pull_chunk_roundtrips_through_the_wire_shape() {
        let chunk = PullChunk {
            snapshot: Some("{\"v\":1}".into()),
            frames: vec![
                WalRecord::Submit {
                    task: 3,
                    app: "grep".into(),
                },
                WalRecord::Complete {
                    task: 3,
                    runtime: 1.5,
                },
            ],
            next: 12,
            ship_next: 40,
        };
        let value = encode_pull_chunk(5, 99, 1, &chunk);
        // Through the real parser, as the wire would deliver it.
        let parsed = crate::json::parse(&value.to_string()).unwrap();
        let (epoch, boot, shard, back) = decode_pull_chunk(&parsed).unwrap();
        assert_eq!((epoch, boot, shard), (5, 99, 1));
        assert_eq!(back, chunk);

        let plain = PullChunk {
            snapshot: None,
            frames: Vec::new(),
            next: 0,
            ship_next: 0,
        };
        let parsed = crate::json::parse(&encode_pull_chunk(1, 2, 0, &plain).to_string()).unwrap();
        assert_eq!(decode_pull_chunk(&parsed).unwrap().3, plain);
    }

    #[test]
    fn corrupt_frames_reject_the_whole_chunk() {
        let chunk = PullChunk {
            snapshot: None,
            frames: vec![WalRecord::Submit {
                task: 1,
                app: "a".into(),
            }],
            next: 1,
            ship_next: 1,
        };
        let mut value = encode_pull_chunk(1, 1, 0, &chunk);
        if let Value::Obj(pairs) = &mut value {
            for (k, v) in pairs.iter_mut() {
                if k == "frames" {
                    *v = Value::Arr(vec![obj(vec![("op", s("no-such-op"))])]);
                }
            }
        }
        assert!(decode_pull_chunk(&value).is_none());
    }

    #[test]
    fn fence_is_sticky_and_epochs_never_regress() {
        let metrics = Arc::new(Metrics::new());
        let state = ReplState::new(
            Role::Leader,
            3,
            None,
            Arc::new(ShipLog::new(1)),
            Arc::clone(&metrics),
            None,
            1,
        );
        state.fence(5, Some("10.0.0.2:4000".into()));
        assert_eq!(state.role(), Role::Fenced);
        assert_eq!(state.epoch(), 5);
        assert_eq!(state.leader_addr().as_deref(), Some("10.0.0.2:4000"));
        // An older epoch cannot drag the counter back down.
        state.observe_epoch(2);
        assert_eq!(state.epoch(), 5);
        assert_eq!(
            metrics.repl_role.load(std::sync::atomic::Ordering::Relaxed),
            Role::Fenced as u8 as u64
        );
    }
}
