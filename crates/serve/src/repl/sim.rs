//! Deterministic in-process replication harness: real [`Service`] shards
//! on the leader, the real [`FollowerCore`] on the follower, and a
//! seeded virtual network in between — no sockets, no sleeps, no wall
//! clock. Links drop, delay, duplicate, and partition messages under a
//! splitmix64 RNG, so every interleaving is a replayable seed and
//! election safety / log matching / conservation-across-failover are
//! ordinary unit properties (dslab-mp style).
//!
//! Time is a virtual millisecond counter; the `Service` instances see it
//! as a fixed `Instant` base plus the virtual offset, so lease and
//! backoff arithmetic run unmodified.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use tracon_dcsim::{Testbed, TestbedConfig};

use crate::metrics::Metrics;
use crate::repl::{ChunkAction, FollowerCore, LeaderGuard, PullChunk, ReplState, Role, ShipLog};
use crate::shard::{route_app, shard_machines};
use crate::state::{SchedKind, ServeConfig, Service, StatusSnapshot};
use crate::wal::{self, Recovery};

/// The shared profiled testbed: building one takes real calibration
/// work, so every sim in the process reuses a single instance.
fn testbed() -> &'static Testbed {
    static TESTBED: OnceLock<Testbed> = OnceLock::new();
    TESTBED.get_or_init(|| {
        let mut cfg = TestbedConfig::small();
        cfg.calibration_points = 6;
        cfg.time_scale = 0.05;
        Testbed::build(&cfg)
    })
}

/// Splitmix64: tiny, seedable, and plenty for fault injection.
#[derive(Debug, Clone)]
pub struct SimRng(u64);

impl SimRng {
    /// A new stream from `seed`.
    pub fn new(seed: u64) -> SimRng {
        SimRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// True with probability `permille`/1000.
    pub fn chance(&mut self, permille: u32) -> bool {
        self.below(1000) < u64::from(permille)
    }
}

/// Link fault injection knobs (all probabilities in permille).
#[derive(Debug, Clone, Copy)]
pub struct SimKnobs {
    /// Probability of dropping each message.
    pub drop_permille: u32,
    /// Probability of delivering each message twice.
    pub dup_permille: u32,
    /// Minimum link delay.
    pub min_delay_ms: u64,
    /// Maximum link delay (inclusive).
    pub max_delay_ms: u64,
}

impl Default for SimKnobs {
    fn default() -> SimKnobs {
        SimKnobs {
            drop_permille: 0,
            dup_permille: 0,
            min_delay_ms: 1,
            max_delay_ms: 3,
        }
    }
}

/// A message in flight on the virtual link.
#[derive(Debug, Clone)]
enum SimMsg {
    /// Follower -> leader.
    Pull {
        shard: usize,
        cursor: u64,
        epoch: u64,
    },
    /// Leader -> follower.
    Chunk {
        shard: usize,
        epoch: u64,
        boot: u64,
        chunk: PullChunk,
    },
}

/// One queued delivery: `(due_ms, tiebreak_seq, message)`.
type InFlight = (u64, u64, SimMsg);

/// The follower's durable journal for one shard — the sim stand-in for
/// a WAL file: an optional installed snapshot blob plus appended frames.
#[derive(Debug, Default, Clone)]
pub struct Journal {
    /// Last installed snapshot blob.
    pub snapshot: Option<String>,
    /// Frames appended since that snapshot.
    pub frames: Vec<crate::wal::WalRecord>,
}

impl Journal {
    /// Replay this journal into a [`Recovery`], exactly as booting from
    /// the equivalent WAL files would.
    pub fn replay(&self, shard: usize) -> Recovery {
        let mut recovery = Recovery::default();
        if let Some(blob) = &self.snapshot {
            // A corrupt blob surfaces as an empty recovery, same as a
            // torn snapshot on disk.
            let _ = wal::decode_snapshot(blob, &mut recovery);
        }
        for frame in &self.frames {
            wal::apply(&mut recovery, frame.clone(), shard);
        }
        recovery
    }
}

/// A leader/follower pair over a faulty virtual link.
pub struct SimCluster {
    now_ms: u64,
    base: Instant,
    rng: SimRng,
    knobs: SimKnobs,
    partitioned: bool,
    leader_alive: bool,

    shards: usize,
    ttl_ms: u64,
    /// Failpoint scope carried by this cluster's ship logs, so a test can
    /// arm `repl.ship.push@<scope>` without faulting other ships in the
    /// process.
    ship_scope: String,
    cfg: ServeConfig,
    services: Vec<Service>,
    repl: ReplState,
    guard: LeaderGuard,

    core: FollowerCore,
    journals: Vec<Journal>,
    poll_ms: u64,
    next_poll_ms: u64,

    net: Vec<InFlight>,
    next_seq: u64,
}

impl SimCluster {
    /// Build a cluster: `shards` leader `Service` shards (shipper
    /// attached, no real WAL) at epoch 1, and a fresh follower.
    pub fn new(seed: u64, shards: usize, ttl_ms: u64, poll_ms: u64, knobs: SimKnobs) -> SimCluster {
        let shards = shards.max(1);
        let cfg = ServeConfig {
            machines: shards * 2,
            slots_per_machine: 1,
            scheduler: SchedKind::Mios,
            queue_capacity: 512,
            // Leases far beyond any sim horizon: task lifecycle noise
            // (expiry/requeue) is covered elsewhere; here the WAL stream
            // itself is under test.
            lease_base_ms: 600_000,
            lease_per_predicted_s_ms: 0,
            wal_snapshot_every: 1_000_000,
            shards,
            ..ServeConfig::default()
        };
        let metrics = Arc::new(Metrics::with_shards(shards));
        let ship_scope = format!("sim-{seed:016x}");
        let ship = Arc::new(ShipLog::new_scoped(shards, ship_scope.clone()));
        let slices = shard_machines(cfg.machines, shards);
        let services: Vec<Service> = (0..shards)
            .map(|shard| {
                let mut shard_cfg = cfg.clone();
                let (base, count) = slices[shard];
                shard_cfg.machines = count;
                let mut svc = Service::new_shard(
                    testbed(),
                    shard_cfg,
                    Arc::clone(&metrics),
                    shard,
                    shards,
                    base,
                );
                svc.attach_shipper(Arc::clone(&ship));
                svc
            })
            .collect();
        let repl = ReplState::new(
            Role::Leader,
            1,
            None,
            ship,
            Arc::clone(&metrics),
            None,
            seed | 1,
        );
        SimCluster {
            now_ms: 0,
            base: Instant::now(),
            rng: SimRng::new(seed ^ 0xD1F7_0A11),
            knobs,
            partitioned: false,
            leader_alive: true,
            shards,
            ttl_ms: ttl_ms.max(1),
            ship_scope,
            cfg,
            services,
            repl,
            // The leader runs the same TTL as the follower, like a real
            // pair whose pull hints have converged the two clocks.
            guard: LeaderGuard::new(ttl_ms.max(1)),
            core: FollowerCore::new(shards, 0, ttl_ms.max(1), 0),
            journals: (0..shards).map(|_| Journal::default()).collect(),
            poll_ms: poll_ms.max(1),
            next_poll_ms: 0,
            net: Vec::new(),
            next_seq: 0,
        }
    }

    /// Override the leader's snapshot cadence (to exercise compaction
    /// and snapshot install in small tests).
    pub fn set_snapshot_every(&mut self, every: u64) {
        self.cfg.wal_snapshot_every = every;
        for svc in &mut self.services {
            svc.set_snapshot_every(every);
        }
    }

    /// Replace the link fault knobs mid-run (e.g. heal a lossy link so a
    /// final sync converges deterministically).
    pub fn set_knobs(&mut self, knobs: SimKnobs) {
        self.knobs = knobs;
    }

    /// Virtual now.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// The failpoint scope carried by this cluster's ship logs.
    pub fn ship_scope(&self) -> &str {
        &self.ship_scope
    }

    fn inst(&self) -> Instant {
        self.base + Duration::from_millis(self.now_ms)
    }

    /// The leader's current epoch.
    pub fn leader_epoch(&self) -> u64 {
        self.repl.epoch()
    }

    /// The leader's current role (fencing flips it).
    pub fn leader_role(&self) -> Role {
        self.repl.role()
    }

    /// Whether the follower has completed at least one pull.
    pub fn follower_synced(&self) -> bool {
        self.core.synced()
    }

    /// Whether any follower journal holds an installed snapshot blob.
    pub fn follower_has_snapshot(&self) -> bool {
        self.journals.iter().any(|j| j.snapshot.is_some())
    }

    /// Partition or heal the link (both directions).
    pub fn set_partitioned(&mut self, on: bool) {
        self.partitioned = on;
        if on {
            self.net.clear();
        }
    }

    /// Kill the leader process: in-flight replies are lost and future
    /// pulls go unanswered. The `Service` state is kept for post-mortem
    /// comparison, exactly like reading a dead process's core.
    pub fn kill_leader(&mut self) {
        self.leader_alive = false;
        self.net.clear();
    }

    /// Whether the leader has suspended mutations because its follower
    /// has been silent for the replication TTL.
    pub fn leader_writes_suspended(&self) -> bool {
        self.guard.suspended_hint().is_some()
    }

    /// Submit one task to the leader, app chosen by the RNG. `None` when
    /// the leader is dead/fenced, write-suspended, or refuses
    /// (backpressure).
    pub fn submit_any(&mut self) -> Option<u64> {
        if !self.leader_alive
            || self.repl.role() != Role::Leader
            || self.guard.suspended_hint().is_some()
        {
            return None;
        }
        let apps = self.services[0].app_list().len();
        let idx = self.rng.below(apps as u64) as usize;
        let name = self.services[0].app_list()[idx].clone();
        let app_id = self.services[0].app_id(&name)?;
        let shard = route_app(app_id, self.shards);
        let now = self.inst();
        self.services[shard].submit(&name, now).ok().map(|a| a.task)
    }

    /// Report one task complete on the leader. False when refused
    /// (unknown/not running) or the leader is dead/fenced/suspended.
    pub fn complete(&mut self, task: u64) -> bool {
        if !self.leader_alive
            || self.repl.role() != Role::Leader
            || self.guard.suspended_hint().is_some()
        {
            return false;
        }
        let now = self.inst();
        self.services
            .iter_mut()
            .any(|svc| svc.complete(task, 1.0, 50.0, now).is_ok())
    }

    fn send(&mut self, msg: SimMsg) {
        if self.partitioned || self.rng.chance(self.knobs.drop_permille) {
            return;
        }
        let span = self
            .knobs
            .max_delay_ms
            .saturating_sub(self.knobs.min_delay_ms)
            + 1;
        let mut deliveries = 1;
        if self.rng.chance(self.knobs.dup_permille) {
            deliveries = 2;
        }
        for _ in 0..deliveries {
            let delay = self.knobs.min_delay_ms + self.rng.below(span);
            let due = self.now_ms + delay.max(1);
            self.net.push((due, self.next_seq, msg.clone()));
            self.next_seq += 1;
        }
    }

    /// Advance virtual time by `ms`, one millisecond at a time: ticking
    /// the leader, issuing follower polls on cadence, and delivering due
    /// messages in `(due, seq)` order.
    pub fn step(&mut self, ms: u64) {
        for _ in 0..ms {
            self.now_ms += 1;
            if self.leader_alive && self.repl.role() == Role::Leader {
                let now = self.inst();
                for svc in &mut self.services {
                    svc.tick(now);
                }
                // The leader-side lease: once the registered follower is
                // silent past the TTL, the leader stops acking writes —
                // before (or at latest when) the follower can promote.
                self.guard.tick(self.now_ms);
            }
            if self.now_ms >= self.next_poll_ms {
                self.next_poll_ms = self.now_ms + self.poll_ms;
                for shard in 0..self.shards {
                    self.send(SimMsg::Pull {
                        shard,
                        cursor: self.core.cursor(shard),
                        epoch: self.core.epoch(),
                    });
                }
            }
            self.deliver_due();
        }
    }

    fn deliver_due(&mut self) {
        loop {
            let mut best: Option<(usize, u64, u64)> = None;
            for (i, (due, seq, _)) in self.net.iter().enumerate() {
                if *due <= self.now_ms && best.is_none_or(|(_, bd, bs)| (*due, *seq) < (bd, bs)) {
                    best = Some((i, *due, *seq));
                }
            }
            let Some((idx, _, _)) = best else { return };
            let (_, _, msg) = self.net.swap_remove(idx);
            match msg {
                SimMsg::Pull {
                    shard,
                    cursor,
                    epoch,
                } => {
                    if !self.leader_alive {
                        continue;
                    }
                    // A pull from a higher epoch proves a promotion this
                    // node missed: fence before answering anything.
                    if epoch > self.repl.epoch() {
                        self.repl.fence(epoch, None);
                    }
                    if self.repl.role() != Role::Leader {
                        continue; // not_leader: no chunk for the puller.
                    }
                    // The pair's one follower renews the leader-side
                    // lease (and lifts any suspension) on every pull.
                    self.guard.on_pull("follower", self.now_ms);
                    let chunk = self.repl.ship().pull(shard, cursor);
                    self.send(SimMsg::Chunk {
                        shard,
                        epoch: self.repl.epoch(),
                        boot: self.repl.boot(),
                        chunk,
                    });
                }
                SimMsg::Chunk {
                    shard,
                    epoch,
                    boot,
                    chunk,
                } => {
                    let now = self.now_ms;
                    match self.core.on_chunk(shard, epoch, boot, chunk.next, now) {
                        ChunkAction::Apply { .. } => {
                            let journal = &mut self.journals[shard];
                            if let Some(blob) = chunk.snapshot {
                                journal.snapshot = Some(blob);
                                journal.frames.clear();
                            }
                            journal.frames.extend(chunk.frames);
                        }
                        ChunkAction::Reset | ChunkAction::Stale => {}
                    }
                }
            }
        }
    }

    /// Step until the follower is fully caught up (lag 0 and the link
    /// idle) or `max_ms` elapses; true on success.
    pub fn run_until_synced(&mut self, max_ms: u64) -> bool {
        let deadline = self.now_ms + max_ms;
        while self.now_ms < deadline {
            self.step(1);
            if !self.core.synced() || !self.net.is_empty() {
                continue;
            }
            let caught_up = (0..self.shards)
                .all(|shard| self.core.cursor(shard) == self.repl.ship().next_seq(shard));
            if caught_up {
                return true;
            }
        }
        false
    }

    /// Step until the follower's lease lapses (true) or `max_ms` passes.
    pub fn run_until_lease_lapse(&mut self, max_ms: u64) -> bool {
        let deadline = self.now_ms + max_ms;
        while self.now_ms < deadline {
            if self.core.lease_lapsed(self.now_ms) {
                return true;
            }
            self.step(1);
        }
        self.core.lease_lapsed(self.now_ms)
    }

    /// Promote the follower (caller must have driven the lease to lapse):
    /// claims `epoch+1`, replays the journals through real recovery into
    /// fresh `Service` shards, and returns the new leader node. Panics if
    /// the lease has not lapsed — promoting under a live lease would be
    /// an election-safety bug in the *test*.
    pub fn promote_follower(&mut self) -> PromotedNode {
        assert!(
            self.core.lease_lapsed(self.now_ms),
            "promotion attempted under a live lease"
        );
        let epoch = self.core.claim_epoch();
        let metrics = Arc::new(Metrics::with_shards(self.shards));
        let ship = Arc::new(ShipLog::new_scoped(self.shards, self.ship_scope.clone()));
        let slices = shard_machines(self.cfg.machines, self.shards);
        let now = self.inst();
        let mut global_next = 0u64;
        let recoveries: Vec<Recovery> = self
            .journals
            .iter()
            .enumerate()
            .map(|(shard, journal)| {
                let recovery = journal.replay(shard);
                global_next = global_next.max(recovery.next_task_id);
                recovery
            })
            .collect();
        let services: Vec<Service> = recoveries
            .into_iter()
            .enumerate()
            .map(|(shard, recovery)| {
                let mut shard_cfg = self.cfg.clone();
                let (base, count) = slices[shard];
                shard_cfg.machines = count;
                let mut svc = Service::new_shard(
                    testbed(),
                    shard_cfg,
                    Arc::clone(&metrics),
                    shard,
                    self.shards,
                    base,
                );
                svc.attach_shipper(Arc::clone(&ship));
                svc.adopt_recovered(&recovery.tasks, now);
                svc.align_next_task_id(global_next);
                svc
            })
            .collect();
        PromotedNode {
            epoch,
            services,
            ship,
            metrics,
            base: self.base,
            now_ms: self.now_ms,
        }
    }

    /// Install a promoted node as this cluster's leader side and reset
    /// the follower side to a blank rejoiner — the sim twin of the live
    /// rejoin supervisor: the fenced ex-leader wipes its shard files,
    /// demotes, and resyncs from the new leader through snapshot install.
    pub fn swap_in_promoted(&mut self, node: PromotedNode) {
        let PromotedNode {
            epoch,
            mut services,
            ship,
            metrics,
            ..
        } = node;
        // Seed the new leader's ship exactly as the real promotion does:
        // each shard publishes a covering snapshot, so the trim pushes the
        // ship base past 0 and a cursor-0 rejoiner starts with a snapshot
        // install instead of assuming it saw the pre-promotion frames.
        for svc in &mut services {
            svc.write_snapshot();
        }
        self.services = services;
        self.repl = ReplState::new(
            Role::Leader,
            epoch,
            None,
            ship,
            metrics,
            None,
            self.rng.next_u64() | 1,
        );
        self.guard = LeaderGuard::new(self.ttl_ms);
        self.leader_alive = true;
        self.partitioned = false;
        self.net.clear();
        self.core = FollowerCore::new(self.shards, epoch, self.ttl_ms, self.now_ms);
        self.journals = (0..self.shards).map(|_| Journal::default()).collect();
        self.next_poll_ms = self.now_ms;
    }

    /// Bit rot lands on one follower journal: the snapshot blob is lost
    /// and a suffix of the frames is destroyed — the sim twin of a mid-log
    /// CRC failure on disk.
    pub fn corrupt_journal(&mut self, shard: usize) {
        let journal = &mut self.journals[shard];
        journal.snapshot = None;
        let keep = journal.frames.len() / 2;
        journal.frames.truncate(keep);
    }

    /// What the follower's scrub pass does on detection: quarantine the
    /// journal (drop it wholesale) and reset the pull cursor to 0 so the
    /// next pulls re-install the shard from the leader.
    pub fn scrub_repair(&mut self, shard: usize) {
        self.journals[shard] = Journal::default();
        self.core.reset_cursor(shard);
    }

    /// Deliver a promoted peer's `repl_lease` claim to the (old) leader,
    /// as its post-promotion fence message would; returns the old
    /// leader's role afterwards.
    pub fn deliver_lease_to_leader(&mut self, epoch: u64, leader_addr: &str) -> Role {
        if self.leader_alive && epoch >= self.repl.epoch() {
            self.repl.fence(epoch, Some(leader_addr.to_string()));
        }
        self.repl.role()
    }

    /// Revive a killed leader process *without* resetting its state —
    /// the stale-leader-reconnect scenario.
    pub fn revive_leader(&mut self) {
        self.leader_alive = true;
    }

    /// Summed `(admitted, completed, dead_lettered, outstanding)` over
    /// the leader shards.
    pub fn leader_counts(&self) -> (u64, u64, u64, u64) {
        sum_counts(self.services.iter().map(Service::status))
    }

    /// Every leader shard satisfies the conservation invariant.
    pub fn leader_conserved(&self) -> bool {
        self.services.iter().all(|svc| svc.status().conserved())
    }
}

/// The follower after promotion: real `Service` shards rebuilt from the
/// shipped WAL stream.
pub struct PromotedNode {
    /// The epoch this node claimed (strictly greater than any epoch the
    /// old leader served at).
    pub epoch: u64,
    services: Vec<Service>,
    ship: Arc<ShipLog>,
    metrics: Arc<Metrics>,
    base: Instant,
    now_ms: u64,
}

impl PromotedNode {
    /// Summed `(admitted, completed, dead_lettered, outstanding)`.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        sum_counts(self.services.iter().map(Service::status))
    }

    /// The conservation invariant on every shard.
    pub fn conserved(&self) -> bool {
        self.services.iter().all(|svc| svc.status().conserved())
    }

    /// Drive the new leader after failover: submit one task.
    pub fn submit(&mut self, app_seed: u64) -> Option<u64> {
        let apps = self.services[0].app_list().len();
        let name = self.services[0].app_list()[app_seed as usize % apps].clone();
        let app_id = self.services[0].app_id(&name)?;
        let shards = self.services.len();
        let shard = route_app(app_id, shards);
        let now = self.base + Duration::from_millis(self.now_ms);
        self.services[shard].submit(&name, now).ok().map(|a| a.task)
    }

    /// Report one task complete on the new leader.
    pub fn complete(&mut self, task: u64) -> bool {
        let now = self.base + Duration::from_millis(self.now_ms);
        self.services
            .iter_mut()
            .any(|svc| svc.complete(task, 1.0, 50.0, now).is_ok())
    }
}

fn sum_counts(parts: impl Iterator<Item = StatusSnapshot>) -> (u64, u64, u64, u64) {
    let mut sums = (0u64, 0u64, 0u64, 0u64);
    for snap in parts {
        sums.0 += snap.admitted;
        sums.1 += snap.completed;
        sums.2 += snap.dead_lettered;
        sums.3 += (snap.queued + snap.delayed + snap.running) as u64;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Submit/complete a workload while the link drops, delays, and
    /// duplicates; after healing and catching up, the promoted follower
    /// must agree with the leader's ledger exactly.
    #[test]
    fn log_matching_survives_lossy_links() {
        for seed in [1u64, 0xBEEF, 0x5EED_CAFE] {
            let knobs = SimKnobs {
                drop_permille: 150,
                dup_permille: 150,
                min_delay_ms: 1,
                max_delay_ms: 9,
            };
            let mut sim = SimCluster::new(seed, 2, 400, 10, knobs);
            let mut tasks = Vec::new();
            for round in 0..30 {
                if let Some(task) = sim.submit_any() {
                    tasks.push(task);
                }
                if round % 3 == 0 {
                    if let Some(&task) = tasks.get(round / 3) {
                        sim.complete(task);
                    }
                }
                sim.step(7);
            }
            // Heal the link and drain.
            sim.knobs.drop_permille = 0;
            sim.knobs.dup_permille = 0;
            assert!(sim.run_until_synced(5_000), "seed {seed}: never caught up");
            let leader = sim.leader_counts();
            sim.kill_leader();
            assert!(sim.run_until_lease_lapse(5_000));
            let promoted = sim.promote_follower();
            assert!(promoted.epoch > sim.leader_epoch(), "election safety");
            assert_eq!(
                promoted.counts(),
                leader,
                "seed {seed}: promoted ledger diverged"
            );
            assert!(promoted.conserved());
        }
    }

    /// A partition during promotion: the follower promotes blind, the
    /// stale leader keeps serving its side, and on heal the lease claim
    /// fences it — with the promoted epoch strictly higher.
    #[test]
    fn partition_during_promotion_fences_the_stale_leader() {
        let mut sim = SimCluster::new(7, 1, 200, 10, SimKnobs::default());
        for _ in 0..5 {
            sim.submit_any();
            sim.step(5);
        }
        assert!(sim.run_until_synced(3_000));
        sim.set_partitioned(true);
        // The stale leader keeps admitting during the partition.
        sim.submit_any();
        assert!(sim.run_until_lease_lapse(3_000));
        let promoted = sim.promote_follower();
        assert!(promoted.epoch > sim.leader_epoch());
        assert_eq!(sim.leader_role(), Role::Leader, "still split-brained");
        // Heal: the promotion's lease claim lands.
        sim.set_partitioned(false);
        let role = sim.deliver_lease_to_leader(promoted.epoch, "10.0.0.2:7400");
        assert_eq!(role, Role::Fenced);
        assert_eq!(sim.leader_epoch(), promoted.epoch);
        // A fenced node refuses mutations.
        assert!(sim.submit_any().is_none());
        assert!(promoted.conserved());
    }

    /// A partitioned leader must stop acking writes no later than its
    /// follower's lease lapses (when promotion becomes legitimate): every
    /// write acked past that point would be silently lost to the new
    /// leader. Suspension is not fencing — the link healing (with the
    /// follower provably unpromoted, by its epoch) resumes writes.
    #[test]
    fn partitioned_leader_suspends_writes_before_the_follower_promotes() {
        let mut sim = SimCluster::new(42, 1, 200, 10, SimKnobs::default());
        for _ in 0..5 {
            sim.submit_any();
            sim.step(5);
        }
        assert!(sim.run_until_synced(3_000));
        sim.set_partitioned(true);
        // Inside the TTL the leader still serves writes: this is the
        // bounded lost-acked-write window.
        assert!(sim.submit_any().is_some());
        assert!(sim.run_until_lease_lapse(3_000));
        // By the time the follower MAY promote, the leader has already
        // gone read-only — without any message reaching it.
        assert!(sim.leader_writes_suspended());
        assert!(sim.submit_any().is_none());
        assert!(!sim.complete(0));
        assert_eq!(
            sim.leader_role(),
            Role::Leader,
            "suspension must not change the role"
        );
        // Heal before anyone promotes: the follower's same-epoch pulls
        // prove it never claimed leadership, so writes resume.
        sim.set_partitioned(false);
        sim.step(50);
        assert!(!sim.leader_writes_suspended());
        assert!(sim.submit_any().is_some());
    }

    /// Heavy duplication alone must not corrupt the follower: the merge
    /// is idempotent.
    #[test]
    fn duplicate_frames_collapse_harmlessly() {
        let knobs = SimKnobs {
            drop_permille: 0,
            dup_permille: 600,
            min_delay_ms: 1,
            max_delay_ms: 12,
        };
        let mut sim = SimCluster::new(0xD0_D0, 1, 300, 10, knobs);
        let mut tasks = Vec::new();
        for _ in 0..12 {
            if let Some(t) = sim.submit_any() {
                tasks.push(t);
            }
            sim.step(6);
        }
        for &t in tasks.iter().take(6) {
            sim.complete(t);
            sim.step(6);
        }
        assert!(sim.run_until_synced(5_000));
        let leader = sim.leader_counts();
        sim.kill_leader();
        assert!(sim.run_until_lease_lapse(3_000));
        let promoted = sim.promote_follower();
        assert_eq!(promoted.counts(), leader);
        assert!(promoted.conserved());
    }

    /// A follower cut off across a compaction horizon must resync via
    /// snapshot install, not a frame gap.
    #[test]
    fn lagging_follower_resyncs_through_a_snapshot() {
        let mut sim = SimCluster::new(0x51AB, 1, 500, 10, SimKnobs::default());
        sim.set_snapshot_every(8);
        sim.set_partitioned(true);
        // Everything below happens beyond the follower's sight; the
        // leader compacts at least once (>= 8 records).
        let mut tasks = Vec::new();
        for _ in 0..10 {
            if let Some(t) = sim.submit_any() {
                tasks.push(t);
            }
            sim.step(2);
        }
        for &t in tasks.iter().take(4) {
            sim.complete(t);
            sim.step(2);
        }
        sim.set_partitioned(false);
        assert!(sim.run_until_synced(5_000));
        assert!(
            sim.follower_has_snapshot(),
            "catch-up must have gone through snapshot install"
        );
        let leader = sim.leader_counts();
        sim.kill_leader();
        assert!(sim.run_until_lease_lapse(3_000));
        let promoted = sim.promote_follower();
        assert_eq!(promoted.counts(), leader);
        assert!(promoted.conserved());
    }

    /// The self-healing rejoin: a fenced ex-leader demotes into the
    /// single follower slot, wipes, and resyncs from the promoted leader
    /// through a snapshot install — all within 2 lease TTLs of the link
    /// healing. The rejoined pair must then survive a second failover
    /// with the full ledger intact.
    #[test]
    fn fenced_ex_leader_rejoins_and_resyncs_within_two_ttls() {
        for seed in [3u64, 0xA11CE] {
            let ttl = 300u64;
            let mut sim = SimCluster::new(seed, 2, ttl, 10, SimKnobs::default());
            sim.set_snapshot_every(4);
            let mut tasks = Vec::new();
            for _ in 0..12 {
                if let Some(t) = sim.submit_any() {
                    tasks.push(t);
                }
                sim.step(5);
            }
            for &t in tasks.iter().take(5) {
                sim.complete(t);
                sim.step(5);
            }
            assert!(sim.run_until_synced(5_000), "seed {seed}: never synced");
            sim.set_partitioned(true);
            assert!(sim.run_until_lease_lapse(3_000));
            let promoted = sim.promote_follower();
            let expect = promoted.counts();
            // Heal: the promotion's lease claim fences the old leader...
            sim.set_partitioned(false);
            let role = sim.deliver_lease_to_leader(promoted.epoch, "10.0.0.2:7400");
            assert_eq!(role, Role::Fenced);
            // ...which self-heals: wipe, demote, rejoin as the follower.
            sim.swap_in_promoted(promoted);
            assert!(
                sim.run_until_synced(2 * ttl),
                "seed {seed}: rejoin overran 2 TTLs"
            );
            assert!(
                sim.follower_has_snapshot(),
                "rejoin must go through snapshot install"
            );
            assert_eq!(sim.leader_counts(), expect);
            // The healed pair can fail over again without losing anything.
            sim.kill_leader();
            assert!(sim.run_until_lease_lapse(3_000));
            let second = sim.promote_follower();
            assert!(second.epoch > sim.leader_epoch());
            assert_eq!(
                second.counts(),
                expect,
                "seed {seed}: second failover lost data"
            );
            assert!(second.conserved());
        }
    }

    /// Bit rot on a follower journal mid-run: the scrub quarantines the
    /// shard and resets its cursor, and the re-pull (racing a lossy link
    /// and fresh traffic) converges back to the leader's exact ledger.
    #[test]
    fn scrub_repair_recovers_a_rotted_journal_under_loss() {
        for seed in [9u64, 0xC0FFEE] {
            let knobs = SimKnobs {
                drop_permille: 120,
                dup_permille: 80,
                min_delay_ms: 1,
                max_delay_ms: 7,
            };
            let mut sim = SimCluster::new(seed, 2, 400, 10, knobs);
            sim.set_snapshot_every(4);
            let mut tasks = Vec::new();
            for _ in 0..14 {
                if let Some(t) = sim.submit_any() {
                    tasks.push(t);
                }
                sim.step(6);
            }
            for &t in tasks.iter().take(6) {
                sim.complete(t);
                sim.step(6);
            }
            // Rot lands on shard 0. The momentary partition stands in for
            // the real follower's single-threadedness: no chunk pulled
            // before the scrub is applied after it.
            sim.set_partitioned(true);
            sim.corrupt_journal(0);
            sim.scrub_repair(0);
            sim.set_partitioned(false);
            // More traffic while the repair races the lossy link.
            for _ in 0..6 {
                if let Some(t) = sim.submit_any() {
                    tasks.push(t);
                }
                sim.step(6);
            }
            sim.set_knobs(SimKnobs::default());
            assert!(
                sim.run_until_synced(5_000),
                "seed {seed}: repair never converged"
            );
            assert!(
                sim.follower_has_snapshot(),
                "repair must re-install from the leader's snapshot"
            );
            let leader = sim.leader_counts();
            sim.kill_leader();
            assert!(sim.run_until_lease_lapse(3_000));
            let promoted = sim.promote_follower();
            assert_eq!(
                promoted.counts(),
                leader,
                "seed {seed}: repaired ledger diverged"
            );
            assert!(promoted.conserved());
        }
    }

    /// Election safety holds even while a failpoint silently drops ship
    /// pushes: the dropped records ride the next covering snapshot trim,
    /// the promoted epoch is strictly higher, and the revived ex-leader
    /// fences instead of splitting the brain.
    #[test]
    fn no_split_brain_while_ship_pushes_drop_under_failpoints() {
        let _gate = crate::failpoint::test_gate();
        crate::failpoint::disarm_all();
        let seed = 0xFA11u64;
        let mut sim = SimCluster::new(seed, 1, 300, 10, SimKnobs::default());
        sim.set_snapshot_every(4);
        let spec = format!("seed=7;repl.ship.push@{}=skip%250", sim.ship_scope());
        crate::failpoint::arm(&spec).expect("spec parses");
        let mut tasks = Vec::new();
        for _ in 0..16 {
            if let Some(t) = sim.submit_any() {
                tasks.push(t);
            }
            sim.step(6);
        }
        for &t in tasks.iter().take(6) {
            sim.complete(t);
            sim.step(6);
        }
        crate::failpoint::disarm_all();
        // Enough post-disarm records to force a covering trim: a trim's
        // snapshot covers ALL prior state, including the dropped pushes.
        for _ in 0..6 {
            sim.submit_any();
            sim.step(6);
        }
        assert!(sim.run_until_synced(5_000));
        let leader = sim.leader_counts();
        sim.kill_leader();
        assert!(sim.run_until_lease_lapse(3_000));
        let promoted = sim.promote_follower();
        assert!(
            promoted.epoch > sim.leader_epoch(),
            "election safety under fault injection"
        );
        sim.revive_leader();
        let role = sim.deliver_lease_to_leader(promoted.epoch, "10.0.0.2:7400");
        assert_eq!(role, Role::Fenced);
        assert!(
            sim.submit_any().is_none(),
            "fenced ex-leader must refuse writes"
        );
        assert_eq!(promoted.counts(), leader);
        assert!(promoted.conserved());
    }
}
