//! Deterministic failpoints: named fault-injection sites compiled into
//! the serve stack's fallible I/O paths.
//!
//! Every site is a call to [`should_fail`] naming the site (a stable
//! dotted string such as `wal.append.sync`) and a *scope* — a free-form
//! string identifying the instance being exercised (the WAL directory
//! for storage sites, the peer address for replication sites). When the
//! registry is disarmed — the steady state — `should_fail` is a single
//! relaxed atomic load returning `None`, so production behavior is
//! byte-identical to a build without the hooks.
//!
//! Arming is textual. A **spec** is a `;`-separated list of entries:
//!
//! ```text
//! site[@scope]=action[*count][%permille]
//! seed=N
//! ```
//!
//! * `site` — exact site name (`wal.append.write`, `repl.lease`, …).
//! * `@scope` — optional substring filter on the caller's scope string;
//!   omitted means "every instance". Tests arm `@<tempdir>` so parallel
//!   tests cannot trip each other's faults.
//! * `action` — `err` (the site returns an injected I/O error), `short`
//!   (write sites persist a truncated prefix), `skip` (the site silently
//!   drops the operation).
//! * `*count` — inject at most `count` times, then the entry goes inert.
//! * `%permille` — inject with probability `permille`/1000 per matching
//!   hit, drawn from the registry's seeded RNG (default: always).
//! * `seed=N` — reseed the RNG (splitmix64), making `%` draws
//!   reproducible across runs.
//!
//! Example: `wal.append.sync=err*3;wal.append.write=short%250;seed=7`.
//!
//! The registry is global (sites live in library code far from any
//! handle), guarded by a mutex that is only touched while armed, and
//! observable: [`status_line`] reports per-entry hit/injection counts so
//! the chaos harness can print injected-vs-observed fault tallies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an armed site injects at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with an injected `io::Error`.
    Err,
    /// Perform the operation on a truncated prefix (write sites only;
    /// non-write sites treat it like `Err`).
    Short,
    /// Silently skip the operation and report success.
    Skip,
}

impl Action {
    fn parse(s: &str) -> Option<Action> {
        match s {
            "err" => Some(Action::Err),
            "short" => Some(Action::Short),
            "skip" => Some(Action::Skip),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Action::Err => "err",
            Action::Short => "short",
            Action::Skip => "skip",
        }
    }
}

/// One armed spec entry.
#[derive(Debug, Clone)]
struct Site {
    name: String,
    scope: Option<String>,
    action: Action,
    /// Remaining injections (`None` = unlimited).
    remaining: Option<u64>,
    /// Injection probability in permille (1000 = always).
    permille: u16,
    hits: u64,
    injected: u64,
}

#[derive(Debug, Default)]
struct Registry {
    sites: Vec<Site>,
    rng: u64,
    total_injected: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parse and arm `spec`, **adding** to whatever is already armed.
/// Returns the number of site entries added, or a description of the
/// first malformed entry (in which case nothing from `spec` is armed).
pub fn arm(spec: &str) -> Result<usize, String> {
    let mut parsed: Vec<Site> = Vec::new();
    let mut seed: Option<u64> = None;
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (lhs, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry missing '=': {entry}"))?;
        if lhs == "seed" {
            seed = Some(
                rhs.parse::<u64>()
                    .map_err(|_| format!("bad failpoint seed: {rhs}"))?,
            );
            continue;
        }
        let (name, scope) = match lhs.split_once('@') {
            Some((n, s)) => (n.trim(), Some(s.trim().to_string())),
            None => (lhs.trim(), None),
        };
        if name.is_empty() {
            return Err(format!("failpoint entry missing site name: {entry}"));
        }
        // action[*count][%permille], fixed order.
        let mut rest = rhs.trim();
        let mut permille: u16 = 1000;
        if let Some((head, pm)) = rest.rsplit_once('%') {
            let pm: u16 = pm
                .parse()
                .map_err(|_| format!("bad failpoint permille: {rest}"))?;
            if pm > 1000 {
                return Err(format!("failpoint permille over 1000: {rest}"));
            }
            permille = pm;
            rest = head;
        }
        let mut remaining: Option<u64> = None;
        if let Some((head, count)) = rest.rsplit_once('*') {
            remaining = Some(
                count
                    .parse::<u64>()
                    .map_err(|_| format!("bad failpoint count: {rest}"))?,
            );
            rest = head;
        }
        let action =
            Action::parse(rest).ok_or_else(|| format!("unknown failpoint action: {rest}"))?;
        parsed.push(Site {
            name: name.to_string(),
            scope,
            action,
            remaining,
            permille,
            hits: 0,
            injected: 0,
        });
    }
    let added = parsed.len();
    if added == 0 && seed.is_none() {
        return Err("empty failpoint spec".to_string());
    }
    if let Ok(mut guard) = REGISTRY.lock() {
        let reg = guard.get_or_insert_with(Registry::default);
        if let Some(s) = seed {
            reg.rng = s;
        }
        reg.sites.extend(parsed);
        if !reg.sites.is_empty() {
            ARMED.store(true, Ordering::Release);
        }
    }
    Ok(added)
}

/// Disarm every site and zero the counters. The registry returns to the
/// zero-cost disabled state.
pub fn disarm_all() {
    ARMED.store(false, Ordering::Release);
    if let Ok(mut guard) = REGISTRY.lock() {
        *guard = None;
    }
}

/// True when any failpoint is armed. Call sites whose *scope string* is
/// costly to build (a path render, a `to_string`) gate its construction
/// on this so the disarmed steady state stays one relaxed load with no
/// allocation.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The hook compiled into each fallible site. Disarmed (the steady
/// state) this is one relaxed load and `None`; armed, the first entry
/// matching `site` (and whose scope filter is a substring of `scope`)
/// that still has injections left — and wins its permille draw — fires.
#[inline]
pub fn should_fail(site: &str, scope: &str) -> Option<Action> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    should_fail_slow(site, scope)
}

#[cold]
fn should_fail_slow(site: &str, scope: &str) -> Option<Action> {
    let mut guard = REGISTRY.lock().ok()?;
    let reg = guard.as_mut()?;
    // Borrow-split: draw before iterating mutably over sites.
    let mut rng = reg.rng;
    let mut fired: Option<Action> = None;
    for s in reg.sites.iter_mut() {
        if s.name != site {
            continue;
        }
        if let Some(filter) = &s.scope {
            if !scope.contains(filter.as_str()) {
                continue;
            }
        }
        if s.remaining == Some(0) {
            continue;
        }
        s.hits += 1;
        if s.permille < 1000 {
            let draw = (splitmix64(&mut rng) % 1000) as u16;
            if draw >= s.permille {
                continue;
            }
        }
        if let Some(r) = &mut s.remaining {
            *r -= 1;
        }
        s.injected += 1;
        fired = Some(s.action);
        break;
    }
    reg.rng = rng;
    if fired.is_some() {
        reg.total_injected += 1;
    }
    fired
}

/// Total injections across all sites since the last [`disarm_all`].
pub fn injected_total() -> u64 {
    if !ARMED.load(Ordering::Relaxed) {
        return 0;
    }
    REGISTRY
        .lock()
        .ok()
        .and_then(|g| g.as_ref().map(|r| r.total_injected))
        .unwrap_or(0)
}

/// One-line status: `armed=<n> injected=<total> site[@scope]=action hits=<h> injected=<i> …`
/// (or `disarmed`). This is what the `fail status` control verb returns
/// and what the chaos report prints as the server-side tally.
pub fn status_line() -> String {
    if !ARMED.load(Ordering::Relaxed) {
        return "disarmed".to_string();
    }
    let guard = match REGISTRY.lock() {
        Ok(g) => g,
        Err(_) => return "disarmed".to_string(),
    };
    let reg = match guard.as_ref() {
        Some(r) => r,
        None => return "disarmed".to_string(),
    };
    let mut out = format!("armed={} injected={}", reg.sites.len(), reg.total_injected);
    for s in &reg.sites {
        let scope = s
            .scope
            .as_deref()
            .map(|f| format!("@{f}"))
            .unwrap_or_default();
        out.push_str(&format!(
            " {}{}={} hits={} injected={}",
            s.name,
            scope,
            s.action.name(),
            s.hits,
            s.injected
        ));
    }
    out
}

/// The injected error every `err`/`short` site surfaces, recognizable
/// in logs and test assertions.
pub fn injected_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint injected: {site}"))
}

/// Serializes unit tests that arm the process-global registry (`cargo
/// test` runs them in parallel; `disarm_all` in one test would wipe
/// another's armed sites). Tests in any module of this crate that call
/// [`arm`] must hold this gate for their whole armed section.
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex as StdMutex, OnceLock};
    static GATE: OnceLock<StdMutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| StdMutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        test_gate()
    }

    #[test]
    fn disarmed_is_none_and_free() {
        let _g = lock();
        disarm_all();
        assert_eq!(should_fail("wal.append.sync", "/tmp/x"), None);
        assert_eq!(injected_total(), 0);
        assert_eq!(status_line(), "disarmed");
    }

    #[test]
    fn count_limits_and_scope_filters_apply() {
        let _g = lock();
        disarm_all();
        assert_eq!(arm("wal.append.sync@alpha=err*2").unwrap(), 1);
        // Wrong scope: never fires, but also never consumes the budget.
        assert_eq!(should_fail("wal.append.sync", "/dir/beta/wal"), None);
        assert_eq!(
            should_fail("wal.append.sync", "/dir/alpha/wal"),
            Some(Action::Err)
        );
        assert_eq!(
            should_fail("wal.append.sync", "/dir/alpha/wal"),
            Some(Action::Err)
        );
        // Budget exhausted.
        assert_eq!(should_fail("wal.append.sync", "/dir/alpha/wal"), None);
        assert_eq!(injected_total(), 2);
        let status = status_line();
        assert!(status.contains("injected=2"), "{status}");
        disarm_all();
    }

    #[test]
    fn permille_draws_are_seeded_and_reproducible() {
        let _g = lock();
        disarm_all();
        arm("seed=42;x@s=skip%500").unwrap();
        let first: Vec<bool> = (0..64).map(|_| should_fail("x", "s").is_some()).collect();
        disarm_all();
        arm("seed=42;x@s=skip%500").unwrap();
        let second: Vec<bool> = (0..64).map(|_| should_fail("x", "s").is_some()).collect();
        assert_eq!(first, second, "same seed must give the same draws");
        let fires = first.iter().filter(|b| **b).count();
        assert!(
            (8..=56).contains(&fires),
            "permille 500 should fire roughly half the time, got {fires}/64"
        );
        disarm_all();
    }

    #[test]
    fn malformed_specs_are_rejected_whole() {
        let _g = lock();
        disarm_all();
        assert!(arm("").is_err());
        assert!(arm("noequals").is_err());
        assert!(arm("x=explode").is_err());
        assert!(arm("x=err%1500").is_err());
        assert!(arm("x=err*abc").is_err());
        // A bad entry poisons the whole spec: nothing armed.
        assert!(arm("ok=err;bad=zzz").is_err());
        assert_eq!(should_fail("ok", ""), None);
        disarm_all();
    }

    #[test]
    fn status_line_reports_hits_and_actions() {
        let _g = lock();
        disarm_all();
        arm("a@t1=short").unwrap();
        should_fail("a", "t1");
        should_fail("a", "t1");
        let s = status_line();
        assert!(s.contains("armed=1"), "{s}");
        assert!(s.contains("a@t1=short hits=2 injected=2"), "{s}");
        disarm_all();
    }
}
