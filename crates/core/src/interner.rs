//! Application-name interning for the scheduler hot path.
//!
//! The schedulers compare, hash, and sort application identities on every
//! score lookup and placement. Interning maps each name to a dense
//! [`AppId`] once, after which the hot path moves only `Copy` integers:
//! free-slot neighbour classes become a packed `u64` ([`ClassKey`]) and
//! score memoization becomes an array index instead of a
//! `(String, String)` hash probe.

use std::collections::HashMap;

/// Maximum number of neighbours a [`ClassKey`] can encode (one 16-bit
/// lane per neighbour in a `u64`). A machine may therefore host at most
/// `MAX_NEIGHBOURS + 1` VM slots.
pub const MAX_NEIGHBOURS: usize = 4;

/// A dense, `Copy` application identifier assigned by an [`AppRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u16);

impl AppId {
    /// The id as a table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional name ↔ [`AppId`] map.
///
/// Ids are assigned in **lexicographic name order**, so two registries
/// built from the same name set are identical, and the numeric order of
/// [`ClassKey`]s matches the lexicographic order of the `"+"`-joined
/// string keys the free-class index used before interning (`'+'` sorts
/// below every character that appears in an application name). Schedulers
/// break score ties by first-minimum iteration order, so this keeps every
/// tie decision bit-identical to the string-keyed implementation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppRegistry {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

impl AppRegistry {
    /// Builds a registry from a set of names (sorted and de-duplicated).
    ///
    /// # Panics
    /// Panics when there are more than `u16::MAX - 1` distinct names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<String> = names.into_iter().map(Into::into).collect();
        names.sort_unstable();
        names.dedup();
        assert!(
            names.len() < u16::MAX as usize,
            "too many applications to intern"
        );
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u16))
            .collect();
        AppRegistry { names, index }
    }

    /// The id of a registered name.
    pub fn id(&self, name: &str) -> Option<AppId> {
        self.index.get(name).copied().map(AppId)
    }

    /// The id of a registered name.
    ///
    /// # Panics
    /// Panics when the name is unknown.
    pub fn expect_id(&self, name: &str) -> AppId {
        self.id(name)
            .unwrap_or_else(|| panic!("unknown application '{name}'"))
    }

    /// The name behind an id.
    ///
    /// # Panics
    /// Panics when the id was not assigned by this registry.
    pub fn name(&self, id: AppId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order (lexicographic).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All ids in order.
    pub fn ids(&self) -> impl Iterator<Item = AppId> {
        (0..self.names.len() as u16).map(AppId)
    }
}

/// A free-slot neighbour class: the multiset of applications resident on
/// the same machine, packed into a single `u64`.
///
/// Each neighbour occupies a 16-bit lane holding `id + 1` (0 = no
/// neighbour); lanes are sorted ascending with the smallest id in the
/// most-significant lane, so the derived `Ord` on the packed word equals
/// the lexicographic order of the sorted name tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClassKey(u64);

impl ClassKey {
    /// The class of a slot whose machine is otherwise idle.
    pub const IDLE: ClassKey = ClassKey(0);

    /// Packs a neighbour multiset into a key.
    ///
    /// # Panics
    /// Panics when there are more than [`MAX_NEIGHBOURS`] neighbours.
    pub fn from_neighbours<I: IntoIterator<Item = AppId>>(neighbours: I) -> Self {
        let mut lanes = [0u16; MAX_NEIGHBOURS];
        let mut n = 0;
        for id in neighbours {
            assert!(
                n < MAX_NEIGHBOURS,
                "class key overflow: more than {MAX_NEIGHBOURS} neighbours"
            );
            lanes[n] = id.0 + 1;
            n += 1;
        }
        lanes[..n].sort_unstable();
        let mut packed = 0u64;
        for (i, lane) in lanes.iter().enumerate() {
            packed |= (*lane as u64) << (48 - 16 * i);
        }
        ClassKey(packed)
    }

    /// Whether this is the idle class (no neighbours).
    #[inline]
    pub fn is_idle(self) -> bool {
        self.0 == 0
    }

    /// The lone neighbour, when the class has exactly one.
    #[inline]
    pub fn single(self) -> Option<AppId> {
        if self.0 != 0 && self.0 & 0x0000_FFFF_FFFF_FFFF == 0 {
            Some(AppId((self.0 >> 48) as u16 - 1))
        } else {
            None
        }
    }

    /// Number of neighbours in the class.
    pub fn count(self) -> usize {
        self.ids().count()
    }

    /// The neighbour ids, smallest first.
    pub fn ids(self) -> impl Iterator<Item = AppId> {
        (0..MAX_NEIGHBOURS)
            .map(move |i| ((self.0 >> (48 - 16 * i)) & 0xFFFF) as u16)
            .take_while(|lane| *lane != 0)
            .map(|lane| AppId(lane - 1))
    }

    /// The raw packed word (diagnostics, fallback cache keys).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Renders the class as the legacy `"+"`-joined name list ("" for
    /// idle) — for display and for comparison against string-keyed code.
    pub fn render(self, registry: &AppRegistry) -> String {
        self.ids()
            .map(|id| registry.name(id))
            .collect::<Vec<_>>()
            .join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> AppRegistry {
        AppRegistry::from_names(["web", "dedup", "email", "app0"])
    }

    #[test]
    fn ids_are_assigned_in_sorted_name_order() {
        let r = reg();
        assert_eq!(r.names(), &["app0", "dedup", "email", "web"]);
        assert_eq!(r.expect_id("app0"), AppId(0));
        assert_eq!(r.expect_id("web"), AppId(3));
        assert_eq!(r.name(AppId(1)), "dedup");
        assert_eq!(r.id("nope"), None);
    }

    #[test]
    fn registries_from_same_names_agree() {
        let a = AppRegistry::from_names(["b", "a", "c"]);
        let b = AppRegistry::from_names(["c", "b", "a", "a"]);
        assert_eq!(a, b);
    }

    #[test]
    fn class_key_roundtrips_and_sorts_like_strings() {
        let r = reg();
        let key = |names: &[&str]| ClassKey::from_neighbours(names.iter().map(|n| r.expect_id(n)));
        // The packed order must match the lexicographic order of the
        // "+"-joined string keys the seed implementation used.
        let mut string_keys: Vec<String> = Vec::new();
        let mut packed: Vec<ClassKey> = Vec::new();
        for names in [
            vec![],
            vec!["app0"],
            vec!["app0", "app0"],
            vec!["app0", "web"],
            vec!["dedup"],
            vec!["dedup", "email", "web"],
            vec!["web"],
        ] {
            let mut sorted = names.clone();
            sorted.sort_unstable();
            string_keys.push(sorted.join("+"));
            packed.push(key(&names));
        }
        let mut by_string: Vec<usize> = (0..string_keys.len()).collect();
        by_string.sort_by(|&a, &b| string_keys[a].cmp(&string_keys[b]));
        let mut by_packed: Vec<usize> = (0..packed.len()).collect();
        by_packed.sort_by(|&a, &b| packed[a].cmp(&packed[b]));
        assert_eq!(by_string, by_packed);
        // Round-trip through render.
        assert_eq!(key(&["web", "app0"]).render(&r), "app0+web");
        assert_eq!(ClassKey::IDLE.render(&r), "");
    }

    #[test]
    fn class_key_shape_queries() {
        let r = reg();
        let a = r.expect_id("app0");
        let w = r.expect_id("web");
        assert!(ClassKey::IDLE.is_idle());
        assert_eq!(ClassKey::IDLE.count(), 0);
        assert_eq!(ClassKey::from_neighbours([w]).single(), Some(w));
        assert_eq!(ClassKey::from_neighbours([a, w]).single(), None);
        assert_eq!(ClassKey::from_neighbours([a, w, w]).count(), 3);
        let ids: Vec<AppId> = ClassKey::from_neighbours([w, a]).ids().collect();
        assert_eq!(ids, vec![a, w]);
    }

    #[test]
    #[should_panic(expected = "class key overflow")]
    fn too_many_neighbours_panics() {
        let r = reg();
        let a = r.expect_id("app0");
        ClassKey::from_neighbours([a; 5]);
    }
}
