//! The scheduler's view of the data center: machines with a fixed number
//! of VM slots, each slot either free or holding a resident application.
//!
//! Free slots are indexed by their *neighbour class* — the (sorted) set of
//! applications resident on the same machine. With 8 applications and two
//! slots per machine there are only 9 classes (idle + one per app), so
//! schedulers scan classes instead of individual VMs and scheduling cost
//! is independent of cluster size.

use crate::characteristics::Characteristics;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A virtual machine slot: machine index and slot index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmRef {
    /// Physical machine index.
    pub machine: usize,
    /// Slot index on the machine.
    pub slot: usize,
}

/// A task resident in a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resident {
    /// The scheduler-visible task id.
    pub task_id: u64,
    /// The application the task runs.
    pub app: String,
}

/// One free-slot class: slots whose machine hosts the same multiset of
/// neighbour applications.
#[derive(Debug, Clone)]
pub struct FreeClass {
    /// Class key: neighbour app names joined by `+`, or "" when the rest
    /// of the machine is idle.
    pub key: String,
    /// Aggregate characteristics of the neighbours (idle = zeros).
    pub background: Characteristics,
    /// A representative free slot of this class.
    pub example: VmRef,
    /// How many free slots belong to the class.
    pub count: usize,
}

/// The cluster state schedulers operate on.
#[derive(Debug, Clone)]
pub struct ClusterState {
    slots_per_machine: usize,
    machines: Vec<Vec<Option<Resident>>>,
    /// Canonical observed characteristics per application (what the task &
    /// resource monitor reports for a steadily-running instance).
    app_chars: HashMap<String, Characteristics>,
    /// Free slots grouped by neighbour-class key.
    free: BTreeMap<String, BTreeSet<VmRef>>,
}

impl ClusterState {
    /// Creates an empty cluster of `n_machines` with `slots_per_machine`
    /// VMs each, using `app_chars` as the monitor's per-application
    /// characteristics.
    ///
    /// # Panics
    /// Panics when sizes are zero.
    pub fn new(
        n_machines: usize,
        slots_per_machine: usize,
        app_chars: HashMap<String, Characteristics>,
    ) -> Self {
        assert!(n_machines > 0 && slots_per_machine > 0, "empty cluster");
        let machines = vec![vec![None; slots_per_machine]; n_machines];
        let mut state = ClusterState {
            slots_per_machine,
            machines,
            app_chars,
            free: BTreeMap::new(),
        };
        for m in 0..n_machines {
            for s in 0..slots_per_machine {
                state.free.entry(String::new()).or_default().insert(VmRef {
                    machine: m,
                    slot: s,
                });
            }
        }
        state
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Slots per machine.
    pub fn slots_per_machine(&self) -> usize {
        self.slots_per_machine
    }

    /// Total number of VM slots.
    pub fn n_slots(&self) -> usize {
        self.machines.len() * self.slots_per_machine
    }

    /// Number of free slots.
    pub fn n_free(&self) -> usize {
        self.free.values().map(|s| s.len()).sum()
    }

    /// The resident of a slot, if any.
    pub fn resident(&self, vm: VmRef) -> Option<&Resident> {
        self.machines[vm.machine][vm.slot].as_ref()
    }

    /// The class key of a free slot on `machine`: neighbour apps sorted
    /// and joined with `+` ("" when all neighbours are idle).
    fn class_key(&self, machine: usize, slot: usize) -> String {
        let mut names: Vec<&str> = self.machines[machine]
            .iter()
            .enumerate()
            .filter(|(s, r)| *s != slot && r.is_some())
            .map(|(_, r)| r.as_ref().unwrap().app.as_str())
            .collect();
        names.sort_unstable();
        names.join("+")
    }

    /// Aggregate neighbour characteristics of a slot.
    pub fn background_of(&self, vm: VmRef) -> Characteristics {
        let mut bg = Characteristics::idle();
        for (s, r) in self.machines[vm.machine].iter().enumerate() {
            if s == vm.slot {
                continue;
            }
            if let Some(res) = r {
                let c = self
                    .app_chars
                    .get(&res.app)
                    .copied()
                    .unwrap_or_else(Characteristics::idle);
                bg = bg.combine(&c);
            }
        }
        bg
    }

    /// The free-slot classes currently available (deterministic order).
    pub fn free_classes(&self) -> Vec<FreeClass> {
        self.free
            .iter()
            .filter(|(_, slots)| !slots.is_empty())
            .map(|(key, slots)| {
                let example = *slots.iter().next().unwrap();
                FreeClass {
                    key: key.clone(),
                    background: self.background_of(example),
                    example,
                    count: slots.len(),
                }
            })
            .collect()
    }

    /// Whether any machine is entirely free (all slots idle). Cheap: the
    /// idle neighbour class is keyed by the empty string.
    pub fn has_idle_machine(&self) -> bool {
        self.free.get("").is_some_and(|set| !set.is_empty())
    }

    /// First free slot in deterministic order, if any (FIFO placement).
    pub fn first_free(&self) -> Option<VmRef> {
        self.free.values().flat_map(|s| s.iter()).min().copied()
    }

    fn remove_free(&mut self, vm: VmRef) {
        let key = self.class_key(vm.machine, vm.slot);
        if let Some(set) = self.free.get_mut(&key) {
            set.remove(&vm);
            if set.is_empty() {
                self.free.remove(&key);
            }
        }
    }

    fn add_free(&mut self, vm: VmRef) {
        let key = self.class_key(vm.machine, vm.slot);
        self.free.entry(key).or_default().insert(vm);
    }

    /// Re-indexes every free sibling slot of `machine` (their class keys
    /// change when a resident arrives or departs).
    fn reindex_machine(&mut self, machine: usize, changed_slot: usize) {
        for s in 0..self.slots_per_machine {
            if s == changed_slot {
                continue;
            }
            let vm = VmRef { machine, slot: s };
            if self.machines[machine][s].is_none() {
                // Remove from whatever class set currently holds it, then
                // re-add under the fresh key.
                for set in self.free.values_mut() {
                    set.remove(&vm);
                }
                self.free.retain(|_, set| !set.is_empty());
                self.add_free(vm);
            }
        }
    }

    /// Places a resident into a free slot.
    ///
    /// # Panics
    /// Panics when the slot is occupied.
    pub fn place(&mut self, vm: VmRef, resident: Resident) {
        assert!(
            self.machines[vm.machine][vm.slot].is_none(),
            "slot {vm:?} already occupied"
        );
        self.remove_free(vm);
        self.machines[vm.machine][vm.slot] = Some(resident);
        self.reindex_machine(vm.machine, vm.slot);
    }

    /// Clears a slot (task completion), returning the departing resident.
    ///
    /// # Panics
    /// Panics when the slot is already free.
    pub fn clear(&mut self, vm: VmRef) -> Resident {
        let resident = self.machines[vm.machine][vm.slot]
            .take()
            .unwrap_or_else(|| panic!("slot {vm:?} already free"));
        self.add_free(vm);
        self.reindex_machine(vm.machine, vm.slot);
        resident
    }

    /// Looks up the canonical characteristics of an application.
    pub fn app_chars(&self, app: &str) -> Characteristics {
        self.app_chars
            .get(app)
            .copied()
            .unwrap_or_else(Characteristics::idle)
    }

    /// Iterates over all occupied slots.
    pub fn occupied(&self) -> impl Iterator<Item = (VmRef, &Resident)> {
        self.machines.iter().enumerate().flat_map(|(m, slots)| {
            slots.iter().enumerate().filter_map(move |(s, r)| {
                r.as_ref().map(|res| {
                    (
                        VmRef {
                            machine: m,
                            slot: s,
                        },
                        res,
                    )
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(rps: f64) -> Characteristics {
        Characteristics::new(rps, 0.0, 0.5, 0.05)
    }

    fn cluster() -> ClusterState {
        let mut app_chars = HashMap::new();
        app_chars.insert("a".to_string(), chars(100.0));
        app_chars.insert("b".to_string(), chars(200.0));
        ClusterState::new(3, 2, app_chars)
    }

    #[test]
    fn fresh_cluster_is_all_idle_class() {
        let c = cluster();
        assert_eq!(c.n_free(), 6);
        let classes = c.free_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].key, "");
        assert_eq!(classes[0].count, 6);
        assert_eq!(classes[0].background, Characteristics::idle());
    }

    #[test]
    fn placing_creates_neighbour_class() {
        let mut c = cluster();
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            Resident {
                task_id: 1,
                app: "a".into(),
            },
        );
        assert_eq!(c.n_free(), 5);
        let classes = c.free_classes();
        // Classes: idle (4 slots on machines 1,2) and "a" (slot 0.1).
        assert_eq!(classes.len(), 2);
        let a_class = classes.iter().find(|cl| cl.key == "a").unwrap();
        assert_eq!(a_class.count, 1);
        assert_eq!(
            a_class.example,
            VmRef {
                machine: 0,
                slot: 1
            }
        );
        assert_eq!(a_class.background.read_rps, 100.0);
    }

    #[test]
    fn clearing_restores_idle_class() {
        let mut c = cluster();
        let vm = VmRef {
            machine: 0,
            slot: 0,
        };
        c.place(
            vm,
            Resident {
                task_id: 1,
                app: "a".into(),
            },
        );
        let departed = c.clear(vm);
        assert_eq!(departed.app, "a");
        assert_eq!(c.n_free(), 6);
        assert_eq!(c.free_classes().len(), 1);
    }

    #[test]
    fn sibling_placement_updates_class() {
        let mut c = cluster();
        c.place(
            VmRef {
                machine: 1,
                slot: 0,
            },
            Resident {
                task_id: 1,
                app: "a".into(),
            },
        );
        c.place(
            VmRef {
                machine: 1,
                slot: 1,
            },
            Resident {
                task_id: 2,
                app: "b".into(),
            },
        );
        // Machine 1 full; only idle slots remain.
        let classes = c.free_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].key, "");
        assert_eq!(classes[0].count, 4);
        // Clearing slot 0 exposes a free slot whose neighbour is b.
        c.clear(VmRef {
            machine: 1,
            slot: 0,
        });
        let classes = c.free_classes();
        let b_class = classes.iter().find(|cl| cl.key == "b").unwrap();
        assert_eq!(b_class.background.read_rps, 200.0);
    }

    #[test]
    fn background_combines_multiple_neighbours() {
        let mut app_chars = HashMap::new();
        app_chars.insert("a".to_string(), chars(100.0));
        let mut c = ClusterState::new(1, 3, app_chars);
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            Resident {
                task_id: 1,
                app: "a".into(),
            },
        );
        c.place(
            VmRef {
                machine: 0,
                slot: 1,
            },
            Resident {
                task_id: 2,
                app: "a".into(),
            },
        );
        let bg = c.background_of(VmRef {
            machine: 0,
            slot: 2,
        });
        assert_eq!(bg.read_rps, 200.0);
        // Class key sorts and joins the neighbours.
        let classes = c.free_classes();
        assert_eq!(classes[0].key, "a+a");
    }

    #[test]
    fn first_free_is_deterministic() {
        let mut c = cluster();
        assert_eq!(
            c.first_free(),
            Some(VmRef {
                machine: 0,
                slot: 0
            })
        );
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            Resident {
                task_id: 1,
                app: "a".into(),
            },
        );
        assert_eq!(
            c.first_free(),
            Some(VmRef {
                machine: 0,
                slot: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_place_panics() {
        let mut c = cluster();
        let vm = VmRef {
            machine: 0,
            slot: 0,
        };
        c.place(
            vm,
            Resident {
                task_id: 1,
                app: "a".into(),
            },
        );
        c.place(
            vm,
            Resident {
                task_id: 2,
                app: "b".into(),
            },
        );
    }

    #[test]
    fn occupied_iterates_residents() {
        let mut c = cluster();
        c.place(
            VmRef {
                machine: 2,
                slot: 1,
            },
            Resident {
                task_id: 9,
                app: "b".into(),
            },
        );
        let occ: Vec<_> = c.occupied().collect();
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].1.task_id, 9);
    }
}
