//! The scheduler's view of the data center: machines with a fixed number
//! of VM slots, each slot either free or holding a resident application.
//!
//! Free slots are indexed by their *neighbour class* — the (sorted)
//! multiset of applications resident on the same machine, packed into a
//! [`ClassKey`]. With 8 applications and two slots per machine there are
//! only 9 classes (idle + one per app), so schedulers scan classes
//! instead of individual VMs and scheduling cost is independent of
//! cluster size.

use crate::characteristics::Characteristics;
use crate::interner::{AppId, AppRegistry, ClassKey, MAX_NEIGHBOURS};
use crate::resource::MachineClass;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// A virtual machine slot: machine index and slot index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmRef {
    /// Physical machine index.
    pub machine: usize,
    /// Slot index on the machine.
    pub slot: usize,
}

/// A task resident in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resident {
    /// The scheduler-visible task id.
    pub task_id: u64,
    /// The application the task runs (interned).
    pub app: AppId,
}

/// One free-slot class: slots whose machine hosts the same multiset of
/// neighbour applications.
#[derive(Debug, Clone, Copy)]
pub struct FreeClass {
    /// Packed neighbour-class key ([`ClassKey::IDLE`] when the rest of
    /// the machine is idle).
    pub key: ClassKey,
    /// Machine-class index of the hosting machines (see
    /// [`ClusterState::machine_classes`]; always `0` on a homogeneous
    /// cluster).
    pub mclass: u16,
    /// Aggregate characteristics of the neighbours (idle = zeros).
    pub background: Characteristics,
    /// A representative free slot of this class.
    pub example: VmRef,
    /// How many free slots belong to the class.
    pub count: usize,
}

/// The cluster state schedulers operate on.
#[derive(Debug, Clone)]
pub struct ClusterState {
    slots_per_machine: usize,
    machines: Vec<Vec<Option<Resident>>>,
    /// Name ↔ id map over the applications the monitor knows.
    registry: Arc<AppRegistry>,
    /// Canonical observed characteristics per application id (what the
    /// task & resource monitor reports for a steadily-running instance).
    chars_by_id: Vec<Characteristics>,
    /// Free slots grouped by `(neighbour-class key, machine-class index)`.
    /// `BTreeMap` iteration order over packed keys equals the legacy
    /// joined-string order, and on a homogeneous cluster every key is
    /// `(k, 0)`, so first-minimum tie-breaks are unchanged.
    free: BTreeMap<(ClassKey, u16), BTreeSet<VmRef>>,
    /// Machine-class table. Index 0 always exists; a homogeneous cluster
    /// has only [`MachineClass::local`].
    classes: Vec<MachineClass>,
    /// Machine-class index per machine.
    mclass: Vec<u16>,
    /// Machines currently marked down (crashed). A down machine has no
    /// slots in the free index, so every scheduler transparently skips
    /// it; [`ClusterState::set_up`] relists its slots.
    down: Vec<bool>,
}

impl ClusterState {
    /// Creates an empty cluster of `n_machines` with `slots_per_machine`
    /// VMs each, using `app_chars` as the monitor's per-application
    /// characteristics. An [`AppRegistry`] is derived from the (sorted)
    /// application names, so any cluster built from the same name set
    /// agrees on ids.
    ///
    /// # Panics
    /// Panics when sizes are zero or `slots_per_machine` exceeds
    /// [`MAX_NEIGHBOURS`]` + 1`.
    pub fn new(
        n_machines: usize,
        slots_per_machine: usize,
        app_chars: HashMap<String, Characteristics>,
    ) -> Self {
        assert!(n_machines > 0 && slots_per_machine > 0, "empty cluster");
        assert!(
            slots_per_machine <= MAX_NEIGHBOURS + 1,
            "at most {} slots per machine supported",
            MAX_NEIGHBOURS + 1
        );
        let registry = Arc::new(AppRegistry::from_names(app_chars.keys().cloned()));
        let chars_by_id = registry.names().iter().map(|n| app_chars[n]).collect();
        let machines = vec![vec![None; slots_per_machine]; n_machines];
        let mut state = ClusterState {
            slots_per_machine,
            machines,
            registry,
            chars_by_id,
            free: BTreeMap::new(),
            classes: vec![MachineClass::local()],
            mclass: vec![0; n_machines],
            down: vec![false; n_machines],
        };
        let all_idle: BTreeSet<VmRef> = (0..n_machines)
            .flat_map(|m| {
                (0..slots_per_machine).map(move |s| VmRef {
                    machine: m,
                    slot: s,
                })
            })
            .collect();
        state.free.insert((ClassKey::IDLE, 0), all_idle);
        state
    }

    /// Declares the cluster heterogeneous: `classes` is the machine-class
    /// table and `assignment[m]` the class index of machine `m`. The free
    /// index is rebuilt so slots on different hardware never share a
    /// [`FreeClass`]. Must be called before any placement.
    ///
    /// # Panics
    /// Panics when the cluster is not empty, `classes` is empty,
    /// `assignment` does not cover every machine, or an index is out of
    /// range.
    pub fn set_machine_classes(&mut self, classes: Vec<MachineClass>, assignment: Vec<u16>) {
        assert!(
            self.occupied().next().is_none(),
            "machine classes must be set on an empty cluster"
        );
        assert!(!classes.is_empty(), "at least one machine class required");
        assert_eq!(
            assignment.len(),
            self.machines.len(),
            "one class index per machine"
        );
        assert!(
            assignment.iter().all(|&c| (c as usize) < classes.len()),
            "machine-class index out of range"
        );
        self.classes = classes;
        self.mclass = assignment;
        let listed: Vec<VmRef> = self.free.values().flatten().copied().collect();
        self.free.clear();
        for vm in listed {
            self.add_free(vm);
        }
    }

    /// The machine-class table ([`MachineClass::local`] alone on a
    /// homogeneous cluster). [`FreeClass::mclass`] indexes into it.
    pub fn machine_classes(&self) -> &[MachineClass] {
        &self.classes
    }

    /// The machine class a machine belongs to.
    pub fn machine_class(&self, machine: usize) -> &MachineClass {
        &self.classes[self.mclass[machine] as usize]
    }

    /// The machine-class index of a machine.
    pub fn machine_class_index(&self, machine: usize) -> u16 {
        self.mclass[machine]
    }

    /// The registry mapping application names to the interned ids tasks
    /// and residents carry.
    pub fn registry(&self) -> &Arc<AppRegistry> {
        &self.registry
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Slots per machine.
    pub fn slots_per_machine(&self) -> usize {
        self.slots_per_machine
    }

    /// Total number of VM slots.
    pub fn n_slots(&self) -> usize {
        self.machines.len() * self.slots_per_machine
    }

    /// Number of free slots.
    pub fn n_free(&self) -> usize {
        self.free.values().map(|s| s.len()).sum()
    }

    /// The resident of a slot, if any.
    pub fn resident(&self, vm: VmRef) -> Option<&Resident> {
        self.machines[vm.machine][vm.slot].as_ref()
    }

    /// The class key of a slot on `machine`: the packed multiset of its
    /// resident neighbours ([`ClassKey::IDLE`] when all are idle).
    fn class_key(&self, machine: usize, slot: usize) -> ClassKey {
        ClassKey::from_neighbours(
            self.machines[machine]
                .iter()
                .enumerate()
                .filter(|(s, r)| *s != slot && r.is_some())
                .map(|(_, r)| r.as_ref().unwrap().app),
        )
    }

    /// Aggregate neighbour characteristics of a slot.
    pub fn background_of(&self, vm: VmRef) -> Characteristics {
        let mut bg = Characteristics::idle();
        for (s, r) in self.machines[vm.machine].iter().enumerate() {
            if s == vm.slot {
                continue;
            }
            if let Some(res) = r {
                let c = self
                    .chars_by_id
                    .get(res.app.index())
                    .copied()
                    .unwrap_or_else(Characteristics::idle);
                bg = bg.combine(&c);
            }
        }
        bg
    }

    /// The free-slot classes currently available, in deterministic
    /// (packed-key) order, without allocating.
    pub fn free_class_iter(&self) -> impl Iterator<Item = FreeClass> + '_ {
        self.free
            .iter()
            .filter(|(_, slots)| !slots.is_empty())
            .map(|(&(key, mclass), slots)| {
                let example = *slots.iter().next().unwrap();
                FreeClass {
                    key,
                    mclass,
                    background: self.background_of(example),
                    example,
                    count: slots.len(),
                }
            })
    }

    /// The free-slot classes currently available (deterministic order).
    pub fn free_classes(&self) -> Vec<FreeClass> {
        self.free_class_iter().collect()
    }

    /// Collects the free-slot classes into a reusable buffer (cleared
    /// first) so batch schedulers avoid a fresh allocation per round.
    pub fn free_classes_into(&self, out: &mut Vec<FreeClass>) {
        out.clear();
        out.extend(self.free_class_iter());
    }

    /// The class key and neighbour characteristics of one specific free
    /// slot (FIFO's diagnostic score needs the slot it already picked).
    pub fn class_of(&self, vm: VmRef) -> (ClassKey, Characteristics) {
        (self.class_key(vm.machine, vm.slot), self.background_of(vm))
    }

    /// The full [`FreeClass`] view of one specific free slot — what a
    /// class-aware scorer needs for a slot it already picked.
    pub fn class_view(&self, vm: VmRef) -> FreeClass {
        FreeClass {
            key: self.class_key(vm.machine, vm.slot),
            mclass: self.mclass[vm.machine],
            background: self.background_of(vm),
            example: vm,
            count: 1,
        }
    }

    /// Whether any machine is entirely free (all slots idle). Cheap: the
    /// idle neighbour classes are the contiguous key range
    /// `(ClassKey::IDLE, *)`.
    pub fn has_idle_machine(&self) -> bool {
        self.free
            .range((ClassKey::IDLE, 0)..=(ClassKey::IDLE, u16::MAX))
            .any(|(_, set)| !set.is_empty())
    }

    /// First free slot in deterministic order, if any (FIFO placement).
    pub fn first_free(&self) -> Option<VmRef> {
        self.free.values().flat_map(|s| s.iter()).min().copied()
    }

    fn remove_free(&mut self, vm: VmRef) {
        let key = (self.class_key(vm.machine, vm.slot), self.mclass[vm.machine]);
        if let Some(set) = self.free.get_mut(&key) {
            set.remove(&vm);
            if set.is_empty() {
                self.free.remove(&key);
            }
        }
    }

    fn add_free(&mut self, vm: VmRef) {
        let key = (self.class_key(vm.machine, vm.slot), self.mclass[vm.machine]);
        self.free.entry(key).or_default().insert(vm);
    }

    /// Removes every free sibling of `changed_slot` from the free index
    /// under its *current* class key. Must run before the slot mutates;
    /// [`ClusterState::attach_free_siblings`] re-adds them afterwards
    /// under their fresh keys. This replaces the old scan over every
    /// class set with two O(slots) passes.
    fn detach_free_siblings(&mut self, machine: usize, changed_slot: usize) {
        for s in 0..self.slots_per_machine {
            if s != changed_slot && self.machines[machine][s].is_none() {
                self.remove_free(VmRef { machine, slot: s });
            }
        }
    }

    fn attach_free_siblings(&mut self, machine: usize, changed_slot: usize) {
        for s in 0..self.slots_per_machine {
            if s != changed_slot && self.machines[machine][s].is_none() {
                self.add_free(VmRef { machine, slot: s });
            }
        }
    }

    /// Places a resident into a free slot.
    ///
    /// # Panics
    /// Panics when the slot is occupied or the machine is down.
    pub fn place(&mut self, vm: VmRef, resident: Resident) {
        assert!(!self.down[vm.machine], "machine {} is down", vm.machine);
        assert!(
            self.machines[vm.machine][vm.slot].is_none(),
            "slot {vm:?} already occupied"
        );
        self.remove_free(vm);
        self.detach_free_siblings(vm.machine, vm.slot);
        self.machines[vm.machine][vm.slot] = Some(resident);
        self.attach_free_siblings(vm.machine, vm.slot);
    }

    /// Clears a slot (task completion), returning the departing resident.
    ///
    /// # Panics
    /// Panics when the slot is already free.
    pub fn clear(&mut self, vm: VmRef) -> Resident {
        assert!(
            self.machines[vm.machine][vm.slot].is_some(),
            "slot {vm:?} already free"
        );
        self.detach_free_siblings(vm.machine, vm.slot);
        let resident = self.machines[vm.machine][vm.slot].take().unwrap();
        self.add_free(vm);
        self.attach_free_siblings(vm.machine, vm.slot);
        resident
    }

    /// Looks up the canonical characteristics of an application by name.
    pub fn app_chars(&self, app: &str) -> Characteristics {
        self.registry
            .id(app)
            .map(|id| self.chars_by_id[id.index()])
            .unwrap_or_else(Characteristics::idle)
    }

    /// Looks up the canonical characteristics of an interned application.
    pub fn chars_of(&self, app: AppId) -> Characteristics {
        self.chars_by_id
            .get(app.index())
            .copied()
            .unwrap_or_else(Characteristics::idle)
    }

    /// Whether `machine` is currently marked down.
    pub fn is_down(&self, machine: usize) -> bool {
        self.down[machine]
    }

    /// Number of machines currently marked down.
    pub fn n_down(&self) -> usize {
        self.down.iter().filter(|d| **d).count()
    }

    /// Marks a machine as down (crashed): every resident is evicted and
    /// returned (in slot order) and every free slot is delisted from the
    /// free index, so no scheduler can place onto the machine until
    /// [`ClusterState::set_up`] restores it.
    ///
    /// # Panics
    /// Panics when the machine is already down.
    pub fn set_down(&mut self, machine: usize) -> Vec<(VmRef, Resident)> {
        assert!(!self.down[machine], "machine {machine} already down");
        // Delist free slots first: class keys depend on the residents we
        // are about to evict.
        for slot in 0..self.slots_per_machine {
            if self.machines[machine][slot].is_none() {
                self.remove_free(VmRef { machine, slot });
            }
        }
        let mut evicted = Vec::new();
        for slot in 0..self.slots_per_machine {
            if let Some(resident) = self.machines[machine][slot].take() {
                evicted.push((VmRef { machine, slot }, resident));
            }
        }
        self.down[machine] = true;
        evicted
    }

    /// Marks a down machine as recovered: all its (now empty) slots
    /// rejoin the free index under the idle class.
    ///
    /// # Panics
    /// Panics when the machine is not down.
    pub fn set_up(&mut self, machine: usize) {
        assert!(self.down[machine], "machine {machine} is not down");
        self.down[machine] = false;
        for slot in 0..self.slots_per_machine {
            self.add_free(VmRef { machine, slot });
        }
    }

    /// Iterates over all occupied slots.
    pub fn occupied(&self) -> impl Iterator<Item = (VmRef, &Resident)> {
        self.machines.iter().enumerate().flat_map(|(m, slots)| {
            slots.iter().enumerate().filter_map(move |(s, r)| {
                r.as_ref().map(|res| {
                    (
                        VmRef {
                            machine: m,
                            slot: s,
                        },
                        res,
                    )
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(rps: f64) -> Characteristics {
        Characteristics::new(rps, 0.0, 0.5, 0.05)
    }

    fn cluster() -> ClusterState {
        let mut app_chars = HashMap::new();
        app_chars.insert("a".to_string(), chars(100.0));
        app_chars.insert("b".to_string(), chars(200.0));
        ClusterState::new(3, 2, app_chars)
    }

    fn key(c: &ClusterState, names: &[&str]) -> ClassKey {
        ClassKey::from_neighbours(names.iter().map(|n| c.registry().expect_id(n)))
    }

    fn resident(c: &ClusterState, task_id: u64, name: &str) -> Resident {
        Resident {
            task_id,
            app: c.registry().expect_id(name),
        }
    }

    #[test]
    fn fresh_cluster_is_all_idle_class() {
        let c = cluster();
        assert_eq!(c.n_free(), 6);
        let classes = c.free_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].key, ClassKey::IDLE);
        assert_eq!(classes[0].count, 6);
        assert_eq!(classes[0].background, Characteristics::idle());
    }

    #[test]
    fn placing_creates_neighbour_class() {
        let mut c = cluster();
        let r = resident(&c, 1, "a");
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            r,
        );
        assert_eq!(c.n_free(), 5);
        let classes = c.free_classes();
        // Classes: idle (4 slots on machines 1,2) and "a" (slot 0.1).
        assert_eq!(classes.len(), 2);
        let a_key = key(&c, &["a"]);
        let a_class = classes.iter().find(|cl| cl.key == a_key).unwrap();
        assert_eq!(a_class.count, 1);
        assert_eq!(
            a_class.example,
            VmRef {
                machine: 0,
                slot: 1
            }
        );
        assert_eq!(a_class.background.read_rps, 100.0);
    }

    #[test]
    fn clearing_restores_idle_class() {
        let mut c = cluster();
        let vm = VmRef {
            machine: 0,
            slot: 0,
        };
        let r = resident(&c, 1, "a");
        c.place(vm, r);
        let departed = c.clear(vm);
        assert_eq!(departed.app, c.registry().expect_id("a"));
        assert_eq!(c.n_free(), 6);
        assert_eq!(c.free_classes().len(), 1);
    }

    #[test]
    fn sibling_placement_updates_class() {
        let mut c = cluster();
        let ra = resident(&c, 1, "a");
        let rb = resident(&c, 2, "b");
        c.place(
            VmRef {
                machine: 1,
                slot: 0,
            },
            ra,
        );
        c.place(
            VmRef {
                machine: 1,
                slot: 1,
            },
            rb,
        );
        // Machine 1 full; only idle slots remain.
        let classes = c.free_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].key, ClassKey::IDLE);
        assert_eq!(classes[0].count, 4);
        // Clearing slot 0 exposes a free slot whose neighbour is b.
        c.clear(VmRef {
            machine: 1,
            slot: 0,
        });
        let classes = c.free_classes();
        let b_key = key(&c, &["b"]);
        let b_class = classes.iter().find(|cl| cl.key == b_key).unwrap();
        assert_eq!(b_class.background.read_rps, 200.0);
    }

    #[test]
    fn background_combines_multiple_neighbours() {
        let mut app_chars = HashMap::new();
        app_chars.insert("a".to_string(), chars(100.0));
        let mut c = ClusterState::new(1, 3, app_chars);
        let r1 = resident(&c, 1, "a");
        let r2 = resident(&c, 2, "a");
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            r1,
        );
        c.place(
            VmRef {
                machine: 0,
                slot: 1,
            },
            r2,
        );
        let bg = c.background_of(VmRef {
            machine: 0,
            slot: 2,
        });
        assert_eq!(bg.read_rps, 200.0);
        // Class key packs the sorted neighbour multiset.
        let classes = c.free_classes();
        assert_eq!(classes[0].key, key(&c, &["a", "a"]));
    }

    #[test]
    fn first_free_is_deterministic() {
        let mut c = cluster();
        assert_eq!(
            c.first_free(),
            Some(VmRef {
                machine: 0,
                slot: 0
            })
        );
        let r = resident(&c, 1, "a");
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            r,
        );
        assert_eq!(
            c.first_free(),
            Some(VmRef {
                machine: 0,
                slot: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_place_panics() {
        let mut c = cluster();
        let vm = VmRef {
            machine: 0,
            slot: 0,
        };
        let r1 = resident(&c, 1, "a");
        let r2 = resident(&c, 2, "b");
        c.place(vm, r1);
        c.place(vm, r2);
    }

    #[test]
    fn occupied_iterates_residents() {
        let mut c = cluster();
        let r = resident(&c, 9, "b");
        c.place(
            VmRef {
                machine: 2,
                slot: 1,
            },
            r,
        );
        let occ: Vec<_> = c.occupied().collect();
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].1.task_id, 9);
    }

    #[test]
    fn set_down_evicts_residents_and_hides_slots() {
        let mut c = cluster();
        let vm = VmRef {
            machine: 1,
            slot: 0,
        };
        let r = resident(&c, 7, "a");
        c.place(vm, r);
        assert_eq!(c.n_free(), 5);
        let evicted = c.set_down(1);
        assert_eq!(evicted, vec![(vm, r)]);
        assert!(c.is_down(1));
        assert_eq!(c.n_down(), 1);
        // Machine 1's slots are gone from the free index entirely.
        assert_eq!(c.n_free(), 4);
        assert!(c
            .free_class_iter()
            .all(|cl| cl.key == ClassKey::IDLE && cl.example.machine != 1));
        assert!(c.occupied().next().is_none());
        // first_free never lands on the down machine.
        for _ in 0..4 {
            let vm = c.first_free().unwrap();
            assert_ne!(vm.machine, 1);
            let r = resident(&c, 1, "a");
            c.place(vm, r);
        }
        assert_eq!(c.first_free(), None);
        assert!(!c.has_idle_machine());
    }

    #[test]
    fn set_up_restores_idle_slots() {
        let mut c = cluster();
        c.place(
            VmRef {
                machine: 1,
                slot: 1,
            },
            resident(&c, 3, "b"),
        );
        c.set_down(1);
        c.set_up(1);
        assert!(!c.is_down(1));
        assert_eq!(c.n_free(), 6);
        let classes = c.free_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].key, ClassKey::IDLE);
        assert!(c.has_idle_machine());
    }

    #[test]
    #[should_panic(expected = "is down")]
    fn placing_on_down_machine_panics() {
        let mut c = cluster();
        c.set_down(0);
        let r = resident(&c, 1, "a");
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            r,
        );
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_set_down_panics() {
        let mut c = cluster();
        c.set_down(2);
        c.set_down(2);
    }

    #[test]
    fn machine_classes_split_free_index() {
        let mut c = cluster();
        c.set_machine_classes(
            vec![
                MachineClass::local(),
                MachineClass::remote("iscsi", 1.5, 0.6, 100.0),
            ],
            vec![0, 1, 0],
        );
        // Idle slots on different hardware are distinct free classes.
        let listed = c.free_classes();
        assert_eq!(listed.len(), 2);
        assert_eq!((listed[0].mclass, listed[0].count), (0, 4));
        assert_eq!((listed[1].mclass, listed[1].count), (1, 2));
        assert!(listed.iter().all(|cl| cl.key == ClassKey::IDLE));
        assert!(c.has_idle_machine());
        // first_free stays the global minimum slot.
        assert_eq!(
            c.first_free(),
            Some(VmRef {
                machine: 0,
                slot: 0
            })
        );
        assert_eq!(c.machine_class(1).name, "iscsi");
        assert_eq!(c.machine_class_index(1), 1);
        let view = c.class_view(VmRef {
            machine: 1,
            slot: 0,
        });
        assert_eq!(view.mclass, 1);
        // Placing on the remote machine keys the sibling slot by both the
        // neighbour multiset and the hardware class.
        c.place(
            VmRef {
                machine: 1,
                slot: 0,
            },
            resident(&c, 1, "a"),
        );
        let a_key = key(&c, &["a"]);
        let listed = c.free_classes();
        let a_class = listed.iter().find(|cl| cl.key == a_key).unwrap();
        assert_eq!(a_class.mclass, 1);
    }

    #[test]
    fn homogeneous_cluster_defaults_to_reference_class() {
        let c = cluster();
        assert_eq!(c.machine_classes().len(), 1);
        assert!(c.machine_classes()[0].is_reference());
        assert!(c.free_classes().iter().all(|cl| cl.mclass == 0));
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn machine_classes_require_empty_cluster() {
        let mut c = cluster();
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            resident(&c, 1, "a"),
        );
        c.set_machine_classes(vec![MachineClass::local()], vec![0, 0, 0]);
    }

    #[test]
    fn class_of_matches_free_class_listing() {
        let mut c = cluster();
        let r = resident(&c, 1, "b");
        c.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            r,
        );
        let sibling = VmRef {
            machine: 0,
            slot: 1,
        };
        let (k, bg) = c.class_of(sibling);
        let listed = c.free_classes();
        let cl = listed.iter().find(|cl| cl.key == k).unwrap();
        assert_eq!(cl.example, sibling);
        assert_eq!(cl.background, bg);
    }
}
