//! MIBS design-decision ablations.
//!
//! The production [`Mibs`](super::Mibs) makes three deliberate choices
//! (see its module docs): it scores (task, slot) pairs by *interference
//! excess*, breaks ties toward fragile tasks on idle machines, and runs
//! the Min-Min double-minimum over the whole window. Each variant here
//! disables one choice so the ablation experiment can quantify what the
//! choice contributes; `HeadFirst` is the paper's Algorithm 2 listing
//! taken literally.

use super::{place_best, Assignment, ClusterState, FreeClass, Resident, Scheduler, Task};
use crate::predictor::ScoringPolicy;
use std::collections::VecDeque;

/// Which MIBS ingredient to ablate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MibsVariant {
    /// Min-Min over (task, class) pairs scored by the *absolute*
    /// predicted score instead of the interference excess — short tasks
    /// then look like good fits for every slot.
    AbsoluteScore,
    /// The production scoring but with plain window-order tie-breaking —
    /// fragile tasks no longer claim idle machines first.
    NoFragilityTieBreak,
    /// The paper's Algorithm 2 listing taken literally: candidate 1 is
    /// the queue head (placed by MIOS); candidate 2 is the remaining task
    /// with the least pairwise interference, also placed by MIOS.
    HeadFirst,
    /// Uniformly random (deterministic, seeded by task ids) placement —
    /// a second baseline besides FIFO.
    Random,
}

impl MibsVariant {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MibsVariant::AbsoluteScore => "MIBS[abs-score]",
            MibsVariant::NoFragilityTieBreak => "MIBS[no-fragility]",
            MibsVariant::HeadFirst => "MIBS[head-first]",
            MibsVariant::Random => "RANDOM",
        }
    }

    /// All ablation variants.
    pub const ALL: [MibsVariant; 4] = [
        MibsVariant::AbsoluteScore,
        MibsVariant::NoFragilityTieBreak,
        MibsVariant::HeadFirst,
        MibsVariant::Random,
    ];
}

/// An ablated MIBS.
#[derive(Debug, Clone)]
pub struct MibsAblation {
    /// The ingredient being ablated.
    pub variant: MibsVariant,
}

impl MibsAblation {
    /// Creates the ablated scheduler.
    pub fn new(variant: MibsVariant) -> Self {
        MibsAblation { variant }
    }

    fn schedule_minmin(
        &self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
        use_excess: bool,
        fragility_ties: bool,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        let mut window: Vec<Task> = queue.drain(..).collect();
        let mut classes: Vec<FreeClass> = Vec::new();
        const TIE_EPS: f64 = 1e-9;
        while !window.is_empty() && cluster.n_free() > 0 {
            cluster.free_classes_into(&mut classes);
            let mut best: Option<((f64, f64, usize), usize, usize)> = None;
            for (ti, t) in window.iter().enumerate() {
                let fragility = if fragility_ties {
                    scoring.pair_score(t.app, t.app)
                } else {
                    0.0
                };
                for (ci, c) in classes.iter().enumerate() {
                    let score = if use_excess {
                        scoring.excess_class_score(t.app, c)
                    } else {
                        scoring.class_score(t.app, c)
                    };
                    let tie = if fragility_ties && c.key.is_idle() {
                        -fragility
                    } else {
                        f64::INFINITY
                    };
                    let key = (score, tie, ti);
                    let better = match &best {
                        None => true,
                        Some((bk, _, _)) => {
                            key.0 < bk.0 - TIE_EPS
                                || ((key.0 - bk.0).abs() <= TIE_EPS
                                    && (key.1, key.2) < (bk.1, bk.2))
                        }
                    };
                    if better {
                        best = Some((key, ti, ci));
                    }
                }
            }
            let Some((_, ti, ci)) = best else { break };
            let task = window.swap_remove(ti);
            let class = &classes[ci];
            let score = scoring.class_score(task.app, class);
            let vm = class.example;
            cluster.place(
                vm,
                Resident {
                    task_id: task.id,
                    app: task.app,
                },
            );
            out.push(Assignment {
                task,
                vm,
                predicted_score: score,
            });
        }
        queue.extend(window);
        out
    }

    fn schedule_head_first(
        &self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        while !queue.is_empty() && cluster.n_free() > 0 {
            let candidate_1 = queue.pop_front().expect("non-empty");
            let c1_app = candidate_1.app;
            match place_best(candidate_1, cluster, scoring) {
                Some(a) => out.push(a),
                None => break,
            }
            if queue.is_empty() || cluster.n_free() == 0 {
                break;
            }
            let mut best_idx = 0usize;
            let mut best_score = f64::INFINITY;
            for (i, t) in queue.iter().enumerate() {
                let s = scoring.pair_score(t.app, c1_app);
                if s < best_score {
                    best_score = s;
                    best_idx = i;
                }
            }
            let candidate_2 = queue.remove(best_idx).expect("index in range");
            match place_best(candidate_2, cluster, scoring) {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    fn schedule_random(
        &self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        // Deterministic pseudo-random slot choice keyed by the task id.
        let mut out = Vec::new();
        let mut classes: Vec<FreeClass> = Vec::new();
        while cluster.n_free() > 0 {
            let Some(task) = queue.pop_front() else { break };
            cluster.free_classes_into(&mut classes);
            let pick = (task.id.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) as usize)
                % classes.len();
            let class = &classes[pick];
            let score = scoring.class_score(task.app, class);
            let vm = class.example;
            cluster.place(
                vm,
                Resident {
                    task_id: task.id,
                    app: task.app,
                },
            );
            out.push(Assignment {
                task,
                vm,
                predicted_score: score,
            });
        }
        out
    }
}

impl Scheduler for MibsAblation {
    fn name(&self) -> String {
        self.variant.name().to_string()
    }

    fn schedule(
        &mut self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        match self.variant {
            MibsVariant::AbsoluteScore => {
                self.schedule_minmin(queue, cluster, scoring, false, true)
            }
            MibsVariant::NoFragilityTieBreak => {
                self.schedule_minmin(queue, cluster, scoring, true, false)
            }
            MibsVariant::HeadFirst => self.schedule_head_first(queue, cluster, scoring),
            MibsVariant::Random => self.schedule_random(queue, cluster, scoring),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Objective, ScoringPolicy};
    use crate::sched::test_support::{aid, app_chars, predictor, task};

    fn run_variant(variant: MibsVariant, tasks: &[(&str, u64)]) -> Vec<Assignment> {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        let mut queue: VecDeque<Task> = tasks.iter().map(|(a, i)| task(*i, a)).collect();
        MibsAblation::new(variant).schedule(&mut queue, &mut cluster, &scoring)
    }

    #[test]
    fn all_variants_place_everything_when_capacity_allows() {
        let tasks = [("io", 0), ("io", 1), ("cpu", 2), ("cpu", 3)];
        for v in MibsVariant::ALL {
            let out = run_variant(v, &tasks);
            assert_eq!(out.len(), 4, "{} placed {}", v.name(), out.len());
            // No slot double-booked.
            let mut seen = std::collections::HashSet::new();
            for a in &out {
                assert!(seen.insert(a.vm), "{} double-booked {:?}", v.name(), a.vm);
            }
        }
    }

    #[test]
    fn head_first_still_separates_obvious_pairs() {
        // With the io tasks leading the queue, even the literal Algorithm 2
        // avoids io+io machines on this easy instance.
        let out = run_variant(
            MibsVariant::HeadFirst,
            &[("io", 0), ("cpu", 1), ("io", 2), ("cpu", 3)],
        );
        let io = aid("io");
        for m in 0..2 {
            let io_count = out
                .iter()
                .filter(|a| a.vm.machine == m && a.task.app == io)
                .count();
            assert!(io_count <= 1, "machine {m} has {io_count} io tasks");
        }
    }

    #[test]
    fn random_is_deterministic() {
        let tasks = [("io", 7), ("cpu", 8), ("io", 9)];
        let a = run_variant(MibsVariant::Random, &tasks);
        let b = run_variant(MibsVariant::Random, &tasks);
        let slots_a: Vec<_> = a.iter().map(|x| x.vm).collect();
        let slots_b: Vec<_> = b.iter().map(|x| x.vm).collect();
        assert_eq!(slots_a, slots_b);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            MibsVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), MibsVariant::ALL.len());
    }
}
