//! The FIFO baseline scheduler: tasks are allocated to virtual machines
//! in first-in, first-out order, ignoring interference entirely.

use super::{Assignment, ClusterState, Resident, Scheduler, Task};
use crate::predictor::ScoringPolicy;
use std::collections::VecDeque;

/// First-in-first-out placement onto the first free slot.
#[derive(Debug, Default, Clone)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> String {
        "FIFO".to_string()
    }

    fn schedule(
        &mut self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        while let Some(vm) = cluster.first_free() {
            let Some(task) = queue.pop_front() else { break };
            // Record the score the policy would have predicted, purely for
            // diagnostics — FIFO does not use it.
            let predicted_score = scoring.class_score(task.app, &cluster.class_view(vm));
            cluster.place(
                vm,
                Resident {
                    task_id: task.id,
                    app: task.app,
                },
            );
            out.push(Assignment {
                task,
                vm,
                predicted_score,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Objective, ScoringPolicy};
    use crate::sched::test_support::{app_chars, predictor, task};
    use crate::sched::VmRef;

    #[test]
    fn fills_slots_in_order() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        let mut queue: VecDeque<Task> = (0..3)
            .map(|i| task(i, if i % 2 == 0 { "io" } else { "cpu" }))
            .collect();
        let out = Fifo.schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 3);
        assert!(queue.is_empty());
        // FIFO packs machine 0 first: tasks 0 and 1 are co-located there.
        assert_eq!(
            out[0].vm,
            VmRef {
                machine: 0,
                slot: 0
            }
        );
        assert_eq!(
            out[1].vm,
            VmRef {
                machine: 0,
                slot: 1
            }
        );
        assert_eq!(
            out[2].vm,
            VmRef {
                machine: 1,
                slot: 0
            }
        );
    }

    #[test]
    fn leaves_overflow_queued() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(1, 2, app_chars());
        let mut queue: VecDeque<Task> = (0..5).map(|i| task(i, "io")).collect();
        let out = Fifo.schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 2);
        assert_eq!(queue.len(), 3);
        assert_eq!(cluster.n_free(), 0);
    }

    #[test]
    fn name() {
        assert_eq!(Fifo.name(), "FIFO");
    }
}
