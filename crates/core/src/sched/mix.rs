//! Minimum Interference miXed scheduler (paper Algorithm 3).
//!
//! MIX refuses to commit to MIBS's first answer: it "gives every job a
//! chance to be the first job in the queue when executing MIBS" — each
//! window task is tried as the forced first placement, MIBS schedules
//! the remainder, and the assignment set with the best total predicted
//! score is executed. Quadratically more expensive than MIBS; the
//! paper's point is that the small additional gain rarely justifies the
//! overhead.
//!
//! Head candidates are independent, so on large clusters each one is
//! evaluated on its own cluster clone across worker threads; candidates
//! are reduced in head order, making the result bit-identical to the
//! serial place/undo evaluation for any thread count.

use super::{place_best_with, Assignment, ClusterState, FreeClass, Mibs, Scheduler, Task};
use crate::par;
use crate::predictor::ScoringPolicy;
use std::collections::{HashSet, VecDeque};

/// Minimum cluster size at which cloning the cluster per head candidate
/// and fanning out to worker threads pays for the thread handoff; below
/// it the serial place/undo evaluation is faster.
const PAR_MACHINES_THRESHOLD: usize = 32;

/// The mixed scheduler.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Nominal batch size (display name).
    pub queue_len: usize,
}

impl Mix {
    /// Creates a MIX scheduler with the given nominal batch size.
    pub fn new(queue_len: usize) -> Self {
        Mix { queue_len }
    }
}

impl Default for Mix {
    fn default() -> Self {
        Mix::new(8)
    }
}

fn total_score(assignments: &[Assignment]) -> f64 {
    assignments.iter().map(|a| a.predicted_score).sum()
}

/// Per-evaluation scratch for the head search: a reusable MIBS instance
/// (which owns its own flat scoring buffers) plus the class/score rows
/// for the forced head placement. The serial path carries one `Scratch`
/// across every head candidate; the parallel path gives each worker its
/// own, since candidates run concurrently.
struct Scratch {
    mibs: Mibs,
    classes: Vec<FreeClass>,
    scores: Vec<f64>,
}

impl Scratch {
    fn new(queue_len: usize) -> Self {
        Scratch {
            mibs: Mibs::new(queue_len),
            classes: Vec::new(),
            scores: Vec::new(),
        }
    }
}

impl Scheduler for Mix {
    fn name(&self) -> String {
        format!("MIX_{}", self.queue_len)
    }

    fn schedule(
        &mut self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        if queue.is_empty() || cluster.n_free() == 0 {
            return Vec::new();
        }
        let tasks: Vec<Task> = queue.iter().copied().collect();
        let queue_len = self.queue_len;
        // Force task `head` to be placed first (by MIOS), then let MIBS
        // schedule the remainder on the given cluster.
        let evaluate = |head: usize,
                        cluster: &mut ClusterState,
                        scratch: &mut Scratch|
         -> Option<Vec<Assignment>> {
            let mut placed = vec![place_best_with(
                tasks[head],
                cluster,
                scoring,
                &mut scratch.classes,
                &mut scratch.scores,
            )?];
            let mut rest: VecDeque<Task> = tasks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != head)
                .map(|(_, t)| *t)
                .collect();
            placed.extend(scratch.mibs.schedule(&mut rest, cluster, scoring));
            Some(placed)
        };

        let candidates: Vec<Option<Vec<Assignment>>> =
            if cluster.n_machines() >= PAR_MACHINES_THRESHOLD && tasks.len() > 1 {
                // Each head candidate gets its own cluster clone and
                // scratch, so the evaluations can run on worker threads.
                let shared: &ClusterState = cluster;
                par::map((0..tasks.len()).collect(), |head| {
                    let mut scratch_cluster = shared.clone();
                    let mut scratch = Scratch::new(queue_len);
                    evaluate(head, &mut scratch_cluster, &mut scratch)
                })
            } else {
                // Evaluate on the live cluster and undo (place/clear are
                // exact inverses, cheaper than cloning small clusters).
                // One scratch serves every head: the buffers stay warm.
                let mut scratch = Scratch::new(queue_len);
                (0..tasks.len())
                    .map(|head| {
                        let placed = evaluate(head, cluster, &mut scratch)?;
                        for a in placed.iter().rev() {
                            cluster.clear(a.vm);
                        }
                        Some(placed)
                    })
                    .collect()
            };

        // Reduce in head order: placement count first, then total score —
        // the same better-than rule the serial loop applied.
        let mut best: Option<(f64, Vec<Assignment>)> = None;
        for placed in candidates.into_iter().flatten() {
            let score = total_score(&placed);
            let better = match &best {
                None => true,
                Some((best_score, best_assignments)) => {
                    placed.len() > best_assignments.len()
                        || (placed.len() == best_assignments.len() && score < *best_score)
                }
            };
            if better {
                best = Some((score, placed));
            }
        }

        let Some((_, assignments)) = best else {
            return Vec::new();
        };
        // Commit the winning assignment set and drop its tasks from the
        // queue.
        for a in &assignments {
            cluster.place(
                a.vm,
                super::Resident {
                    task_id: a.task.id,
                    app: a.task.app,
                },
            );
        }
        let assigned_ids: HashSet<u64> = assignments.iter().map(|a| a.task.id).collect();
        queue.retain(|t| !assigned_ids.contains(&t.id));
        assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Objective, ScoringPolicy};
    use crate::sched::test_support::{aid, app_chars, predictor, task};

    #[test]
    fn never_worse_than_mibs() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let tasks = vec![task(0, "io"), task(1, "io"), task(2, "cpu"), task(3, "cpu")];

        let mut c1 = ClusterState::new(2, 2, app_chars());
        let mut q1: VecDeque<Task> = tasks.clone().into();
        let mibs_out = Mibs::new(4).schedule(&mut q1, &mut c1, &scoring);

        let mut c2 = ClusterState::new(2, 2, app_chars());
        let mut q2: VecDeque<Task> = tasks.into();
        let mix_out = Mix::new(4).schedule(&mut q2, &mut c2, &scoring);

        assert_eq!(mix_out.len(), mibs_out.len());
        assert!(total_score(&mix_out) <= total_score(&mibs_out) + 1e-9);
    }

    #[test]
    fn schedules_compatible_pair_on_tight_cluster() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(1, 2, app_chars());
        let mut queue: VecDeque<Task> =
            VecDeque::from(vec![task(0, "io"), task(1, "io"), task(2, "cpu")]);
        let out = Mix::new(3).schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 2);
        let apps: Vec<&str> = out
            .iter()
            .map(|a| cluster.registry().name(a.task.app))
            .collect();
        assert!(
            apps.contains(&"cpu"),
            "MIX should schedule the cpu task: {apps:?}"
        );
        assert!(apps.contains(&"io"));
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn drains_everything_when_capacity_allows() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MaxIops);
        let mut cluster = ClusterState::new(4, 2, app_chars());
        let mut queue: VecDeque<Task> = (0..6)
            .map(|i| task(i, if i < 3 { "io" } else { "cpu" }))
            .collect();
        let out = Mix::new(6).schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 6);
        assert!(queue.is_empty());
        // io tasks spread over distinct machines.
        let io = aid("io");
        let mut io_machines: Vec<usize> = out
            .iter()
            .filter(|a| a.task.app == io)
            .map(|a| a.vm.machine)
            .collect();
        io_machines.sort_unstable();
        io_machines.dedup();
        assert_eq!(io_machines.len(), 3);
    }

    #[test]
    fn parallel_head_search_matches_single_thread() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let tasks: Vec<Task> = (0..8)
            .map(|i| task(i, if i % 2 == 0 { "io" } else { "cpu" }))
            .collect();
        // 64 machines crosses the parallel threshold, so both runs take
        // the clone-per-head path; only the worker count differs.
        let run = |threads: Option<usize>| {
            crate::par::override_threads(threads);
            let mut cluster = ClusterState::new(64, 2, app_chars());
            let mut q: VecDeque<Task> = tasks.clone().into();
            let out = Mix::new(8).schedule(&mut q, &mut cluster, &scoring);
            crate::par::override_threads(None);
            out
        };
        let single = run(Some(1));
        let parallel = run(Some(4));
        assert_eq!(single.len(), parallel.len());
        for (a, b) in single.iter().zip(&parallel) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.vm, b.vm);
            assert_eq!(a.predicted_score.to_bits(), b.predicted_score.to_bits());
        }
    }

    #[test]
    fn empty_inputs() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(1, 2, app_chars());
        let mut queue = VecDeque::new();
        assert!(Mix::new(8)
            .schedule(&mut queue, &mut cluster, &scoring)
            .is_empty());
    }

    #[test]
    fn name_includes_queue_len() {
        assert_eq!(Mix::new(8).name(), "MIX_8");
    }
}
