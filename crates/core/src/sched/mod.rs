//! Interference-aware scheduling (paper Section 3.2): the FIFO baseline
//! and the three TRACON schedulers — MIOS (online, Algorithm 1), MIBS
//! (batch Min-Min pairing, Algorithm 2), and MIX (best-head batch,
//! Algorithm 3) — each optimizing either total runtime or total IOPS.

pub mod ablation;
pub mod cluster;
pub mod fifo;
pub mod mibs;
pub mod mios;
pub mod mix;

pub use ablation::{MibsAblation, MibsVariant};
pub use cluster::{ClusterState, FreeClass, Resident, VmRef};
pub use fifo::Fifo;
pub use mibs::Mibs;
pub use mios::Mios;
pub use mix::Mix;

use crate::predictor::ScoringPolicy;
use std::collections::VecDeque;

/// A schedulable task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Unique task id.
    pub id: u64,
    /// The application the task runs.
    pub app: String,
}

impl Task {
    /// Creates a task.
    pub fn new(id: u64, app: impl Into<String>) -> Self {
        Task {
            id,
            app: app.into(),
        }
    }
}

/// One scheduling decision.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The assigned task.
    pub task: Task,
    /// The chosen VM slot.
    pub vm: VmRef,
    /// Predicted score of the placement at decision time (lower better).
    pub predicted_score: f64,
}

/// A scheduling algorithm. `schedule` drains as much of the queue as the
/// cluster's free slots allow, applying its placements to `cluster` and
/// returning them; tasks that cannot be placed remain queued.
pub trait Scheduler {
    /// Scheduler name, e.g. "MIBS_RT(8)".
    fn name(&self) -> String;

    /// Schedules queued tasks onto the cluster.
    fn schedule(
        &mut self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment>;
}

/// Places a single task on the best free slot according to the scoring
/// policy (the body of Algorithm 1, shared by MIOS, MIBS, and MIX).
/// Returns `None` when the cluster is full.
pub(crate) fn place_best(
    task: Task,
    cluster: &mut ClusterState,
    scoring: &ScoringPolicy<'_>,
) -> Option<Assignment> {
    let classes = cluster.free_classes();
    if classes.is_empty() {
        return None;
    }
    let mut best: Option<(f64, VmRef)> = None;
    for class in &classes {
        let score = scoring.score(&task.app, &class.key, &class.background);
        if best.is_none_or(|(b, _)| score < b) {
            best = Some((score, class.example));
        }
    }
    let (score, vm) = best?;
    cluster.place(
        vm,
        Resident {
            task_id: task.id,
            app: task.app.clone(),
        },
    );
    Some(Assignment {
        task,
        vm,
        predicted_score: score,
    })
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for scheduler tests: a tiny synthetic "world" with
    //! two application types — `io` tasks interfere badly with each other
    //! while `cpu` tasks are benign — so the interference-aware schedulers
    //! have an unambiguous right answer to find.

    use crate::characteristics::{Characteristics, N_JOINT};
    use crate::model::{InterferenceModel, ModelKind};
    use crate::predictor::{AppModelSet, AppProfile, Predictor};
    use std::collections::HashMap;

    /// Runtime model: base 100 s plus a penalty proportional to the
    /// product of the two VMs' read rates (mimicking disk-stream mixing).
    struct PairwiseRuntime;
    impl InterferenceModel for PairwiseRuntime {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            100.0 + 0.02 * f[0] * f[4]
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Nonlinear
        }
        fn n_terms(&self) -> usize {
            1
        }
    }

    /// IOPS model: solo IOPS shrunk by the same product interaction.
    struct PairwiseIops;
    impl InterferenceModel for PairwiseIops {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            (f[0] + f[1]) / (1.0 + 0.0002 * f[0] * f[4])
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Nonlinear
        }
        fn n_terms(&self) -> usize {
            1
        }
    }

    /// Characteristics: `io` reads at 200/s, `cpu` barely at all.
    pub fn app_chars() -> HashMap<String, Characteristics> {
        let mut m = HashMap::new();
        m.insert("io".to_string(), Characteristics::new(200.0, 0.0, 0.3, 0.1));
        m.insert("cpu".to_string(), Characteristics::new(5.0, 0.0, 1.0, 0.01));
        m
    }

    /// A predictor over the two synthetic apps.
    pub fn predictor() -> Predictor {
        let mut p = Predictor::new();
        for (name, c) in app_chars() {
            let solo_runtime = 100.0;
            let solo_iops = c.read_rps + c.write_rps;
            p.add_app(
                AppProfile {
                    name: name.clone(),
                    solo: c,
                    solo_runtime,
                    solo_iops,
                },
                AppModelSet {
                    runtime: Box::new(PairwiseRuntime),
                    iops: Box::new(PairwiseIops),
                },
            );
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::predictor::{Objective, ScoringPolicy};

    #[test]
    fn place_best_avoids_interfering_neighbour() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        // Machine 0 hosts an io task; machine 1 is idle.
        cluster.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            Resident {
                task_id: 1,
                app: "io".into(),
            },
        );
        let a = place_best(Task::new(2, "io"), &mut cluster, &scoring).unwrap();
        assert_eq!(
            a.vm.machine, 1,
            "io task should avoid the io-occupied machine"
        );
    }

    #[test]
    fn place_best_pairs_cpu_with_io() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        cluster.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            Resident {
                task_id: 1,
                app: "io".into(),
            },
        );
        // A cpu task is indifferent-ish but must not fail; any free slot ok.
        let a = place_best(Task::new(2, "cpu"), &mut cluster, &scoring).unwrap();
        assert!(cluster.resident(a.vm).is_some());
    }

    #[test]
    fn place_best_full_cluster_returns_none() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(1, 1, app_chars());
        assert!(place_best(Task::new(1, "io"), &mut cluster, &scoring).is_some());
        assert!(place_best(Task::new(2, "io"), &mut cluster, &scoring).is_none());
    }
}
