//! Interference-aware scheduling (paper Section 3.2): the FIFO baseline
//! and the three TRACON schedulers — MIOS (online, Algorithm 1), MIBS
//! (batch Min-Min pairing, Algorithm 2), and MIX (best-head batch,
//! Algorithm 3) — each optimizing either total runtime or total IOPS.

pub mod ablation;
pub mod cluster;
pub mod fifo;
pub mod mibs;
pub mod mios;
pub mod mix;

pub use ablation::{MibsAblation, MibsVariant};
pub use cluster::{ClusterState, FreeClass, Resident, VmRef};
pub use fifo::Fifo;
pub use mibs::Mibs;
pub use mios::Mios;
pub use mix::Mix;

use crate::interner::AppId;
use crate::predictor::ScoringPolicy;
use std::collections::VecDeque;

/// A schedulable task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Unique task id.
    pub id: u64,
    /// The application the task runs (interned via the cluster's
    /// [`crate::interner::AppRegistry`]).
    pub app: AppId,
}

impl Task {
    /// Creates a task.
    pub fn new(id: u64, app: AppId) -> Self {
        Task { id, app }
    }
}

/// One scheduling decision.
#[derive(Debug, Clone, Copy)]
pub struct Assignment {
    /// The assigned task.
    pub task: Task,
    /// The chosen VM slot.
    pub vm: VmRef,
    /// Predicted score of the placement at decision time (lower better).
    pub predicted_score: f64,
}

/// A scheduling algorithm. `schedule` drains as much of the queue as the
/// cluster's free slots allow, applying its placements to `cluster` and
/// returning them; tasks that cannot be placed remain queued.
pub trait Scheduler {
    /// Scheduler name, e.g. "MIBS_RT(8)".
    fn name(&self) -> String;

    /// Schedules queued tasks onto the cluster.
    fn schedule(
        &mut self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment>;
}

/// Places a single task on the best free slot according to the scoring
/// policy (the body of Algorithm 1, shared by MIOS, MIBS, and MIX).
/// Returns `None` when the cluster is full. Allocation-free: classes are
/// scanned straight off the free index. Public so out-of-process callers
/// (the tracond service tests) can replay a placement sequence against
/// the exact per-arrival rule the schedulers use.
pub fn place_best(
    task: Task,
    cluster: &mut ClusterState,
    scoring: &ScoringPolicy<'_>,
) -> Option<Assignment> {
    let mut best: Option<(f64, VmRef)> = None;
    for class in cluster.free_class_iter() {
        let score = scoring.class_score(task.app, &class);
        if best.is_none_or(|(b, _)| score < b) {
            best = Some((score, class.example));
        }
    }
    let (score, vm) = best?;
    cluster.place(
        vm,
        Resident {
            task_id: task.id,
            app: task.app,
        },
    );
    Some(Assignment {
        task,
        vm,
        predicted_score: score,
    })
}

/// [`place_best`] with caller-owned scratch: the free classes are listed
/// once into `classes` and scored as one contiguous row in `scores`, so
/// the minimum search is a flat array walk with no per-candidate scoring
/// indirection. Bit-identical to [`place_best`] — same class order, same
/// score values, same first-strict-minimum rule — but reusable buffers
/// make it the right entry point for hot callers like MIX's head search.
pub fn place_best_with(
    task: Task,
    cluster: &mut ClusterState,
    scoring: &ScoringPolicy<'_>,
    classes: &mut Vec<FreeClass>,
    scores: &mut Vec<f64>,
) -> Option<Assignment> {
    cluster.free_classes_into(classes);
    scoring.scores_into(task.app, classes, scores);
    let mut best: Option<(f64, usize)> = None;
    for (ci, &score) in scores.iter().enumerate() {
        if best.is_none_or(|(b, _)| score < b) {
            best = Some((score, ci));
        }
    }
    let (score, ci) = best?;
    let vm = classes[ci].example;
    cluster.place(
        vm,
        Resident {
            task_id: task.id,
            app: task.app,
        },
    );
    Some(Assignment {
        task,
        vm,
        predicted_score: score,
    })
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for scheduler tests: a tiny synthetic "world" with
    //! two application types — `io` tasks interfere badly with each other
    //! while `cpu` tasks are benign — so the interference-aware schedulers
    //! have an unambiguous right answer to find.

    use crate::characteristics::{Characteristics, N_JOINT};
    use crate::interner::{AppId, AppRegistry};
    use crate::model::{InterferenceModel, ModelKind};
    use crate::predictor::{AppModelSet, AppProfile, Predictor};
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Runtime model: base 100 s plus a penalty proportional to the
    /// product of the two VMs' read rates (mimicking disk-stream mixing).
    struct PairwiseRuntime;
    impl InterferenceModel for PairwiseRuntime {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            100.0 + 0.02 * f[0] * f[4]
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Nonlinear
        }
        fn n_terms(&self) -> usize {
            1
        }
    }

    /// IOPS model: solo IOPS shrunk by the same product interaction.
    struct PairwiseIops;
    impl InterferenceModel for PairwiseIops {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            (f[0] + f[1]) / (1.0 + 0.0002 * f[0] * f[4])
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Nonlinear
        }
        fn n_terms(&self) -> usize {
            1
        }
    }

    /// Characteristics: `io` reads at 200/s, `cpu` barely at all.
    pub fn app_chars() -> HashMap<String, Characteristics> {
        let mut m = HashMap::new();
        m.insert("io".to_string(), Characteristics::new(200.0, 0.0, 0.3, 0.1));
        m.insert("cpu".to_string(), Characteristics::new(5.0, 0.0, 1.0, 0.01));
        m
    }

    /// The registry every fixture agrees on (built from the sorted app
    /// names, exactly as `ClusterState::new` and `Predictor` derive it).
    pub fn registry() -> Arc<AppRegistry> {
        Arc::new(AppRegistry::from_names(app_chars().into_keys()))
    }

    /// The interned id of a fixture application.
    pub fn aid(name: &str) -> AppId {
        registry().expect_id(name)
    }

    /// A task running the named fixture application.
    pub fn task(id: u64, name: &str) -> super::Task {
        super::Task::new(id, aid(name))
    }

    /// A resident running the named fixture application.
    pub fn resident(task_id: u64, name: &str) -> super::Resident {
        super::Resident {
            task_id,
            app: aid(name),
        }
    }

    /// A predictor over the two synthetic apps.
    pub fn predictor() -> Predictor {
        let mut p = Predictor::new();
        for (name, c) in app_chars() {
            let solo_runtime = 100.0;
            let solo_iops = c.read_rps + c.write_rps;
            p.add_app(
                AppProfile {
                    name: name.clone(),
                    solo: c,
                    solo_runtime,
                    solo_iops,
                },
                AppModelSet {
                    runtime: Box::new(PairwiseRuntime),
                    iops: Box::new(PairwiseIops),
                },
            );
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::predictor::{Objective, ScoringPolicy};

    #[test]
    fn place_best_avoids_interfering_neighbour() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        // Machine 0 hosts an io task; machine 1 is idle.
        cluster.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            resident(1, "io"),
        );
        let a = place_best(task(2, "io"), &mut cluster, &scoring).unwrap();
        assert_eq!(
            a.vm.machine, 1,
            "io task should avoid the io-occupied machine"
        );
    }

    #[test]
    fn place_best_pairs_cpu_with_io() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        cluster.place(
            VmRef {
                machine: 0,
                slot: 0,
            },
            resident(1, "io"),
        );
        // A cpu task is indifferent-ish but must not fail; any free slot ok.
        let a = place_best(task(2, "cpu"), &mut cluster, &scoring).unwrap();
        assert!(cluster.resident(a.vm).is_some());
    }

    #[test]
    fn place_best_full_cluster_returns_none() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(1, 1, app_chars());
        assert!(place_best(task(1, "io"), &mut cluster, &scoring).is_some());
        assert!(place_best(task(2, "io"), &mut cluster, &scoring).is_none());
    }
}
