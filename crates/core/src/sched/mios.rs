//! Minimum Interference Online Scheduler (paper Algorithm 1).
//!
//! MIOS dispatches each incoming task immediately: it predicts the task's
//! performance on every available VM (one prediction per neighbour class)
//! and assigns the task to the VM with the best predicted score — the
//! minimum-completion-time heuristic applied to interference predictions.

use super::{place_best, Assignment, ClusterState, Scheduler, Task};
use crate::predictor::ScoringPolicy;
use std::collections::VecDeque;

/// The online scheduler.
#[derive(Debug, Default, Clone)]
pub struct Mios;

impl Scheduler for Mios {
    fn name(&self) -> String {
        "MIOS".to_string()
    }

    fn schedule(
        &mut self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        while cluster.n_free() > 0 {
            let Some(task) = queue.pop_front() else { break };
            match place_best(task, cluster, scoring) {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Objective, ScoringPolicy};
    use crate::sched::test_support::{app_chars, predictor, task};

    #[test]
    fn spreads_io_tasks_across_machines() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        let mut queue: VecDeque<Task> = (0..2).map(|i| task(i, "io")).collect();
        let out = Mios.schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 2);
        assert_ne!(
            out[0].vm.machine, out[1].vm.machine,
            "two io tasks must land on different machines"
        );
    }

    #[test]
    fn pairs_io_with_cpu_when_forced() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        // io, io, io, cpu on a 2-machine cluster: the best arrangement
        // avoids an io+io machine only if the cpu task absorbs a slot —
        // but MIOS is greedy, so the third io task must co-locate with an
        // io task; the cpu task then joins the other io.
        let mut queue: VecDeque<Task> = VecDeque::from(vec![
            task(0, "io"),
            task(1, "io"),
            task(2, "io"),
            task(3, "cpu"),
        ]);
        let out = Mios.schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 4);
        assert_eq!(cluster.n_free(), 0);
        // Greedy cost of task 2 (io next to io) is visible in its score.
        assert!(out[2].predicted_score > out[0].predicted_score);
    }

    #[test]
    fn respects_objective() {
        let p = predictor();
        let io_scoring = ScoringPolicy::new(&p, Objective::MaxIops);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        let mut queue: VecDeque<Task> = (0..2).map(|i| task(i, "io")).collect();
        let out = Mios.schedule(&mut queue, &mut cluster, &io_scoring);
        // Under MaxIops, io tasks also spread (their combined IOPS is
        // higher apart).
        assert_ne!(out[0].vm.machine, out[1].vm.machine);
    }

    #[test]
    fn stops_when_cluster_full() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(1, 1, app_chars());
        let mut queue: VecDeque<Task> = (0..3).map(|i| task(i, "cpu")).collect();
        let out = Mios.schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 1);
        assert_eq!(queue.len(), 2);
    }
}
