//! Minimum Interference Batch Scheduler (paper Algorithm 2, built on the
//! Min-Min heuristic of Ibarra & Kim that the paper cites).
//!
//! The paper describes Min-Min as: "find a machine with the minimum score
//! for each task on the queue (the first 'Min'); among all task-machine
//! pairs, find the pair with the minimum score and assign the selected
//! task to its corresponding machine (the second 'Min'); repeat until the
//! queue is empty". We implement exactly that loop over the batch window
//! and the free-slot classes, with two deliberate choices:
//!
//! * **The score is the interference excess** — the predicted cost of the
//!   slot *over an idle machine*. Scoring absolute runtime would make
//!   every short task look like a perfect fit for every slot; scoring the
//!   excess selects the (task, slot) pair that genuinely interferes
//!   least, which is what "least interference with candidate 1" means.
//! * **Ties prefer the most self-interfering task** (and idle slots).
//!   When all free slots are idle every pairing has zero excess; letting
//!   the most fragile tasks claim machines first means the benign tasks
//!   are matched *to them* afterwards, instead of insensitive tasks
//!   consuming the benign partners that fragile tasks need.
//!
//! The head-candidate formulation in the paper's Algorithm 2 listing is a
//! special case that degrades to FIFO-like behaviour in the dynamic
//! scenario, where slots free up one at a time: the whole value of the
//! batch window is choosing *which* queued task fits the freed slot.

use super::{Assignment, ClusterState, FreeClass, Resident, Scheduler, Task};
use crate::predictor::ScoringPolicy;
use std::collections::VecDeque;

/// The batch scheduler. `queue_len` is the batch size the dynamic
/// simulator accumulates before invoking it (MIBS_2/4/8 in the paper);
/// the algorithm itself schedules whatever it is given.
#[derive(Debug, Clone)]
pub struct Mibs {
    /// Nominal batch size (used in the display name).
    pub queue_len: usize,
    /// Scratch: the free classes, listed once per round.
    classes: Vec<FreeClass>,
    /// Scratch: flat `[n_apps x n_classes]` excess matrix, rows filled
    /// lazily per distinct app in the window. Tasks of the same app share
    /// a row, so the double-Min scan is a contiguous array walk with one
    /// scoring call per (app, class) instead of one per (task, class).
    excess: Vec<f64>,
    /// Scratch: which rows of `excess` are filled this round.
    row_filled: Vec<bool>,
}

impl Mibs {
    /// Creates a MIBS scheduler with the given nominal batch size.
    pub fn new(queue_len: usize) -> Self {
        Mibs {
            queue_len,
            classes: Vec::new(),
            excess: Vec::new(),
            row_filled: Vec::new(),
        }
    }
}

impl Default for Mibs {
    fn default() -> Self {
        Mibs::new(8)
    }
}

/// Relative tie width for excess-score comparisons.
const TIE_EPS: f64 = 1e-9;

impl Scheduler for Mibs {
    fn name(&self) -> String {
        format!("MIBS_{}", self.queue_len)
    }

    fn schedule(
        &mut self,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        let mut out = Vec::new();
        let mut window: Vec<Task> = queue.drain(..).collect();
        let n_apps = scoring.n_apps();

        while !window.is_empty() && cluster.n_free() > 0 {
            cluster.free_classes_into(&mut self.classes);
            let nc = self.classes.len();
            self.row_filled.clear();
            self.row_filled.resize(n_apps, false);
            self.excess.clear();
            self.excess.resize(n_apps * nc, 0.0);
            // The double Min: over every (task, slot-class) pair, find the
            // minimum interference excess. Tie-breaking matters because on
            // benign workloads almost everything ties at zero excess:
            //  1. prefer idle machines (claiming one is never regrettable),
            //     and among those give the machine to the most *fragile*
            //     task — benign partners are then matched *to* it, instead
            //     of insensitive tasks consuming them;
            //  2. otherwise prefer the oldest task in the window. Always
            //     preferring fragile tasks would systematically prioritize
            //     the slowest applications and depress completed-task
            //     throughput under overload.
            let mut best: Option<((f64, f64, usize), usize, usize)> = None;
            for (ti, t) in window.iter().enumerate() {
                let a = t.app.index();
                if !self.row_filled[a] {
                    scoring.excess_scores_into(
                        t.app,
                        &self.classes,
                        &mut self.excess[a * nc..(a + 1) * nc],
                    );
                    self.row_filled[a] = true;
                }
                let fragility = scoring.pair_score(t.app, t.app);
                let row = &self.excess[a * nc..(a + 1) * nc];
                for (ci, c) in self.classes.iter().enumerate() {
                    let excess = row[ci];
                    // Lexicographic key: excess, then idle-with-fragility
                    // preference, then window age.
                    let tie = if c.key.is_idle() {
                        -fragility
                    } else {
                        f64::INFINITY
                    };
                    let key = (excess, tie, ti);
                    let better = match &best {
                        None => true,
                        Some((bk, _, _)) => {
                            key.0 < bk.0 - TIE_EPS
                                || ((key.0 - bk.0).abs() <= TIE_EPS
                                    && (key.1, key.2) < (bk.1, bk.2))
                        }
                    };
                    if better {
                        best = Some((key, ti, ci));
                    }
                }
            }
            let Some((_, ti, ci)) = best else { break };
            let task = window.swap_remove(ti);
            let class = &self.classes[ci];
            let score = scoring.class_score(task.app, class);
            let vm = class.example;
            cluster.place(
                vm,
                Resident {
                    task_id: task.id,
                    app: task.app,
                },
            );
            out.push(Assignment {
                task,
                vm,
                predicted_score: score,
            });
        }
        // Unplaced window tasks return to the caller's queue.
        queue.extend(window);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Objective, ScoringPolicy};
    use crate::sched::test_support::{aid, app_chars, predictor, resident, task};

    #[test]
    fn pairs_io_with_cpu_on_full_batch() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        let mut queue: VecDeque<Task> = VecDeque::from(vec![
            task(0, "io"),
            task(1, "io"),
            task(2, "cpu"),
            task(3, "cpu"),
        ]);
        let out = Mibs::new(4).schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 4);
        let io = aid("io");
        for m in 0..2 {
            let io_count = out
                .iter()
                .filter(|a| a.vm.machine == m && a.task.app == io)
                .count();
            assert_eq!(io_count, 1, "machine {m} hosts {io_count} io tasks");
        }
    }

    #[test]
    fn fragile_tasks_claim_idle_slots_first() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        // Benign cpu tasks arrive first, but the io tasks must claim the
        // idle machines and receive the cpu tasks as partners.
        let mut queue: VecDeque<Task> = VecDeque::from(vec![
            task(0, "cpu"),
            task(1, "cpu"),
            task(2, "io"),
            task(3, "io"),
        ]);
        let out = Mibs::new(4).schedule(&mut queue, &mut cluster, &scoring);
        let io = aid("io");
        assert_eq!(
            out[0].task.app, io,
            "most fragile task must be placed first"
        );
        for m in 0..2 {
            let io_count = out
                .iter()
                .filter(|a| a.vm.machine == m && a.task.app == io)
                .count();
            assert_eq!(io_count, 1);
        }
    }

    #[test]
    fn single_free_slot_receives_best_fitting_task() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(1, 2, app_chars());
        // One slot already hosts an io task; the window holds [io, cpu].
        // The cpu task fits the freed slot better and must be selected
        // even though the io task arrived first.
        cluster.place(
            super::super::VmRef {
                machine: 0,
                slot: 0,
            },
            resident(99, "io"),
        );
        let mut queue: VecDeque<Task> = VecDeque::from(vec![task(0, "io"), task(1, "cpu")]);
        let out = Mibs::new(2).schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].task.app, aid("cpu"));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].app, aid("io"));
    }

    #[test]
    fn odd_queue_schedules_leftover() {
        let p = predictor();
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let mut cluster = ClusterState::new(2, 2, app_chars());
        let mut queue: VecDeque<Task> =
            VecDeque::from(vec![task(0, "io"), task(1, "cpu"), task(2, "io")]);
        let out = Mibs::new(3).schedule(&mut queue, &mut cluster, &scoring);
        assert_eq!(out.len(), 3);
        assert!(queue.is_empty());
    }

    #[test]
    fn name_includes_queue_len() {
        assert_eq!(Mibs::new(8).name(), "MIBS_8");
        assert_eq!(Mibs::new(2).name(), "MIBS_2");
    }
}
