//! The prediction module the schedulers query (paper Fig 2): given a
//! candidate task and the observed state of a VM's co-located neighbour,
//! predict the task's runtime or IOPS from the per-application
//! interference models.

use crate::characteristics::{joint_features, Characteristics};
use crate::model::InterferenceModel;
use std::cell::RefCell;
use std::collections::HashMap;

/// The stored profile of an application (built by the profiling campaign).
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name.
    pub name: String,
    /// Characteristics measured when running alone.
    pub solo: Characteristics,
    /// Runtime when running alone, seconds.
    pub solo_runtime: f64,
    /// IOPS when running alone.
    pub solo_iops: f64,
}

/// Runtime and IOPS models for one application.
pub struct AppModelSet {
    /// Predicts the application's runtime from joint characteristics.
    pub runtime: Box<dyn InterferenceModel>,
    /// Predicts the application's IOPS from joint characteristics.
    pub iops: Box<dyn InterferenceModel>,
}

/// The prediction module: per-application profiles and trained models.
#[derive(Default)]
pub struct Predictor {
    profiles: HashMap<String, AppProfile>,
    models: HashMap<String, AppModelSet>,
}

impl Predictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Predictor::default()
    }

    /// Registers an application's profile and trained models.
    pub fn add_app(&mut self, profile: AppProfile, models: AppModelSet) {
        let name = profile.name.clone();
        self.profiles.insert(name.clone(), profile);
        self.models.insert(name, models);
    }

    /// Names of the registered applications.
    pub fn app_names(&self) -> Vec<&str> {
        self.profiles.keys().map(|s| s.as_str()).collect()
    }

    /// The stored profile of an application.
    ///
    /// # Panics
    /// Panics when the application is unknown.
    pub fn profile(&self, app: &str) -> &AppProfile {
        self.profiles
            .get(app)
            .unwrap_or_else(|| panic!("unknown application '{app}'"))
    }

    /// Whether an application has been registered.
    pub fn knows(&self, app: &str) -> bool {
        self.profiles.contains_key(app)
    }

    /// Predicted runtime of `app` when its VM's neighbour exhibits the
    /// given characteristics. Predictions are clamped to
    /// `[solo, 30 x solo]`: interference can only slow an application
    /// down, and the clamp bounds the damage of extrapolation outside the
    /// profiled region (the worst slowdown the paper measures is ~16x).
    pub fn predict_runtime(&self, app: &str, background: &Characteristics) -> f64 {
        let p = self.profile(app);
        let m = &self.models[app];
        let y = m.runtime.predict(&joint_features(&p.solo, background));
        let floor = p.solo_runtime.max(1e-6);
        y.clamp(floor, 30.0 * floor)
    }

    /// Predicted IOPS of `app` under the given neighbour characteristics,
    /// clamped to `[0, solo_iops]`.
    pub fn predict_iops(&self, app: &str, background: &Characteristics) -> f64 {
        let p = self.profile(app);
        let m = &self.models[app];
        let y = m.iops.predict(&joint_features(&p.solo, background));
        y.clamp(0.0, p.solo_iops.max(1e-6))
    }

    /// Predicted runtime of `app` when co-located with `other` (using the
    /// other application's solo profile as the background) — the pairing
    /// score MIBS uses to pick its second candidate.
    pub fn predict_pair_runtime(&self, app: &str, other: &str) -> f64 {
        let bg = self.profile(other).solo;
        self.predict_runtime(app, &bg)
    }

    /// Predicted IOPS of `app` when co-located with `other`.
    pub fn predict_pair_iops(&self, app: &str, other: &str) -> f64 {
        let bg = self.profile(other).solo;
        self.predict_iops(app, &bg)
    }
}

/// The optimization goal of a scheduler (paper Section 4.4: MIBS_RT
/// minimizes total runtime, MIBS_IO maximizes total IOPS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize total runtime.
    MinRuntime,
    /// Maximize total I/O throughput.
    MaxIops,
}

impl Objective {
    /// Display suffix matching the paper (RT / IO).
    pub fn suffix(&self) -> &'static str {
        match self {
            Objective::MinRuntime => "RT",
            Objective::MaxIops => "IO",
        }
    }
}

/// A scoring facade over the predictor: lower scores are better under
/// either objective. Scores are memoized by `(application, neighbour
/// class)` so large-cluster scheduling stays cheap — with 8 applications
/// and at most 9 neighbour classes there are only 72 distinct queries.
pub struct ScoringPolicy<'a> {
    predictor: &'a Predictor,
    /// The goal this policy optimizes.
    pub objective: Objective,
    cache: RefCell<HashMap<(String, String), f64>>,
}

impl<'a> ScoringPolicy<'a> {
    /// Creates a scoring policy for the given objective.
    pub fn new(predictor: &'a Predictor, objective: Objective) -> Self {
        ScoringPolicy {
            predictor,
            objective,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying predictor.
    pub fn predictor(&self) -> &Predictor {
        self.predictor
    }

    /// Score of placing `app` on a VM whose neighbour class is
    /// `neighbor_key` with the given observed characteristics. Lower is
    /// better. `neighbor_key` must uniquely identify `background` (it is
    /// the cache key); pass the neighbour application's name, or "" for
    /// an idle neighbour.
    pub fn score(&self, app: &str, neighbor_key: &str, background: &Characteristics) -> f64 {
        let key = (app.to_string(), neighbor_key.to_string());
        if let Some(&v) = self.cache.borrow().get(&key) {
            return v;
        }
        let v = match self.objective {
            Objective::MinRuntime => self.predictor.predict_runtime(app, background),
            Objective::MaxIops => -self.predictor.predict_iops(app, background),
        };
        self.cache.borrow_mut().insert(key, v);
        v
    }

    /// Pairwise *interference* score of co-locating `app` with `other`
    /// (the first "Min" of the Min-Min heuristic): the predicted combined
    /// cost of the pairing **in excess of running the two applications
    /// apart** — predicted mutual runtime inflation under `MinRuntime`,
    /// combined IOPS loss under `MaxIops`. Scoring the excess (rather
    /// than the absolute runtime) is what "least interference with
    /// candidate 1" means: a short task is not a good partner merely for
    /// being short.
    pub fn pair_score(&self, app: &str, other: &str) -> f64 {
        match self.objective {
            Objective::MinRuntime => {
                let a = self.predictor.predict_pair_runtime(app, other)
                    - self.predictor.profile(app).solo_runtime;
                let b = self.predictor.predict_pair_runtime(other, app)
                    - self.predictor.profile(other).solo_runtime;
                a + b
            }
            Objective::MaxIops => {
                let a = self.predictor.profile(app).solo_iops
                    - self.predictor.predict_pair_iops(app, other);
                let b = self.predictor.profile(other).solo_iops
                    - self.predictor.predict_pair_iops(other, app);
                a + b
            }
        }
    }

    /// Score of placing `app` on an idle machine (its best case).
    pub fn solo_score(&self, app: &str) -> f64 {
        self.score(app, "", &Characteristics::idle())
    }

    /// Interference *excess* of a placement: how much worse this slot is
    /// for `app` than an idle machine (always >= 0 up to model noise).
    /// This is the "score" the Min-Min pairing minimizes — using the
    /// absolute score instead would make short tasks look like good fits
    /// for every slot.
    pub fn excess_score(&self, app: &str, neighbor_key: &str, background: &Characteristics) -> f64 {
        self.score(app, neighbor_key, background) - self.solo_score(app)
    }

    /// Number of memoized scores (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::N_JOINT;
    use crate::model::{InterferenceModel, ModelKind};

    /// A stub model: runtime grows with the background's total request
    /// rate; IOPS shrinks with it.
    struct StubRuntime;
    impl InterferenceModel for StubRuntime {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            100.0 + f[4] + f[5]
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Linear
        }
        fn n_terms(&self) -> usize {
            2
        }
    }
    struct StubIops;
    impl InterferenceModel for StubIops {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            200.0 - 0.5 * (f[4] + f[5])
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Linear
        }
        fn n_terms(&self) -> usize {
            2
        }
    }

    fn predictor() -> Predictor {
        let mut p = Predictor::new();
        for (name, reads) in [("app_a", 50.0), ("app_b", 150.0)] {
            p.add_app(
                AppProfile {
                    name: name.to_string(),
                    solo: Characteristics::new(reads, 10.0, 0.5, 0.05),
                    solo_runtime: 100.0,
                    solo_iops: 200.0,
                },
                AppModelSet {
                    runtime: Box::new(StubRuntime),
                    iops: Box::new(StubIops),
                },
            );
        }
        p
    }

    #[test]
    fn predictions_respond_to_background() {
        let p = predictor();
        let idle = Characteristics::idle();
        let busy = Characteristics::new(300.0, 100.0, 0.9, 0.2);
        assert!(p.predict_runtime("app_a", &busy) > p.predict_runtime("app_a", &idle));
        assert!(p.predict_iops("app_a", &busy) < p.predict_iops("app_a", &idle));
    }

    #[test]
    fn iops_clamped_to_solo() {
        let p = predictor();
        let idle = Characteristics::idle();
        assert!(p.predict_iops("app_a", &idle) <= 200.0);
    }

    #[test]
    fn pair_prediction_uses_other_profile() {
        let p = predictor();
        // app_b's profile has higher reads, so pairing with it predicts a
        // longer runtime than pairing with app_a.
        let with_a = p.predict_pair_runtime("app_a", "app_a");
        let with_b = p.predict_pair_runtime("app_a", "app_b");
        assert!(with_b > with_a);
    }

    #[test]
    fn scoring_policy_objectives() {
        let p = predictor();
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime);
        let io = ScoringPolicy::new(&p, Objective::MaxIops);
        let idle = Characteristics::idle();
        let busy = Characteristics::new(300.0, 100.0, 0.9, 0.2);
        // Lower is better under both objectives.
        assert!(rt.score("app_a", "idle", &idle) < rt.score("app_a", "busy", &busy));
        assert!(io.score("app_a", "idle", &idle) < io.score("app_a", "busy", &busy));
    }

    #[test]
    fn scores_are_cached_by_key() {
        let p = predictor();
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime);
        let idle = Characteristics::idle();
        rt.score("app_a", "idle", &idle);
        rt.score("app_a", "idle", &idle);
        rt.score("app_b", "idle", &idle);
        assert_eq!(rt.cache_len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        predictor().profile("nope");
    }
}
