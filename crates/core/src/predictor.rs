//! The prediction module the schedulers query (paper Fig 2): given a
//! candidate task and the observed state of a VM's co-located neighbour,
//! predict the task's runtime or IOPS from the per-application
//! interference models.

use crate::characteristics::{joint_features, Characteristics};
use crate::interner::{AppId, AppRegistry, ClassKey};
use crate::model::InterferenceModel;
use crate::resource::MachineClass;
use crate::sched::FreeClass;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The stored profile of an application (built by the profiling campaign).
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name.
    pub name: String,
    /// Characteristics measured when running alone.
    pub solo: Characteristics,
    /// Runtime when running alone, seconds.
    pub solo_runtime: f64,
    /// IOPS when running alone.
    pub solo_iops: f64,
}

/// Runtime and IOPS models for one application.
pub struct AppModelSet {
    /// Predicts the application's runtime from joint characteristics.
    pub runtime: Box<dyn InterferenceModel>,
    /// Predicts the application's IOPS from joint characteristics.
    pub iops: Box<dyn InterferenceModel>,
}

/// The prediction module: per-application profiles and trained models.
#[derive(Default)]
pub struct Predictor {
    profiles: HashMap<String, AppProfile>,
    models: HashMap<String, AppModelSet>,
    registry: Arc<AppRegistry>,
}

impl Predictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Predictor::default()
    }

    /// Registers an application's profile and trained models.
    pub fn add_app(&mut self, profile: AppProfile, models: AppModelSet) {
        let name = profile.name.clone();
        self.profiles.insert(name.clone(), profile);
        self.models.insert(name, models);
        self.registry = Arc::new(AppRegistry::from_names(self.profiles.keys().cloned()));
    }

    /// The interned id registry over the registered application names
    /// (rebuilt on every [`Predictor::add_app`]; ids are assigned in
    /// lexicographic name order).
    pub fn registry(&self) -> &Arc<AppRegistry> {
        &self.registry
    }

    /// Names of the registered applications, in id (lexicographic) order.
    pub fn app_names(&self) -> Vec<&str> {
        self.registry.names().iter().map(|s| s.as_str()).collect()
    }

    /// The stored profile of an application.
    ///
    /// # Panics
    /// Panics when the application is unknown.
    pub fn profile(&self, app: &str) -> &AppProfile {
        self.profiles
            .get(app)
            .unwrap_or_else(|| panic!("unknown application '{app}'"))
    }

    /// The stored profile behind an interned id.
    pub fn profile_of(&self, id: AppId) -> &AppProfile {
        self.profile(self.registry.name(id))
    }

    /// Whether an application has been registered.
    pub fn knows(&self, app: &str) -> bool {
        self.profiles.contains_key(app)
    }

    /// Predicted runtime of `app` when its VM's neighbour exhibits the
    /// given characteristics. Predictions are clamped to
    /// `[solo, 30 x solo]`: interference can only slow an application
    /// down, and the clamp bounds the damage of extrapolation outside the
    /// profiled region (the worst slowdown the paper measures is ~16x).
    pub fn predict_runtime(&self, app: &str, background: &Characteristics) -> f64 {
        let p = self.profile(app);
        let m = &self.models[app];
        let y = m.runtime.predict(&joint_features(&p.solo, background));
        let floor = p.solo_runtime.max(1e-6);
        y.clamp(floor, 30.0 * floor)
    }

    /// Predicted IOPS of `app` under the given neighbour characteristics,
    /// clamped to `[0, solo_iops]`.
    pub fn predict_iops(&self, app: &str, background: &Characteristics) -> f64 {
        let p = self.profile(app);
        let m = &self.models[app];
        let y = m.iops.predict(&joint_features(&p.solo, background));
        y.clamp(0.0, p.solo_iops.max(1e-6))
    }

    /// Predicted runtime of `app` when co-located with `other` (using the
    /// other application's solo profile as the background) — the pairing
    /// score MIBS uses to pick its second candidate.
    pub fn predict_pair_runtime(&self, app: &str, other: &str) -> f64 {
        let bg = self.profile(other).solo;
        self.predict_runtime(app, &bg)
    }

    /// Predicted IOPS of `app` when co-located with `other`.
    pub fn predict_pair_iops(&self, app: &str, other: &str) -> f64 {
        let bg = self.profile(other).solo;
        self.predict_iops(app, &bg)
    }
}

/// The optimization goal of a scheduler (paper Section 4.4: MIBS_RT
/// minimizes total runtime, MIBS_IO maximizes total IOPS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize total runtime.
    MinRuntime,
    /// Maximize total I/O throughput.
    MaxIops,
}

impl Objective {
    /// Display suffix matching the paper (RT / IO).
    pub fn suffix(&self) -> &'static str {
        match self {
            Objective::MinRuntime => "RT",
            Objective::MaxIops => "IO",
        }
    }
}

/// Sentinel bit pattern marking an unfilled dense-table entry. It decodes
/// to a NaN, which no clamped prediction can produce.
const EMPTY: u64 = u64::MAX;

/// The predictor a [`ScoringPolicy`] scores against: either borrowed from
/// the caller (the common case — the testbed owns it) or owned by the
/// policy itself (online adaptation swaps in freshly retrained predictors
/// mid-simulation, where no longer-lived owner exists).
enum PredictorSource<'a> {
    Borrowed(&'a Predictor),
    Owned(Box<Predictor>),
}

impl PredictorSource<'_> {
    fn get(&self) -> &Predictor {
        match self {
            PredictorSource::Borrowed(p) => p,
            PredictorSource::Owned(p) => p,
        }
    }
}

/// The network-dimension extension of a scoring policy: the machine-class
/// table the cluster's [`FreeClass::mclass`] indexes into, and each
/// application's offered link load in MB/s (indexed by [`AppId`]).
///
/// Class adjustment is analytic arithmetic layered *on top of* the cached
/// base scores, so the dense lookup tables never grow a dimension: a
/// reference-class lookup is exactly the legacy lookup, and a remote
/// class pays one multiply (plus the M/M/1 factor when its link is
/// capacitated).
struct NetworkScoring {
    classes: Vec<MachineClass>,
    demand: Vec<f64>,
}

/// A scoring facade over the predictor: lower scores are better under
/// either objective.
///
/// Scores are keyed by `(AppId, ClassKey)`. Solo scores and pairwise
/// interference scores are precomputed into dense `[n]` / `[n x n]`
/// tables at construction; placement scores for single-neighbour classes
/// fill a dense `[n x n]` atomic table on first use (the idle class is
/// served from the solo table). Only classes with two or more neighbours
/// — which exist only when machines host three or more VM slots — fall
/// back to a locked hash map. After warm-up a score lookup is one array
/// load and performs no heap allocation, and the policy is `Sync`, so
/// parallel schedulers can share it.
pub struct ScoringPolicy<'a> {
    predictor: PredictorSource<'a>,
    /// The goal this policy optimizes.
    pub objective: Objective,
    registry: Arc<AppRegistry>,
    n_apps: usize,
    /// `[n]` — score of each app on an idle machine.
    solo: Vec<f64>,
    /// `[n x n]` — mutual interference excess of each app pair.
    pair: Vec<f64>,
    /// `[n x n]` — lazily filled score of (app, single-neighbour class),
    /// stored as `f64` bits; [`EMPTY`] marks an unfilled entry. Races are
    /// benign: every filler computes the same deterministic value.
    dense: Vec<AtomicU64>,
    /// Fallback for classes with >= 2 neighbours (3+ slots per machine).
    multi: RwLock<HashMap<(u16, u64), f64>>,
    /// Machine-class awareness (heterogeneous clusters only). `None` on a
    /// homogeneous cluster — and then every class-aware entry point is
    /// bit-identical to its legacy counterpart.
    network: Option<NetworkScoring>,
}

impl<'a> ScoringPolicy<'a> {
    /// Creates a scoring policy for the given objective, precomputing the
    /// solo and pair tables.
    pub fn new(predictor: &'a Predictor, objective: Objective) -> Self {
        Self::build(PredictorSource::Borrowed(predictor), objective)
    }

    /// Like [`ScoringPolicy::new`] but taking ownership of the predictor.
    /// The returned policy has no outside borrow, so a simulation can
    /// replace its scoring mid-run with a freshly retrained predictor
    /// (online model adaptation). All score caches start cold.
    pub fn new_owned(predictor: Predictor, objective: Objective) -> ScoringPolicy<'static> {
        ScoringPolicy::build(PredictorSource::Owned(Box::new(predictor)), objective)
    }

    fn build(source: PredictorSource<'a>, objective: Objective) -> ScoringPolicy<'a> {
        let registry = Arc::clone(source.get().registry());
        let n = registry.len();
        let mut policy = ScoringPolicy {
            predictor: source,
            objective,
            registry,
            n_apps: n,
            solo: Vec::with_capacity(n),
            pair: Vec::with_capacity(n * n),
            dense: (0..n * n).map(|_| AtomicU64::new(EMPTY)).collect(),
            multi: RwLock::new(HashMap::new()),
            network: None,
        };
        let idle = Characteristics::idle();
        for a in policy.registry.ids() {
            let s = policy.raw_score(a, &idle);
            policy.solo.push(s);
        }
        for a in policy.registry.ids() {
            for b in policy.registry.ids() {
                let s = policy.raw_pair_score(a, b);
                policy.pair.push(s);
            }
        }
        policy
    }

    /// Makes the policy machine-class aware: `classes` is the cluster's
    /// machine-class table (what [`FreeClass::mclass`] indexes) and
    /// `demand_by_app[id]` the offered network load of application `id`
    /// in MB/s. With only reference classes the adjusted scores are
    /// bit-identical to the legacy ones.
    pub fn with_machine_classes(
        mut self,
        classes: Vec<MachineClass>,
        demand_by_app: Vec<f64>,
    ) -> Self {
        assert!(!classes.is_empty(), "at least one machine class required");
        self.network = Some(NetworkScoring {
            classes,
            demand: demand_by_app,
        });
        self
    }

    /// Whether the policy carries a machine-class table (i.e. scores are
    /// network-aware on heterogeneous clusters).
    pub fn is_class_aware(&self) -> bool {
        self.network.is_some()
    }

    /// The underlying predictor.
    pub fn predictor(&self) -> &Predictor {
        self.predictor.get()
    }

    /// The registry scores are keyed by.
    pub fn registry(&self) -> &Arc<AppRegistry> {
        &self.registry
    }

    fn raw_score(&self, app: AppId, background: &Characteristics) -> f64 {
        let name = self.registry.name(app);
        match self.objective {
            Objective::MinRuntime => self.predictor().predict_runtime(name, background),
            Objective::MaxIops => -self.predictor().predict_iops(name, background),
        }
    }

    fn raw_pair_score(&self, app: AppId, other: AppId) -> f64 {
        let a_name = self.registry.name(app);
        let b_name = self.registry.name(other);
        match self.objective {
            Objective::MinRuntime => {
                let a = self.predictor().predict_pair_runtime(a_name, b_name)
                    - self.predictor().profile(a_name).solo_runtime;
                let b = self.predictor().predict_pair_runtime(b_name, a_name)
                    - self.predictor().profile(b_name).solo_runtime;
                a + b
            }
            Objective::MaxIops => {
                let a = self.predictor().profile(a_name).solo_iops
                    - self.predictor().predict_pair_iops(a_name, b_name);
                let b = self.predictor().profile(b_name).solo_iops
                    - self.predictor().predict_pair_iops(b_name, a_name);
                a + b
            }
        }
    }

    /// Score of placing `app` on a VM of neighbour class `key` with the
    /// given observed characteristics. Lower is better. `key` must
    /// uniquely identify `background` (it is the memoization key).
    pub fn score(&self, app: AppId, key: ClassKey, background: &Characteristics) -> f64 {
        if key.is_idle() {
            return self.solo[app.index()];
        }
        if let Some(nb) = key.single() {
            let slot = &self.dense[app.index() * self.n_apps + nb.index()];
            let bits = slot.load(Ordering::Relaxed);
            if bits != EMPTY {
                return f64::from_bits(bits);
            }
            let v = self.raw_score(app, background);
            slot.store(v.to_bits(), Ordering::Relaxed);
            return v;
        }
        let mkey = (app.0, key.bits());
        if let Some(&v) = self.multi.read().expect("score cache poisoned").get(&mkey) {
            return v;
        }
        let v = self.raw_score(app, background);
        self.multi
            .write()
            .expect("score cache poisoned")
            .insert(mkey, v);
        v
    }

    /// Pairwise *interference* score of co-locating `app` with `other`
    /// (the first "Min" of the Min-Min heuristic): the predicted combined
    /// cost of the pairing **in excess of running the two applications
    /// apart** — predicted mutual runtime inflation under `MinRuntime`,
    /// combined IOPS loss under `MaxIops`. Scoring the excess (rather
    /// than the absolute runtime) is what "least interference with
    /// candidate 1" means: a short task is not a good partner merely for
    /// being short.
    pub fn pair_score(&self, app: AppId, other: AppId) -> f64 {
        self.pair[app.index() * self.n_apps + other.index()]
    }

    /// Score of placing `app` on an idle machine (its best case).
    pub fn solo_score(&self, app: AppId) -> f64 {
        self.solo[app.index()]
    }

    /// Interference *excess* of a placement: how much worse this slot is
    /// for `app` than an idle machine (always >= 0 up to model noise).
    /// This is the "score" the Min-Min pairing minimizes — using the
    /// absolute score instead would make short tasks look like good fits
    /// for every slot.
    pub fn excess_score(&self, app: AppId, key: ClassKey, background: &Characteristics) -> f64 {
        self.score(app, key, background) - self.solo[app.index()]
    }

    /// Applies the machine-class adjustment to a cached base score.
    /// Returns `base` untouched — bitwise — when the policy is not
    /// class-aware or the class is the reference class.
    #[inline]
    fn adjust(&self, app: AppId, mclass: u16, background: &Characteristics, base: f64) -> f64 {
        let Some(net) = &self.network else {
            return base;
        };
        let class = &net.classes[mclass as usize];
        if class.is_reference() {
            return base;
        }
        let demand = net.demand.get(app.index()).copied().unwrap_or(0.0) + background.net_mbps;
        match self.objective {
            // Runtime inflates by the solo factor times link contention.
            Objective::MinRuntime => base * class.slowdown(demand),
            // Base is negative IOPS; the class's IOPS factor (which
            // already prices the slower hardware) and the link contention
            // both shrink its magnitude (fewer IOPS = worse).
            Objective::MaxIops => base * class.iops_factor / class.link_contention(demand),
        }
    }

    /// Machine-class-aware [`ScoringPolicy::score`]: the cached base
    /// score for `(app, class.key)` adjusted for `class.mclass`'s solo
    /// factor and shared-link contention. On a homogeneous cluster (or a
    /// class-oblivious policy) this *is* `score`, bit for bit.
    pub fn class_score(&self, app: AppId, class: &FreeClass) -> f64 {
        let base = self.score(app, class.key, &class.background);
        self.adjust(app, class.mclass, &class.background, base)
    }

    /// Class-aware [`ScoringPolicy::excess_score`]. The baseline is the
    /// reference-class solo score — a per-app constant, so per-app slot
    /// comparisons are unaffected by the choice of baseline.
    pub fn excess_class_score(&self, app: AppId, class: &FreeClass) -> f64 {
        self.class_score(app, class) - self.solo[app.index()]
    }

    /// Number of applications in the registry — the row length of the
    /// batch scoring methods below.
    pub fn n_apps(&self) -> usize {
        self.n_apps
    }

    /// Fills `out` with [`ScoringPolicy::class_score`] of `app` against
    /// every class in `classes`, in order: one contiguous row the batch
    /// schedulers scan as a flat array walk instead of chasing a scoring
    /// call per candidate. Values and evaluation order are identical to
    /// calling [`ScoringPolicy::class_score`] per class (and to the
    /// legacy [`ScoringPolicy::score`] when the policy is not
    /// class-aware).
    pub fn scores_into(&self, app: AppId, classes: &[FreeClass], out: &mut Vec<f64>) {
        out.clear();
        out.extend(classes.iter().map(|c| self.class_score(app, c)));
    }

    /// Like [`ScoringPolicy::scores_into`] but with the interference
    /// excess ([`ScoringPolicy::excess_class_score`]), written into the
    /// first `classes.len()` entries of `out` — the caller owns the flat
    /// `[n_apps x n_classes]` matrix the row belongs to.
    pub fn excess_scores_into(&self, app: AppId, classes: &[FreeClass], out: &mut [f64]) {
        debug_assert!(out.len() >= classes.len());
        for (o, c) in out.iter_mut().zip(classes) {
            *o = self.excess_class_score(app, c);
        }
    }

    /// Number of memoized placement scores (diagnostics): filled dense
    /// entries plus multi-neighbour fallback entries. The precomputed
    /// solo/pair tables are not counted.
    pub fn cache_len(&self) -> usize {
        let dense = self
            .dense
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY)
            .count();
        dense + self.multi.read().expect("score cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::N_JOINT;
    use crate::model::{InterferenceModel, ModelKind};

    /// A stub model: runtime grows with the background's total request
    /// rate; IOPS shrinks with it.
    struct StubRuntime;
    impl InterferenceModel for StubRuntime {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            100.0 + f[4] + f[5]
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Linear
        }
        fn n_terms(&self) -> usize {
            2
        }
    }
    struct StubIops;
    impl InterferenceModel for StubIops {
        fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
            200.0 - 0.5 * (f[4] + f[5])
        }
        fn kind(&self) -> ModelKind {
            ModelKind::Linear
        }
        fn n_terms(&self) -> usize {
            2
        }
    }

    fn predictor() -> Predictor {
        let mut p = Predictor::new();
        for (name, reads) in [("app_a", 50.0), ("app_b", 150.0)] {
            p.add_app(
                AppProfile {
                    name: name.to_string(),
                    solo: Characteristics::new(reads, 10.0, 0.5, 0.05),
                    solo_runtime: 100.0,
                    solo_iops: 200.0,
                },
                AppModelSet {
                    runtime: Box::new(StubRuntime),
                    iops: Box::new(StubIops),
                },
            );
        }
        p
    }

    #[test]
    fn predictions_respond_to_background() {
        let p = predictor();
        let idle = Characteristics::idle();
        let busy = Characteristics::new(300.0, 100.0, 0.9, 0.2);
        assert!(p.predict_runtime("app_a", &busy) > p.predict_runtime("app_a", &idle));
        assert!(p.predict_iops("app_a", &busy) < p.predict_iops("app_a", &idle));
    }

    #[test]
    fn iops_clamped_to_solo() {
        let p = predictor();
        let idle = Characteristics::idle();
        assert!(p.predict_iops("app_a", &idle) <= 200.0);
    }

    #[test]
    fn pair_prediction_uses_other_profile() {
        let p = predictor();
        // app_b's profile has higher reads, so pairing with it predicts a
        // longer runtime than pairing with app_a.
        let with_a = p.predict_pair_runtime("app_a", "app_a");
        let with_b = p.predict_pair_runtime("app_a", "app_b");
        assert!(with_b > with_a);
    }

    #[test]
    fn registry_assigns_sorted_ids() {
        let p = predictor();
        assert_eq!(p.app_names(), vec!["app_a", "app_b"]);
        assert_eq!(p.registry().expect_id("app_a"), AppId(0));
        assert_eq!(p.registry().expect_id("app_b"), AppId(1));
        assert_eq!(p.profile_of(AppId(1)).name, "app_b");
    }

    #[test]
    fn scoring_policy_objectives() {
        let p = predictor();
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime);
        let io = ScoringPolicy::new(&p, Objective::MaxIops);
        let a = p.registry().expect_id("app_a");
        let b = p.registry().expect_id("app_b");
        let busy_key = ClassKey::from_neighbours([b]);
        let busy = p.profile("app_b").solo;
        // Lower is better under both objectives.
        assert!(
            rt.score(a, ClassKey::IDLE, &Characteristics::idle()) < rt.score(a, busy_key, &busy)
        );
        assert!(
            io.score(a, ClassKey::IDLE, &Characteristics::idle()) < io.score(a, busy_key, &busy)
        );
    }

    #[test]
    fn scores_are_cached_by_key() {
        let p = predictor();
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime);
        let a = p.registry().expect_id("app_a");
        let b = p.registry().expect_id("app_b");
        let key_a = ClassKey::from_neighbours([a]);
        let key_b = ClassKey::from_neighbours([b]);
        let bg = Characteristics::new(300.0, 100.0, 0.9, 0.2);
        assert_eq!(rt.cache_len(), 0);
        rt.score(a, key_b, &bg);
        rt.score(a, key_b, &bg);
        rt.score(b, key_a, &bg);
        assert_eq!(rt.cache_len(), 2);
        // Idle scores come from the precomputed solo table, not the cache.
        rt.score(a, ClassKey::IDLE, &Characteristics::idle());
        assert_eq!(rt.cache_len(), 2);
    }

    #[test]
    fn excess_and_pair_scores_match_definitions() {
        let p = predictor();
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime);
        let a = p.registry().expect_id("app_a");
        let b = p.registry().expect_id("app_b");
        let key_b = ClassKey::from_neighbours([b]);
        let bg = p.profile("app_b").solo;
        let excess = rt.excess_score(a, key_b, &bg);
        assert!((excess - (rt.score(a, key_b, &bg) - rt.solo_score(a))).abs() < 1e-12);
        let expected_pair = (p.predict_pair_runtime("app_a", "app_b") - 100.0)
            + (p.predict_pair_runtime("app_b", "app_a") - 100.0);
        assert!((rt.pair_score(a, b) - expected_pair).abs() < 1e-12);
    }

    #[test]
    fn class_scores_adjust_for_machine_class() {
        use crate::sched::VmRef;
        let p = predictor();
        let a = p.registry().expect_id("app_a");
        let b = p.registry().expect_id("app_b");
        let vm = VmRef {
            machine: 0,
            slot: 0,
        };
        let free = |mclass| FreeClass {
            key: ClassKey::IDLE,
            mclass,
            background: Characteristics::idle(),
            example: vm,
            count: 1,
        };
        // Class-oblivious policy: class_score IS score, bit for bit.
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime);
        assert!(!rt.is_class_aware());
        assert_eq!(
            rt.class_score(a, &free(0)).to_bits(),
            rt.solo_score(a).to_bits()
        );
        // Class-aware: reference class still bit-identical, remote class
        // composes solo factor and M/M/1 link contention.
        let classes = vec![
            MachineClass::local(),
            MachineClass::remote("iscsi", 2.0, 0.5, 100.0),
        ];
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime)
            .with_machine_classes(classes.clone(), vec![0.0, 50.0]);
        assert!(rt.is_class_aware());
        assert_eq!(
            rt.class_score(a, &free(0)).to_bits(),
            rt.solo_score(a).to_bits()
        );
        // app_a offers no link load: exactly the 2x solo factor.
        assert_eq!(
            rt.class_score(a, &free(1)).to_bits(),
            (rt.solo_score(a) * 2.0).to_bits()
        );
        // app_b pushes 50 MB/s through the 100 MB/s link: 2x (factor)
        // times 2x (M/M/1 at half utilization).
        assert!((rt.class_score(b, &free(1)) - rt.solo_score(b) * 4.0).abs() < 1e-9);
        // excess_class_score is class_score minus the reference solo.
        assert!(
            (rt.excess_class_score(a, &free(1)) - (rt.class_score(a, &free(1)) - rt.solo_score(a)))
                .abs()
                < 1e-12
        );
        // MaxIops: base is negative IOPS; the remote class halves the
        // magnitude via iops_factor and halves it again via contention.
        let io = ScoringPolicy::new(&p, Objective::MaxIops)
            .with_machine_classes(classes, vec![0.0, 50.0]);
        let local_io = io.class_score(b, &free(0));
        let remote_io = io.class_score(b, &free(1));
        assert!(local_io < 0.0);
        assert!((remote_io - local_io * 0.5 / 2.0).abs() < 1e-9);
        assert!(remote_io > local_io, "remote IOPS score must be worse");
    }

    #[test]
    fn batch_scores_route_through_class_path() {
        use crate::sched::VmRef;
        let p = predictor();
        let a = p.registry().expect_id("app_a");
        let rt = ScoringPolicy::new(&p, Objective::MinRuntime).with_machine_classes(
            vec![
                MachineClass::local(),
                MachineClass::remote("iscsi", 3.0, 0.5, 100.0),
            ],
            vec![0.0, 0.0],
        );
        let classes: Vec<FreeClass> = (0..2u16)
            .map(|mclass| FreeClass {
                key: ClassKey::IDLE,
                mclass,
                background: Characteristics::idle(),
                example: VmRef {
                    machine: mclass as usize,
                    slot: 0,
                },
                count: 1,
            })
            .collect();
        let mut out = Vec::new();
        rt.scores_into(a, &classes, &mut out);
        assert_eq!(out[0].to_bits(), rt.class_score(a, &classes[0]).to_bits());
        assert_eq!(out[1].to_bits(), rt.class_score(a, &classes[1]).to_bits());
        assert_eq!(out[1].to_bits(), (out[0] * 3.0).to_bits());
        let mut excess = vec![0.0; 2];
        rt.excess_scores_into(a, &classes, &mut excess);
        assert_eq!(excess[0].to_bits(), 0.0f64.to_bits());
        assert!(excess[1] > 0.0);
    }

    #[test]
    fn scoring_policy_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<ScoringPolicy<'_>>();
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        predictor().profile("nope");
    }
}
