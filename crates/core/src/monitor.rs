//! The task & resource monitor's model-adaptation loop (paper Sections 3
//! and 4.6).
//!
//! TRACON tracks the prediction error of the deployed interference model.
//! When the environment changes (the paper's example: the same host
//! switched from local disks to iSCSI storage), errors surge; the monitor
//! detects the drift (mean shift / variance surge), gradually replaces
//! the oldest training data with fresh observations, and rebuilds the
//! model every `rebuild_every` new data points (160 in the paper).

use crate::characteristics::N_JOINT;
use crate::model::{
    relative_error, training::train_model_scaled, InterferenceModel, ModelKind, ResponseScale,
    TrainingData,
};
use std::collections::VecDeque;
use tracon_stats::{DriftDetector, DriftKind, SlidingWindow};

/// Configuration of the adaptive model.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Capacity of the rolling training window (paper: 500 initial points).
    pub window_capacity: usize,
    /// Rebuild the model after this many new observations (paper: 160).
    pub rebuild_every: usize,
    /// Size of the recent-error window the drift detector inspects.
    pub drift_window: usize,
    /// Mean-shift threshold in reference standard deviations.
    pub mean_threshold: f64,
    /// Variance-surge multiplier.
    pub var_threshold: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_capacity: 500,
            rebuild_every: 160,
            drift_window: 40,
            mean_threshold: 3.0,
            var_threshold: 6.0,
        }
    }
}

/// Outcome of feeding one observation to the adaptive model.
#[derive(Debug, Clone, Copy)]
pub struct ObserveOutcome {
    /// The model's prediction for the observation.
    pub predicted: f64,
    /// Relative prediction error against the actual response.
    pub error: f64,
    /// Drift detected on the recent error window, if any.
    pub drift: Option<DriftKind>,
    /// Whether this observation triggered a model rebuild.
    pub rebuilt: bool,
}

/// An interference model that adapts online as the monitor streams in new
/// observations.
pub struct AdaptiveModel {
    kind: ModelKind,
    scale: ResponseScale,
    cfg: MonitorConfig,
    window: VecDeque<([f64; N_JOINT], f64)>,
    model: Box<dyn InterferenceModel>,
    new_since_rebuild: usize,
    rebuilds: usize,
    recent_errors: SlidingWindow,
    detector: DriftDetector,
    error_history: Vec<f64>,
    drift_events: Vec<(usize, DriftKind)>,
}

impl AdaptiveModel {
    /// Trains the initial model on `initial` data and calibrates the
    /// drift detector on the initial model's training-set errors.
    ///
    /// # Panics
    /// Panics when `initial` is empty or the config is degenerate.
    pub fn new(kind: ModelKind, initial: &TrainingData, cfg: MonitorConfig) -> Self {
        Self::new_scaled(kind, ResponseScale::Linear, initial, cfg)
    }

    /// Like [`AdaptiveModel::new`] but fitting on the given response
    /// scale (use [`ResponseScale::Reciprocal`] for IOPS models).
    pub fn new_scaled(
        kind: ModelKind,
        scale: ResponseScale,
        initial: &TrainingData,
        cfg: MonitorConfig,
    ) -> Self {
        assert!(!initial.is_empty(), "adaptive model needs initial data");
        assert!(cfg.rebuild_every >= 1 && cfg.window_capacity >= 1);
        let model = train_model_scaled(kind, initial, scale);
        let reference_errors: Vec<f64> = initial
            .features
            .iter()
            .zip(&initial.responses)
            .map(|(f, &y)| relative_error(model.predict(f), y))
            .collect();
        let detector =
            DriftDetector::from_reference(&reference_errors, cfg.mean_threshold, cfg.var_threshold);
        let mut window = VecDeque::with_capacity(cfg.window_capacity);
        // Seed the rolling window with (the tail of) the initial data.
        let skip = initial.len().saturating_sub(cfg.window_capacity);
        for (f, &y) in initial.features.iter().zip(&initial.responses).skip(skip) {
            window.push_back((*f, y));
        }
        AdaptiveModel {
            kind,
            scale,
            cfg,
            window,
            model,
            new_since_rebuild: 0,
            rebuilds: 0,
            recent_errors: SlidingWindow::new(cfg.drift_window),
            detector,
            error_history: Vec::new(),
            drift_events: Vec::new(),
        }
    }

    /// Predicts a response without recording anything.
    pub fn predict(&self, features: &[f64; N_JOINT]) -> f64 {
        self.model.predict(features)
    }

    /// Feeds one observation: records the prediction error, replaces the
    /// oldest window entry, and rebuilds the model when `rebuild_every`
    /// new observations have accumulated.
    pub fn observe(&mut self, features: [f64; N_JOINT], actual: f64) -> ObserveOutcome {
        let predicted = self.model.predict(&features);
        let error = relative_error(predicted, actual);
        self.error_history.push(error);
        self.recent_errors.push(error);

        let drift = if self.recent_errors.is_full() {
            self.detector.check(&self.recent_errors.to_vec())
        } else {
            None
        };
        if let Some(kind) = drift {
            self.drift_events.push((self.error_history.len() - 1, kind));
        }

        // Gradually replace the old training data with the new.
        if self.window.len() >= self.cfg.window_capacity {
            self.window.pop_front();
        }
        self.window.push_back((features, actual));
        self.new_since_rebuild += 1;

        let mut rebuilt = false;
        if self.new_since_rebuild >= self.cfg.rebuild_every {
            self.rebuild();
            rebuilt = true;
        }

        ObserveOutcome {
            predicted,
            error,
            drift,
            rebuilt,
        }
    }

    /// Forces an immediate rebuild on the current window.
    pub fn rebuild(&mut self) {
        let mut data = TrainingData::default();
        for (f, y) in &self.window {
            data.push(*f, *y);
        }
        self.model = train_model_scaled(self.kind, &data, self.scale);
        self.new_since_rebuild = 0;
        self.rebuilds += 1;
    }

    /// Trains a standalone snapshot of the model on the current window —
    /// what [`AdaptiveModel::rebuild`] would deploy right now. Online
    /// adaptation uses this to hand a freshly retrained model to a
    /// [`crate::Predictor`] without giving up the monitor's window state.
    pub fn export_model(&self) -> Box<dyn InterferenceModel> {
        let mut data = TrainingData::default();
        for (f, y) in &self.window {
            data.push(*f, *y);
        }
        train_model_scaled(self.kind, &data, self.scale)
    }

    /// Number of rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// All recorded per-observation relative errors, oldest first.
    pub fn error_history(&self) -> &[f64] {
        &self.error_history
    }

    /// Recorded drift events as `(observation index, kind)`.
    pub fn drift_events(&self) -> &[(usize, DriftKind)] {
        &self.drift_events
    }

    /// Model family in use.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Environment A: y = 10 + 20 x0 x4. Environment B (drifted):
    /// y = 40 + 60 x0 x4 — same structure, very different scale.
    fn gen(rng: &mut StdRng, env_b: bool) -> ([f64; 8], f64) {
        let f: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
        let y = if env_b {
            40.0 + 60.0 * f[0] * f[4] + rng.gen_range(-0.5..0.5)
        } else {
            10.0 + 20.0 * f[0] * f[4] + rng.gen_range(-0.5..0.5)
        };
        (f, y)
    }

    fn initial_data(n: usize, seed: u64) -> TrainingData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = TrainingData::default();
        for _ in 0..n {
            let (f, y) = gen(&mut rng, false);
            d.push(f, y);
        }
        d
    }

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            window_capacity: 300,
            rebuild_every: 80,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn stable_environment_keeps_low_error() {
        let mut am = AdaptiveModel::new(ModelKind::Nonlinear, &initial_data(300, 1), cfg());
        let mut rng = StdRng::seed_from_u64(2);
        let mut errors = Vec::new();
        for _ in 0..100 {
            let (f, y) = gen(&mut rng, false);
            errors.push(am.observe(f, y).error);
        }
        let mean = tracon_stats::mean(&errors);
        assert!(mean < 0.1, "mean error in stable env = {mean}");
    }

    #[test]
    fn detects_drift_and_recovers() {
        let mut am = AdaptiveModel::new(ModelKind::Nonlinear, &initial_data(300, 3), cfg());
        let mut rng = StdRng::seed_from_u64(4);
        // Switch the environment: errors surge.
        let mut early = Vec::new();
        for _ in 0..60 {
            let (f, y) = gen(&mut rng, true);
            early.push(am.observe(f, y).error);
        }
        assert!(
            tracon_stats::mean(&early) > 0.3,
            "no surge: {}",
            tracon_stats::mean(&early)
        );
        assert!(!am.drift_events().is_empty(), "drift not detected");

        // Keep streaming: after several rebuilds the window is mostly new
        // data and the error returns to the pre-drift level.
        for _ in 0..500 {
            let (f, y) = gen(&mut rng, true);
            am.observe(f, y);
        }
        assert!(am.rebuilds() >= 4, "rebuilds = {}", am.rebuilds());
        let mut late = Vec::new();
        for _ in 0..80 {
            let (f, y) = gen(&mut rng, true);
            late.push(am.observe(f, y).error);
        }
        let late_mean = tracon_stats::mean(&late);
        assert!(
            late_mean < 0.1,
            "did not recover: late mean error = {late_mean}"
        );
    }

    #[test]
    fn rebuild_counter_follows_interval() {
        let mut am = AdaptiveModel::new(ModelKind::Linear, &initial_data(200, 5), cfg());
        let mut rng = StdRng::seed_from_u64(6);
        let mut rebuild_points = Vec::new();
        for i in 0..240 {
            let (f, y) = gen(&mut rng, false);
            if am.observe(f, y).rebuilt {
                rebuild_points.push(i);
            }
        }
        assert_eq!(rebuild_points, vec![79, 159, 239]);
        assert_eq!(am.rebuilds(), 3);
    }

    #[test]
    fn export_model_matches_rebuild_snapshot() {
        let mut am = AdaptiveModel::new(ModelKind::Linear, &initial_data(200, 9), cfg());
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let (f, y) = gen(&mut rng, false);
            am.observe(f, y);
        }
        let snap = am.export_model();
        am.rebuild();
        let f: [f64; 8] = std::array::from_fn(|i| 0.1 * (i as f64 + 1.0));
        assert!((snap.predict(&f) - am.predict(&f)).abs() < 1e-9);
    }

    #[test]
    fn error_history_grows_monotonically() {
        let mut am = AdaptiveModel::new(ModelKind::Wmm, &initial_data(100, 7), cfg());
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let (f, y) = gen(&mut rng, false);
            am.observe(f, y);
        }
        assert_eq!(am.error_history().len(), 10);
        assert_eq!(am.kind(), ModelKind::Wmm);
    }
}
