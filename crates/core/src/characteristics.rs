//! The application characteristics TRACON models (paper Table 2):
//! read requests per second, write requests per second, local CPU
//! utilization in the guest domain, and the global (Dom0) CPU utilization
//! attributable to the application's I/O handling.
//!
//! The four Table 2 features are the *2-dimension* view of the resource
//! model: the [`crate::resource::ResourceDim::Disk`] axis contributes
//! `read_rps`/`write_rps` and the [`crate::resource::ResourceDim::Cpu`]
//! axis `cpu_util`/`dom0_util`. [`Characteristics`] additionally carries
//! a network-demand lane ([`Characteristics::net_mbps`], default zero)
//! so heterogeneous-cluster backgrounds can aggregate the
//! [`crate::resource::ResourceDim::Network`] axis; the learned models'
//! feature encoding ([`Characteristics::as_array`], [`joint_features`])
//! is unchanged, so every 2-dim scenario replays bit-identically.

use crate::resource::{DimVec, ResourceDim};
use serde::{Deserialize, Serialize};

/// Number of per-VM characteristics (Table 2).
pub const N_CHARACTERISTICS: usize = 4;
/// Number of joint features for a two-VM model (both VMs' characteristics).
pub const N_JOINT: usize = 2 * N_CHARACTERISTICS;

/// One VM's resource characteristics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Characteristics {
    /// Read requests per second (iostat in Dom0).
    pub read_rps: f64,
    /// Write requests per second (iostat in Dom0).
    pub write_rps: f64,
    /// Local CPU utilization in the guest domain, `[0, 1]` (xentop).
    pub cpu_util: f64,
    /// Dom0 CPU utilization from handling this VM's I/O, `[0, 1]`.
    pub dom0_util: f64,
    /// Offered load on the shared network link in MB/s when the VM runs
    /// on a remote-storage machine class (zero on local storage, and in
    /// every 2-dim scenario). Not part of the learned feature vector —
    /// the network dimension's contention is modeled analytically
    /// ([`crate::resource::MachineClass::slowdown`]).
    pub net_mbps: f64,
}

impl Characteristics {
    /// Creates a characteristics vector (2-dim view: no network demand).
    pub fn new(read_rps: f64, write_rps: f64, cpu_util: f64, dom0_util: f64) -> Self {
        Characteristics {
            read_rps,
            write_rps,
            cpu_util,
            dom0_util,
            net_mbps: 0.0,
        }
    }

    /// Builder-style network-demand lane.
    pub fn with_net_mbps(mut self, net_mbps: f64) -> Self {
        self.net_mbps = net_mbps;
        self
    }

    /// The per-dimension demand view: total request rate on the disk
    /// axis, guest utilization on the CPU axis, link MB/s on the network
    /// axis.
    pub fn demands(&self) -> DimVec {
        DimVec::new()
            .with(ResourceDim::Disk, self.total_rps())
            .with(ResourceDim::Cpu, self.cpu_util)
            .with(ResourceDim::Network, self.net_mbps)
    }

    /// The characteristics of an idle VM.
    pub fn idle() -> Self {
        Characteristics::default()
    }

    /// As a fixed-size feature array `[read, write, cpu, dom0]` — the
    /// learned models' input encoding (the network lane is analytic and
    /// deliberately excluded).
    pub fn as_array(&self) -> [f64; N_CHARACTERISTICS] {
        [self.read_rps, self.write_rps, self.cpu_util, self.dom0_util]
    }

    /// Builds from a feature array (no network demand).
    pub fn from_array(a: [f64; N_CHARACTERISTICS]) -> Self {
        Characteristics {
            read_rps: a[0],
            write_rps: a[1],
            cpu_util: a[2],
            dom0_util: a[3],
            net_mbps: 0.0,
        }
    }

    /// Total request rate.
    pub fn total_rps(&self) -> f64 {
        self.read_rps + self.write_rps
    }

    /// Elementwise sum — used to aggregate several co-located neighbours
    /// into one background-load vector when a machine hosts more than two
    /// VMs (an extension beyond the paper's two-VM setting).
    pub fn combine(&self, other: &Characteristics) -> Characteristics {
        Characteristics {
            read_rps: self.read_rps + other.read_rps,
            write_rps: self.write_rps + other.write_rps,
            cpu_util: (self.cpu_util + other.cpu_util).min(1.0),
            dom0_util: (self.dom0_util + other.dom0_util).min(1.0),
            // Link bandwidth is additive and uncapped: the M/M/1 factor
            // handles saturation.
            net_mbps: self.net_mbps + other.net_mbps,
        }
    }
}

/// Joint feature vector for a two-VM interference model: VM1's (the
/// target's) characteristics followed by VM2's (the background's).
pub fn joint_features(vm1: &Characteristics, vm2: &Characteristics) -> [f64; N_JOINT] {
    let a = vm1.as_array();
    let b = vm2.as_array();
    [a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_roundtrip() {
        let c = Characteristics::new(10.0, 5.0, 0.5, 0.1);
        assert_eq!(Characteristics::from_array(c.as_array()), c);
        assert_eq!(c.total_rps(), 15.0);
    }

    #[test]
    fn idle_is_zero() {
        let i = Characteristics::idle();
        assert_eq!(i.as_array(), [0.0; 4]);
    }

    #[test]
    fn joint_layout() {
        let a = Characteristics::new(1.0, 2.0, 3.0, 4.0);
        let b = Characteristics::new(5.0, 6.0, 7.0, 8.0);
        assert_eq!(
            joint_features(&a, &b),
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        );
    }

    #[test]
    fn network_lane_rides_outside_the_feature_array() {
        let c = Characteristics::new(10.0, 5.0, 0.5, 0.1).with_net_mbps(40.0);
        // The learned-model encoding never sees the network lane…
        assert_eq!(c.as_array(), [10.0, 5.0, 0.5, 0.1]);
        // …but combine aggregates it additively, uncapped.
        let sum = c.combine(&c);
        assert_eq!(sum.net_mbps, 80.0);
        // Per-dimension demand view.
        let d = c.demands();
        assert_eq!(d.get(ResourceDim::Disk), 15.0);
        assert_eq!(d.get(ResourceDim::Cpu), 0.5);
        assert_eq!(d.get(ResourceDim::Network), 40.0);
    }

    #[test]
    fn combine_caps_utilizations() {
        let a = Characteristics::new(10.0, 0.0, 0.8, 0.6);
        let b = Characteristics::new(5.0, 5.0, 0.7, 0.7);
        let c = a.combine(&b);
        assert_eq!(c.read_rps, 15.0);
        assert_eq!(c.write_rps, 5.0);
        assert_eq!(c.cpu_util, 1.0);
        assert_eq!(c.dom0_util, 1.0);
    }
}
