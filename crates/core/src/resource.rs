//! Pluggable resource dimensions and heterogeneous machine classes.
//!
//! TRACON's original model is hardwired to one homogeneous CPU+disk box:
//! the four [`crate::characteristics::Characteristics`] features are a
//! *2-dimension* view (the [`ResourceDim::Disk`] axis contributes the
//! read/write request rates, the [`ResourceDim::Cpu`] axis the guest and
//! Dom0 utilizations). This module opens that up:
//!
//! * [`ResourceDim`] names the contended resource axes. The two legacy
//!   axes are always present; [`ResourceDim::Network`] generalizes the
//!   iSCSI "faked as a slower disk" parameterization into a real
//!   shared-bandwidth dimension with an analytic M/M/1 contention model
//!   (see [`tracon_stats::queueing`]).
//! * [`DimVec`] is a small-vec backed, `ResourceDim`-indexed demand
//!   vector — the per-task demand a service client may attach to a
//!   submission, and the conversion target of
//!   [`crate::characteristics::Characteristics::demands`].
//! * [`MachineClass`] describes one hardware class of a heterogeneous
//!   cluster: a solo runtime/IOPS factor relative to the reference
//!   (local-storage) class, and an optional shared-link capacity that
//!   activates the network dimension for hosts of the class.
//!
//! ## Adding a dimension
//!
//! 1. Add a variant to [`ResourceDim`] (append — wire names are stable).
//! 2. Give [`crate::characteristics::Characteristics`] a carrier field
//!    (with a zero default so 2-dim snapshots stay readable) and map it
//!    in `Characteristics::demands`.
//! 3. Express the dimension's contention analytically (like
//!    [`MachineClass::slowdown`]) or extend the learned feature vector.
//!    Analytic factors must be **exactly 1.0 at zero demand** so
//!    existing scenarios replay bit-identically.

use serde::{Deserialize, Serialize};
use tracon_stats::queueing::mm1_slowdown;

/// One contended resource axis of the interference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceDim {
    /// Storage I/O: request streams through the driver domain to the
    /// host's disk (legacy axis 1; features: read and write req/s).
    Disk,
    /// CPU time shared by the guest vCPUs and the driver domain (legacy
    /// axis 2; features: guest and Dom0 utilization).
    Cpu,
    /// Shared network-link bandwidth on remote-storage hosts (new axis;
    /// feature: offered load in MB/s).
    Network,
}

/// Number of resource dimensions currently defined.
pub const N_DIMS: usize = 3;
/// Number of legacy dimensions the 4-feature `Characteristics` view
/// spans (disk + CPU).
pub const N_LEGACY_DIMS: usize = 2;

impl ResourceDim {
    /// Every dimension, in index order.
    pub const ALL: [ResourceDim; N_DIMS] =
        [ResourceDim::Disk, ResourceDim::Cpu, ResourceDim::Network];

    /// Dense index of the dimension (its position in [`ResourceDim::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable wire name (the key in a protocol `demand` map).
    pub fn name(self) -> &'static str {
        match self {
            ResourceDim::Disk => "disk",
            ResourceDim::Cpu => "cpu",
            ResourceDim::Network => "network",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<ResourceDim> {
        ResourceDim::ALL.into_iter().find(|d| d.name() == name)
    }
}

/// A `ResourceDim`-indexed demand vector, small-vec backed: one `f64`
/// lane per dimension plus a presence bitmask, `Copy` and allocation
/// free. Unset dimensions read as zero demand; [`DimVec::is_set`]
/// distinguishes "explicitly zero" from "not specified" (a protocol
/// `demand` map omitting a dimension falls back to legacy defaults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DimVec {
    vals: [f64; N_DIMS],
    set: u8,
}

impl DimVec {
    /// An empty vector (no dimension set).
    pub fn new() -> Self {
        DimVec::default()
    }

    /// Sets a dimension's demand.
    pub fn set(&mut self, dim: ResourceDim, value: f64) {
        self.vals[dim.index()] = value;
        self.set |= 1 << dim.index();
    }

    /// Builder-style [`DimVec::set`].
    pub fn with(mut self, dim: ResourceDim, value: f64) -> Self {
        self.set(dim, value);
        self
    }

    /// The demand on a dimension (zero when unset).
    #[inline]
    pub fn get(&self, dim: ResourceDim) -> f64 {
        self.vals[dim.index()]
    }

    /// Whether the dimension was explicitly set.
    #[inline]
    pub fn is_set(&self, dim: ResourceDim) -> bool {
        self.set & (1 << dim.index()) != 0
    }

    /// Number of explicitly set dimensions.
    pub fn len(&self) -> usize {
        self.set.count_ones() as usize
    }

    /// Whether no dimension is set.
    pub fn is_empty(&self) -> bool {
        self.set == 0
    }

    /// Iterates the explicitly set `(dimension, demand)` pairs in
    /// dimension-index order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceDim, f64)> + '_ {
        ResourceDim::ALL
            .into_iter()
            .filter(|d| self.is_set(*d))
            .map(|d| (d, self.get(d)))
    }
}

/// One hardware class of a heterogeneous cluster. The reference class
/// (local storage, nominal speed) is [`MachineClass::local`]; remote
/// classes scale every task's solo performance and may route storage
/// traffic through a shared, capacity-limited link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineClass {
    /// Class name (e.g. `"local"`, `"iscsi"`).
    pub name: String,
    /// Solo runtime multiplier relative to the reference class
    /// (`>= 1.0` for slower hardware / remote storage).
    pub runtime_factor: f64,
    /// Solo IOPS multiplier relative to the reference class
    /// (`<= 1.0` for remote storage).
    pub iops_factor: f64,
    /// Capacity in MB/s of the shared network link hosts of this class
    /// push their storage traffic through. `None` disables the network
    /// dimension for the class (local storage).
    pub net_capacity_mb: Option<f64>,
}

impl MachineClass {
    /// The reference class: local storage, nominal speed, no network
    /// dimension. Simulations over only this class are bit-identical to
    /// the pre-class (2-dim) engine.
    pub fn local() -> Self {
        MachineClass {
            name: "local".to_string(),
            runtime_factor: 1.0,
            iops_factor: 1.0,
            net_capacity_mb: None,
        }
    }

    /// A remote-storage class whose hosts share an iSCSI-style link of
    /// the given capacity, with solo runtime/IOPS factors.
    pub fn remote(name: &str, runtime_factor: f64, iops_factor: f64, net_capacity_mb: f64) -> Self {
        MachineClass {
            name: name.to_string(),
            runtime_factor,
            iops_factor,
            net_capacity_mb: Some(net_capacity_mb),
        }
    }

    /// Whether this class is indistinguishable from the reference class
    /// (the fast path: scoring and the event kernel skip every class
    /// adjustment, keeping legacy scenarios bit-identical).
    #[inline]
    pub fn is_reference(&self) -> bool {
        self.runtime_factor == 1.0 && self.iops_factor == 1.0 && self.net_capacity_mb.is_none()
    }

    /// M/M/1 contention factor of the class's shared link alone (the
    /// hardware factors excluded). Exactly `1.0` when the class has no
    /// capacitated link or the offered load is zero.
    #[inline]
    pub fn link_contention(&self, net_demand_mb: f64) -> f64 {
        match self.net_capacity_mb {
            Some(cap) => mm1_slowdown(net_demand_mb, cap),
            None => 1.0,
        }
    }

    /// Total runtime slowdown of a task on a host of this class whose
    /// residents offer `net_demand_mb` MB/s to the shared link: the solo
    /// runtime factor times the M/M/1 link contention factor. Exactly
    /// `runtime_factor` at zero demand, exactly `1.0` for the reference
    /// class.
    #[inline]
    pub fn slowdown(&self, net_demand_mb: f64) -> f64 {
        match self.net_capacity_mb {
            Some(cap) => self.runtime_factor * mm1_slowdown(net_demand_mb, cap),
            None => self.runtime_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_names_roundtrip() {
        for d in ResourceDim::ALL {
            assert_eq!(ResourceDim::parse(d.name()), Some(d));
        }
        assert_eq!(ResourceDim::parse("tape"), None);
        assert_eq!(ResourceDim::Disk.index(), 0);
        assert_eq!(ResourceDim::Network.index(), 2);
    }

    #[test]
    fn dimvec_set_get_iter() {
        let mut v = DimVec::new();
        assert!(v.is_empty());
        assert_eq!(v.get(ResourceDim::Network), 0.0);
        assert!(!v.is_set(ResourceDim::Network));
        v.set(ResourceDim::Network, 40.0);
        let v = v.with(ResourceDim::Disk, 120.0);
        assert_eq!(v.len(), 2);
        assert!(v.is_set(ResourceDim::Disk));
        assert!(!v.is_set(ResourceDim::Cpu));
        assert_eq!(v.get(ResourceDim::Cpu), 0.0);
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(
            pairs,
            vec![(ResourceDim::Disk, 120.0), (ResourceDim::Network, 40.0)]
        );
    }

    #[test]
    fn local_class_is_reference() {
        let local = MachineClass::local();
        assert!(local.is_reference());
        assert_eq!(local.slowdown(0.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(local.slowdown(1e9).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn remote_class_slowdown_composes_factors() {
        let iscsi = MachineClass::remote("iscsi", 1.5, 0.6, 100.0);
        assert!(!iscsi.is_reference());
        // Zero demand: the solo factor alone, exactly.
        assert_eq!(iscsi.slowdown(0.0).to_bits(), 1.5f64.to_bits());
        // Half utilization doubles the link latency on top.
        assert!((iscsi.slowdown(50.0) - 3.0).abs() < 1e-12);
        // A capacitated class with unit factors is NOT the reference
        // class (it still keys scoring), but its zero-demand slowdown is
        // exactly one, which is what the zero-demand identity test pins.
        let capped = MachineClass::remote("capped", 1.0, 1.0, 100.0);
        assert!(!capped.is_reference());
        assert_eq!(capped.slowdown(0.0).to_bits(), 1.0f64.to_bits());
    }
}
