//! # tracon-core
//!
//! The paper's primary contribution: the TRACON Task and Resource
//! Allocation CONtrol framework.
//!
//! * [`characteristics`] — the four per-VM resource characteristics the
//!   models consume (Table 2) and the joint two-VM feature encoding.
//! * [`model`] — the three interference prediction model families:
//!   weighted mean (PCA + 3-NN), linear (stepwise AIC), and nonlinear
//!   (full quadratic expansion, Gauss-Newton, stepwise AIC), plus the
//!   no-Dom0 ablation and evaluation utilities.
//! * [`monitor`] — the task & resource monitor's online adaptation loop:
//!   error tracking, drift detection, and periodic model rebuilds.
//! * [`interner`] — the application-id interning layer (`AppId`,
//!   `AppRegistry`, packed `ClassKey`) that keeps the scheduler hot path
//!   allocation-free.
//! * [`par`] — deterministic fork-join helpers (scoped threads) used by
//!   MIX's head-candidate search and the dcsim experiment sweeps.
//! * [`predictor`] — the prediction module that scores candidate task
//!   placements for the schedulers, backed by dense per-(app, class)
//!   lookup tables.
//! * [`sched`] — the FIFO baseline and the three interference-aware
//!   schedulers: MIOS (Algorithm 1), MIBS (Algorithm 2), MIX
//!   (Algorithm 3), over a neighbour-class-indexed cluster state that
//!   keeps scheduling cost independent of cluster size.
//!
//! The crate is substrate-agnostic: it consumes characteristics and
//! responses from *any* source. The companion `tracon-vmsim` crate
//! produces them from a simulated virtualized testbed, and
//! `tracon-dcsim` drives these schedulers inside a data-center
//! discrete-event simulation.

#![warn(missing_docs)]

pub mod characteristics;
pub mod interner;
pub mod model;
pub mod monitor;
pub mod par;
pub mod predictor;
pub mod resource;
pub mod sched;

pub use characteristics::{joint_features, Characteristics, N_CHARACTERISTICS, N_JOINT};
pub use interner::{AppId, AppRegistry, ClassKey, MAX_NEIGHBOURS};
pub use model::{
    evaluate,
    linear::LinearModel,
    nonlinear::NonlinearModel,
    relative_error,
    training::{train_model, train_model_scaled},
    wmm::Wmm,
    InterferenceModel, ModelKind, Response, ResponseScale, TrainingData,
};
pub use monitor::{AdaptiveModel, MonitorConfig, ObserveOutcome};
pub use predictor::{AppModelSet, AppProfile, Objective, Predictor, ScoringPolicy};
pub use resource::{DimVec, MachineClass, ResourceDim, N_DIMS, N_LEGACY_DIMS};
pub use sched::{
    place_best, Assignment, ClusterState, Fifo, FreeClass, Mibs, MibsAblation, MibsVariant, Mios,
    Mix, Resident, Scheduler, Task, VmRef,
};
