//! Deterministic fork-join helpers built on `std::thread::scope`.
//!
//! The experiment sweeps and MIX's head-candidate search are
//! embarrassingly parallel: every job is a pure function of its inputs,
//! and results are reduced in job-index order, so output is bit-identical
//! for any worker count. A few scoped threads pulling from a shared work
//! queue cover that without adding a dependency to the workspace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override (0 = unset). Tests use this to pin
/// the pool to one thread and assert results do not change.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent [`map`] calls; `None`
/// restores the environment/default behaviour. Affects performance only —
/// results are identical for every worker count by construction.
pub fn override_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count [`map`] will use: the [`override_threads`] value if
/// set, else `TRACON_NUM_THREADS` or `RAYON_NUM_THREADS` from the
/// environment, else the machine's available parallelism.
pub fn max_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    for var in ["TRACON_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a scoped worker pool and returns the
/// results **in input order**. Runs inline when there is one worker or at
/// most one item.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = max_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Reverse so pop() hands out jobs in input order (first job first).
    let jobs: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let jobs = &jobs;
    let f = &f;
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let job = jobs.lock().expect("parallel queue poisoned").pop();
                        match job {
                            Some((i, item)) => done.push((i, f(item))),
                            None => return done,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("parallel worker dropped a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let out = map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert_eq!(map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let serial = map((0..64).collect(), |i: u64| i.wrapping_mul(0x9E37_79B9));
        for workers in [1, 2, 3, 8] {
            override_threads(Some(workers));
            let out = map((0..64).collect(), |i: u64| i.wrapping_mul(0x9E37_79B9));
            assert_eq!(out, serial);
        }
        override_threads(None);
    }
}
