//! Interference prediction models (paper Section 3.1).
//!
//! Three model families map the joint characteristics of two co-located
//! VMs to a response (the target application's runtime or IOPS):
//!
//! * [`Wmm`](wmm::Wmm) — weighted mean method: PCA to 4 components, then
//!   3-nearest-neighbour inverse-distance interpolation (the baseline),
//! * [`LinearModel`](linear::LinearModel) — least squares over the 8 raw
//!   variables, subset selected stepwise by AIC (equation 1),
//! * [`NonlinearModel`](nonlinear::NonlinearModel) — the full degree-2
//!   expansion fit with Gauss-Newton, subset selected stepwise by AIC
//!   (equation 2).

pub mod linear;
pub mod nonlinear;
pub mod training;
pub mod wmm;

use crate::characteristics::N_JOINT;

/// Which response a model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Response {
    /// Application runtime in seconds.
    Runtime,
    /// Application I/O operations per second.
    Iops,
}

impl Response {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Response::Runtime => "runtime",
            Response::Iops => "IOPS",
        }
    }
}

/// Which model family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Weighted mean method (PCA + 3-NN), the paper's baseline.
    Wmm,
    /// Linear model with stepwise AIC selection.
    Linear,
    /// Quadratic model with Gauss-Newton and stepwise AIC selection.
    Nonlinear,
    /// Ablation: the quadratic model *without* the Dom0 CPU parameters —
    /// the paper shows this roughly doubles prediction error (Fig 3a).
    NonlinearNoDom0,
}

impl ModelKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Wmm => "WMM",
            ModelKind::Linear => "LM",
            ModelKind::Nonlinear => "NLM",
            ModelKind::NonlinearNoDom0 => "NLM w/o Dom0",
        }
    }

    /// All kinds compared in the evaluation.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Wmm,
        ModelKind::Linear,
        ModelKind::Nonlinear,
        ModelKind::NonlinearNoDom0,
    ];
}

/// Scale on which a regression model fits its response.
///
/// Runtime grows roughly multiplicatively with interference, which the
/// degree-2 polynomial captures directly. Throughput (IOPS) instead
/// decays *hyperbolically* — `IOPS ~ solo / slowdown` — which no
/// polynomial can represent over a wide contention range (extrapolation
/// even goes negative). Fitting IOPS on the reciprocal scale (seconds
/// per request) turns the response into the same additive/multiplicative
/// structure as runtime; predictions are inverted back to IOPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResponseScale {
    /// Fit the raw response.
    #[default]
    Linear,
    /// Fit `1 / response` and invert predictions.
    Reciprocal,
}

impl ResponseScale {
    /// The scale used for a given response by the regression models
    /// (the k-NN-based WMM always interpolates on the raw scale).
    pub fn for_response(response: Response) -> ResponseScale {
        match response {
            Response::Runtime => ResponseScale::Linear,
            Response::Iops => ResponseScale::Reciprocal,
        }
    }
}

/// Wraps a model trained on the reciprocal response. The inner
/// prediction is clamped to the (margin-extended) range of the training
/// responses before inversion: a polynomial extrapolating to zero or
/// negative seconds-per-request would otherwise invert into absurd
/// throughputs.
pub struct ReciprocalModel {
    inner: Box<dyn InterferenceModel>,
    lo: f64,
    hi: f64,
}

impl ReciprocalModel {
    /// Wraps a model whose training responses were the reciprocals in
    /// `transformed_responses`.
    pub fn new(inner: Box<dyn InterferenceModel>, transformed_responses: &[f64]) -> Self {
        let lo = transformed_responses
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = transformed_responses.iter().copied().fold(0.0f64, f64::max);
        ReciprocalModel {
            inner,
            lo: (lo * 0.5).max(1e-9),
            hi: (hi * 2.0).max(1e-9),
        }
    }
}

impl InterferenceModel for ReciprocalModel {
    fn predict(&self, features: &[f64; N_JOINT]) -> f64 {
        let z = self.inner.predict(features).clamp(self.lo, self.hi);
        1.0 / z
    }

    fn kind(&self) -> ModelKind {
        self.inner.kind()
    }

    fn n_terms(&self) -> usize {
        self.inner.n_terms()
    }
}

/// A trained interference prediction model.
pub trait InterferenceModel: Send + Sync {
    /// Predicts the response for a joint feature vector.
    fn predict(&self, features: &[f64; N_JOINT]) -> f64;

    /// Model family name.
    fn kind(&self) -> ModelKind;

    /// Number of selected terms (model complexity), for diagnostics.
    fn n_terms(&self) -> usize;
}

/// A training set of joint features and responses.
#[derive(Debug, Clone, Default)]
pub struct TrainingData {
    /// Joint feature vectors.
    pub features: Vec<[f64; N_JOINT]>,
    /// Responses aligned with `features`.
    pub responses: Vec<f64>,
}

impl TrainingData {
    /// Creates a training set.
    ///
    /// # Panics
    /// Panics when lengths mismatch.
    pub fn new(features: Vec<[f64; N_JOINT]>, responses: Vec<f64>) -> Self {
        assert_eq!(
            features.len(),
            responses.len(),
            "features/responses mismatch"
        );
        TrainingData {
            features,
            responses,
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when there are no observations.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Appends one observation.
    pub fn push(&mut self, features: [f64; N_JOINT], response: f64) {
        self.features.push(features);
        self.responses.push(response);
    }

    /// Feature rows as `Vec<Vec<f64>>` for the fitting APIs.
    pub fn feature_rows(&self) -> Vec<Vec<f64>> {
        self.features.iter().map(|f| f.to_vec()).collect()
    }

    /// Deterministic interleaved train/test split: every `k`-th
    /// observation (starting at `offset`) goes to the test set.
    ///
    /// # Panics
    /// Panics when `k < 2`.
    pub fn split_every(&self, k: usize, offset: usize) -> (TrainingData, TrainingData) {
        assert!(k >= 2, "split_every requires k >= 2");
        let mut train = TrainingData::default();
        let mut test = TrainingData::default();
        for (i, (f, y)) in self.features.iter().zip(&self.responses).enumerate() {
            if i % k == offset % k {
                test.push(*f, *y);
            } else {
                train.push(*f, *y);
            }
        }
        (train, test)
    }
}

/// Relative prediction error as the paper defines it:
/// `|predicted - actual| / actual`.
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    if actual.abs() < 1e-12 {
        return if predicted.abs() < 1e-12 {
            0.0
        } else {
            f64::INFINITY
        };
    }
    (predicted - actual).abs() / actual.abs()
}

/// Mean and standard deviation of a model's relative errors on a data set
/// (the column heights and error bars of Fig 3).
pub fn evaluate(model: &dyn InterferenceModel, data: &TrainingData) -> tracon_stats::Summary {
    let errors: Vec<f64> = data
        .features
        .iter()
        .zip(&data.responses)
        .map(|(f, &y)| relative_error(model.predict(f), y))
        .collect();
    tracon_stats::summarize(&errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_definition() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn split_every_partitions() {
        let feats: Vec<[f64; 8]> = (0..10).map(|i| [i as f64; 8]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let data = TrainingData::new(feats, ys);
        let (train, test) = data.split_every(5, 0);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len(), 8);
        assert_eq!(test.responses, vec![0.0, 5.0]);
        // Different offset picks different test points.
        let (_, test2) = data.split_every(5, 2);
        assert_eq!(test2.responses, vec![2.0, 7.0]);
    }

    #[test]
    fn kind_names() {
        assert_eq!(ModelKind::Wmm.name(), "WMM");
        assert_eq!(ModelKind::Nonlinear.name(), "NLM");
        assert_eq!(Response::Runtime.name(), "runtime");
    }
}
