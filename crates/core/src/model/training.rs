//! Unified training entry point and evaluation helpers used by the
//! experiment drivers.

use super::linear::LinearModel;
use super::nonlinear::NonlinearModel;
use super::wmm::Wmm;
use super::{evaluate, InterferenceModel, ModelKind, ReciprocalModel, ResponseScale, TrainingData};
use tracon_stats::Summary;

/// Trains a model of the requested kind on the raw response scale.
///
/// # Panics
/// Panics when `data` is empty.
pub fn train_model(kind: ModelKind, data: &TrainingData) -> Box<dyn InterferenceModel> {
    train_model_scaled(kind, data, ResponseScale::Linear)
}

/// Trains a model of the requested kind on the given response scale.
///
/// The WMM baseline interpolates raw responses regardless of scale (the
/// k-NN average is scale-robust); the regression models fit the
/// transformed response and invert at prediction time.
///
/// # Panics
/// Panics when `data` is empty.
pub fn train_model_scaled(
    kind: ModelKind,
    data: &TrainingData,
    scale: ResponseScale,
) -> Box<dyn InterferenceModel> {
    if kind == ModelKind::Wmm {
        return Box::new(Wmm::train(data));
    }
    let fit = |d: &TrainingData| -> Box<dyn InterferenceModel> {
        match kind {
            ModelKind::Wmm => unreachable!("handled above"),
            ModelKind::Linear => Box::new(LinearModel::train(d)),
            ModelKind::Nonlinear => Box::new(NonlinearModel::train(d)),
            ModelKind::NonlinearNoDom0 => Box::new(NonlinearModel::train_no_dom0(d)),
        }
    };
    match scale {
        ResponseScale::Linear => fit(data),
        ResponseScale::Reciprocal => {
            let transformed = TrainingData::new(
                data.features.clone(),
                data.responses.iter().map(|&y| 1.0 / y.max(1e-9)).collect(),
            );
            Box::new(ReciprocalModel::new(
                fit(&transformed),
                &transformed.responses,
            ))
        }
    }
}

/// Result of a train/evaluate round for one model kind.
#[derive(Debug, Clone)]
pub struct EvaluationResult {
    /// Which model was trained.
    pub kind: ModelKind,
    /// Relative-error summary on the held-out set.
    pub error: Summary,
    /// Number of terms the model selected.
    pub n_terms: usize,
}

/// Trains on an interleaved split and evaluates on the held-out points
/// (every `k`-th observation), returning the error summary — the exact
/// procedure behind Fig 3.
pub fn train_and_evaluate(
    kind: ModelKind,
    data: &TrainingData,
    k: usize,
    scale: ResponseScale,
) -> EvaluationResult {
    let (train, test) = data.split_every(k, k / 2);
    let model = train_model_scaled(kind, &train, scale);
    let error = evaluate(model.as_ref(), &test);
    EvaluationResult {
        kind,
        error,
        n_terms: model.n_terms(),
    }
}

/// Cross-validated error: averages [`train_and_evaluate`] over all `k`
/// offsets of the interleaved split.
pub fn cross_validate(
    kind: ModelKind,
    data: &TrainingData,
    k: usize,
    scale: ResponseScale,
) -> Summary {
    let mut errors = Vec::new();
    for offset in 0..k {
        let (train, test) = data.split_every(k, offset);
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let model = train_model_scaled(kind, &train, scale);
        for (f, &y) in test.features.iter().zip(&test.responses) {
            errors.push(super::relative_error(model.predict(f), y));
        }
    }
    tracon_stats::summarize(&errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(seed: u64) -> TrainingData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = TrainingData::default();
        for _ in 0..300 {
            let f: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            let y = 10.0 + 4.0 * f[0] + 20.0 * f[0] * f[4] + rng.gen_range(-0.1..0.1);
            d.push(f, y);
        }
        d
    }

    #[test]
    fn trains_every_kind() {
        let d = data(1);
        for kind in ModelKind::ALL {
            let m = train_model(kind, &d);
            assert_eq!(m.kind(), kind);
            let y = m.predict(&d.features[0]);
            assert!(y.is_finite());
        }
    }

    #[test]
    fn nlm_wins_cross_validation() {
        let d = data(2);
        let e_nlm = cross_validate(ModelKind::Nonlinear, &d, 5, ResponseScale::Linear);
        let e_lm = cross_validate(ModelKind::Linear, &d, 5, ResponseScale::Linear);
        let e_wmm = cross_validate(ModelKind::Wmm, &d, 5, ResponseScale::Linear);
        assert!(
            e_nlm.mean < e_lm.mean,
            "nlm {} vs lm {}",
            e_nlm.mean,
            e_lm.mean
        );
        assert!(
            e_nlm.mean < e_wmm.mean,
            "nlm {} vs wmm {}",
            e_nlm.mean,
            e_wmm.mean
        );
    }

    #[test]
    fn evaluation_result_fields() {
        let d = data(3);
        let r = train_and_evaluate(ModelKind::Linear, &d, 5, ResponseScale::Linear);
        assert_eq!(r.kind, ModelKind::Linear);
        assert!(r.error.n > 0);
        assert!(r.n_terms >= 1);
    }
}
