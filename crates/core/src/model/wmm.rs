//! The weighted mean method (WMM): the paper's baseline interference
//! model, following Koh et al. (ISPASS'07).
//!
//! Training projects the profiled joint-characteristics vectors onto the
//! first four principal components; prediction finds the three nearest
//! profiled points in PC space and averages their responses weighted by
//! reciprocal Euclidean distance.

use super::{InterferenceModel, ModelKind, TrainingData};
use crate::characteristics::N_JOINT;
use tracon_stats::{KnnRegressor, Pca};

/// Number of principal components retained (paper Section 3.1).
pub const WMM_COMPONENTS: usize = 4;
/// Number of neighbours interpolated (paper Section 3.1).
pub const WMM_NEIGHBOURS: usize = 3;

/// A trained weighted-mean model.
pub struct Wmm {
    pca: Pca,
    knn: KnnRegressor,
}

impl Wmm {
    /// Trains a WMM on the given data.
    ///
    /// # Panics
    /// Panics when `data` is empty.
    pub fn train(data: &TrainingData) -> Self {
        assert!(!data.is_empty(), "WMM training on empty data");
        let rows = data.feature_rows();
        let pca = Pca::fit(&rows, WMM_COMPONENTS.min(N_JOINT));
        let projected = pca.project_all(&rows);
        let knn = KnnRegressor::new(projected, data.responses.clone(), WMM_NEIGHBOURS);
        Wmm { pca, knn }
    }

    /// Fraction of the training variance captured by the retained
    /// principal components.
    pub fn explained_variance_ratio(&self) -> f64 {
        self.pca.explained_variance_ratio()
    }
}

impl InterferenceModel for Wmm {
    fn predict(&self, features: &[f64; N_JOINT]) -> f64 {
        let p = self.pca.project(features.as_ref());
        self.knn.predict(&p)
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Wmm
    }

    fn n_terms(&self) -> usize {
        WMM_COMPONENTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn smooth_data(n: usize, seed: u64) -> TrainingData {
        // Response is a smooth function of the features, so nearest
        // neighbours interpolate well.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = TrainingData::default();
        for _ in 0..n {
            let f: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            let y = 100.0 + 50.0 * f[0] + 30.0 * f[4] + 20.0 * f[0] * f[4];
            data.push(f, y);
        }
        data
    }

    #[test]
    fn interpolates_training_points_exactly() {
        let data = smooth_data(100, 1);
        let wmm = Wmm::train(&data);
        // Exact training point hits its stored response.
        let y = wmm.predict(&data.features[7]);
        assert!((y - data.responses[7]).abs() < 1e-9);
    }

    #[test]
    fn generalizes_on_smooth_function() {
        let data = smooth_data(600, 2);
        let wmm = Wmm::train(&data);
        let mut rng = StdRng::seed_from_u64(3);
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let f: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.1..0.9));
            let actual = 100.0 + 50.0 * f[0] + 30.0 * f[4] + 20.0 * f[0] * f[4];
            let rel = (wmm.predict(&f) - actual).abs() / actual;
            worst = worst.max(rel);
        }
        assert!(worst < 0.20, "worst relative error = {worst}");
    }

    #[test]
    fn reports_kind_and_terms() {
        let data = smooth_data(20, 4);
        let wmm = Wmm::train(&data);
        assert_eq!(wmm.kind(), ModelKind::Wmm);
        assert_eq!(wmm.n_terms(), WMM_COMPONENTS);
        assert!(wmm.explained_variance_ratio() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_training_panics() {
        Wmm::train(&TrainingData::default());
    }
}
