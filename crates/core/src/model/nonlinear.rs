//! The nonlinear (quadratic) interference model (paper equation 2).
//!
//! The controlled variables are expanded to every term of the degree-2
//! polynomial `(1 + sum X_VM1,i + sum X_VM2,i)^2` — 8 linear terms, 8
//! squares, and 28 pairwise products. The coefficients are found with the
//! Gauss-Newton method and the term subset is chosen by the same stepwise
//! AIC search as the linear model.
//!
//! A variant without the Dom0 CPU parameters implements the paper's
//! ablation (Fig 3a shows dropping the fourth characteristic roughly
//! doubles the prediction error).

use super::{InterferenceModel, ModelKind, TrainingData};
use crate::characteristics::N_JOINT;
use tracon_stats::{
    stepwise_aic, GaussNewtonOptions, LinearInParams, Matrix, Scaler, StepwiseOptions,
};

/// One term of the quadratic basis over the (standardized) joint features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// `z[i]`
    Linear(usize),
    /// `z[i] * z[j]` (squares when `i == j`)
    Product(usize, usize),
}

impl Term {
    /// Evaluates the term on a standardized feature vector.
    #[inline]
    pub fn eval(&self, z: &[f64]) -> f64 {
        match *self {
            Term::Linear(i) => z[i],
            Term::Product(i, j) => z[i] * z[j],
        }
    }
}

/// Builds the degree-2 basis over the given variable indices: all linear
/// terms, all squares, and all pairwise products.
pub fn quadratic_terms(vars: &[usize]) -> Vec<Term> {
    let mut terms = Vec::with_capacity(vars.len() * (vars.len() + 3) / 2);
    for &i in vars {
        terms.push(Term::Linear(i));
    }
    for (a, &i) in vars.iter().enumerate() {
        for &j in &vars[a..] {
            terms.push(Term::Product(i, j));
        }
    }
    terms
}

/// The variable indices of the full model (all eight characteristics).
pub const FULL_VARS: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
/// The variable indices of the no-Dom0 ablation (drops indices 3 and 7).
pub const NO_DOM0_VARS: [usize; 6] = [0, 1, 2, 4, 5, 6];

/// A trained quadratic model.
pub struct NonlinearModel {
    scaler: Scaler,
    /// Basis terms of the *candidate* expansion (selection indexes these).
    terms: Vec<Term>,
    /// Indices into `terms` chosen by the stepwise search.
    selected: Vec<usize>,
    /// Intercept.
    intercept: f64,
    /// Coefficients aligned with `selected` (after Gauss-Newton refinement).
    coefficients: Vec<f64>,
    kind: ModelKind,
    /// Iterations used by the Gauss-Newton refinement.
    pub gn_iterations: usize,
    /// Training AIC of the selected model.
    pub aic: f64,
}

impl NonlinearModel {
    /// Trains the full quadratic model.
    pub fn train(data: &TrainingData) -> Self {
        Self::train_with_vars(data, &FULL_VARS, ModelKind::Nonlinear)
    }

    /// Trains the ablated model without the Dom0 CPU characteristics.
    pub fn train_no_dom0(data: &TrainingData) -> Self {
        Self::train_with_vars(data, &NO_DOM0_VARS, ModelKind::NonlinearNoDom0)
    }

    fn train_with_vars(data: &TrainingData, vars: &[usize], kind: ModelKind) -> Self {
        assert!(!data.is_empty(), "NLM training on empty data");
        let rows = data.feature_rows();
        let scaler = Scaler::fit(&rows);
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        let terms = quadratic_terms(vars);

        // Expanded design matrix over the candidate terms.
        let design: Vec<Vec<f64>> = scaled
            .iter()
            .map(|z| terms.iter().map(|t| t.eval(z)).collect())
            .collect();
        let x = Matrix::from_rows(&design);
        // Cap model complexity relative to the sample size: with a small
        // profiling set the 44-term quadratic basis can otherwise chase
        // noise that even AICc fails to fully penalize.
        let opts = StepwiseOptions {
            max_terms: (data.len() / 8).clamp(3, 24),
            ..StepwiseOptions::default()
        };
        let step = stepwise_aic(&x, &data.responses, opts);

        // Gauss-Newton refinement over the selected basis, as the paper
        // prescribes. The model is linear in its parameters, so this
        // converges in one or two damped steps, but running the true
        // algorithm keeps the training path faithful (and exercises the
        // solver the monitor reuses during online rebuilds).
        let selected = step.selected.clone();
        let sel_terms: Vec<Term> = selected.iter().map(|&i| terms[i]).collect();
        let n_params = sel_terms.len() + 1;
        let model = LinearInParams::new(n_params, move |z: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.push(1.0);
            for t in &sel_terms {
                out.push(t.eval(z));
            }
        });
        let mut initial = Vec::with_capacity(n_params);
        initial.push(step.intercept);
        initial.extend_from_slice(&step.coefficients);
        let gn = tracon_stats::gauss_newton::fit(
            &model,
            &scaled,
            &data.responses,
            &initial,
            GaussNewtonOptions::default(),
        );

        NonlinearModel {
            scaler,
            terms,
            selected,
            intercept: gn.params[0],
            coefficients: gn.params[1..].to_vec(),
            kind,
            gn_iterations: gn.iterations,
            aic: step.aic,
        }
    }

    /// Selected terms of the final model.
    pub fn selected_terms(&self) -> Vec<Term> {
        self.selected.iter().map(|&i| self.terms[i]).collect()
    }

    /// True when any selected term is a product or square (the model is
    /// genuinely nonlinear in the characteristics).
    pub fn has_interaction_terms(&self) -> bool {
        self.selected_terms()
            .iter()
            .any(|t| matches!(t, Term::Product(_, _)))
    }
}

impl InterferenceModel for NonlinearModel {
    fn predict(&self, features: &[f64; N_JOINT]) -> f64 {
        let z = self.scaler.transform(features.as_ref());
        let mut y = self.intercept;
        for (&idx, c) in self.selected.iter().zip(&self.coefficients) {
            y += c * self.terms[idx].eval(&z);
        }
        y
    }

    fn kind(&self) -> ModelKind {
        self.kind
    }

    fn n_terms(&self) -> usize {
        self.selected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quadratic_term_count() {
        // 8 vars: 8 linear + 36 products (incl. 8 squares) = 44.
        assert_eq!(quadratic_terms(&FULL_VARS).len(), 44);
        // 6 vars: 6 + 21 = 27.
        assert_eq!(quadratic_terms(&NO_DOM0_VARS).len(), 27);
    }

    fn product_data(n: usize, seed: u64) -> TrainingData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = TrainingData::default();
        for _ in 0..n {
            let f: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            // Product interaction plus a linear part — the structure real
            // I/O interference exhibits.
            let y = 20.0 + 5.0 * f[0] + 80.0 * f[0] * f[4] + 30.0 * f[3] * f[7];
            data.push(f, y);
        }
        data
    }

    #[test]
    fn captures_product_interactions() {
        let train = product_data(500, 1);
        let nlm = NonlinearModel::train(&train);
        let test = product_data(80, 2);
        let summary = evaluate(&nlm, &test);
        assert!(summary.mean < 0.02, "mean rel err = {}", summary.mean);
        assert!(nlm.has_interaction_terms());
    }

    #[test]
    fn no_dom0_ablation_is_worse_when_dom0_matters() {
        let train = product_data(500, 3);
        let full = NonlinearModel::train(&train);
        let ablated = NonlinearModel::train_no_dom0(&train);
        let test = product_data(80, 4);
        let e_full = evaluate(&full, &test).mean;
        let e_ablated = evaluate(&ablated, &test).mean;
        assert!(
            e_ablated > 2.0 * e_full.max(0.005),
            "full = {e_full}, ablated = {e_ablated}"
        );
        assert_eq!(ablated.kind(), ModelKind::NonlinearNoDom0);
    }

    #[test]
    fn ablated_model_never_uses_dom0_variables() {
        let train = product_data(300, 5);
        let ablated = NonlinearModel::train_no_dom0(&train);
        for t in ablated.selected_terms() {
            match t {
                Term::Linear(i) => assert!(i != 3 && i != 7),
                Term::Product(i, j) => {
                    assert!(i != 3 && i != 7 && j != 3 && j != 7)
                }
            }
        }
    }

    #[test]
    fn beats_linear_model_on_interactions() {
        let train = product_data(500, 6);
        let nlm = NonlinearModel::train(&train);
        let lm = crate::model::linear::LinearModel::train(&train);
        let test = product_data(80, 7);
        let e_nlm = evaluate(&nlm, &test).mean;
        let e_lm = evaluate(&lm, &test).mean;
        assert!(e_nlm < e_lm * 0.5, "nlm = {e_nlm}, lm = {e_lm}");
    }

    #[test]
    fn parsimonious_on_linear_truth() {
        // Pure linear ground truth: the stepwise search should not pick
        // many spurious quadratic terms.
        let mut rng = StdRng::seed_from_u64(8);
        let mut data = TrainingData::default();
        for _ in 0..400 {
            let f: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            let y = 5.0 + 10.0 * f[2] + rng.gen_range(-0.05..0.05);
            data.push(f, y);
        }
        let nlm = NonlinearModel::train(&data);
        assert!(nlm.n_terms() <= 10, "selected {} terms", nlm.n_terms());
    }
}
