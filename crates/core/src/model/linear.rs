//! The linear interference model (paper equation 1):
//! `Y = c + sum a_i X_VM1,i + sum b_i X_VM2,i`, with the variable subset
//! chosen by a stepwise algorithm scored by AIC.

use super::{InterferenceModel, ModelKind, TrainingData};
use crate::characteristics::N_JOINT;
use tracon_stats::{stepwise_aic, Matrix, Scaler, StepwiseFit, StepwiseOptions};

/// A trained linear model.
pub struct LinearModel {
    scaler: Scaler,
    fit: StepwiseFit,
}

impl LinearModel {
    /// Trains a linear model with stepwise AIC selection over the eight
    /// controlled variables. Features are standardized first so the
    /// request rates (hundreds per second) and CPU utilizations (0..1)
    /// condition the least-squares problem comparably.
    ///
    /// # Panics
    /// Panics when `data` is empty.
    pub fn train(data: &TrainingData) -> Self {
        assert!(!data.is_empty(), "LM training on empty data");
        let rows = data.feature_rows();
        let scaler = Scaler::fit(&rows);
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        let x = Matrix::from_rows(&scaled);
        let fit = stepwise_aic(&x, &data.responses, StepwiseOptions::default());
        LinearModel { scaler, fit }
    }

    /// AIC of the selected model.
    pub fn aic(&self) -> f64 {
        self.fit.aic
    }

    /// Indices (into the joint feature vector) of the selected variables.
    pub fn selected(&self) -> &[usize] {
        &self.fit.selected
    }
}

impl InterferenceModel for LinearModel {
    fn predict(&self, features: &[f64; N_JOINT]) -> f64 {
        let z = self.scaler.transform(features.as_ref());
        self.fit.predict(&z)
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Linear
    }

    fn n_terms(&self) -> usize {
        self.fit.selected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_data(n: usize, seed: u64) -> TrainingData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = TrainingData::default();
        for _ in 0..n {
            let f: [f64; 8] = std::array::from_fn(|i| {
                if i == 0 || i == 4 {
                    rng.gen_range(0.0..300.0) // request rates
                } else {
                    rng.gen_range(0.0..1.0) // utilizations
                }
            });
            // Depends on target reads, background reads, background cpu.
            let y = 50.0 + 0.3 * f[0] + 0.5 * f[4] + 40.0 * f[6] + rng.gen_range(-1.0..1.0);
            data.push(f, y);
        }
        data
    }

    #[test]
    fn recovers_linear_relationship() {
        let data = linear_data(400, 1);
        let lm = LinearModel::train(&data);
        // Held-out evaluation.
        let test = linear_data(50, 2);
        let summary = super::super::evaluate(&lm, &test);
        assert!(summary.mean < 0.02, "mean rel err = {}", summary.mean);
        // Should select roughly the three informative variables.
        assert!(lm.n_terms() <= 5, "selected {:?}", lm.selected());
    }

    #[test]
    fn fails_on_quadratic_interaction() {
        // Strong product term: a purely linear model cannot capture it —
        // the property that motivates the paper's NLM.
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = TrainingData::default();
        for _ in 0..400 {
            let f: [f64; 8] = std::array::from_fn(|_| rng.gen_range(0.0..1.0));
            let y = 10.0 + 100.0 * f[0] * f[4];
            data.push(f, y);
        }
        let lm = LinearModel::train(&data);
        let summary = super::super::evaluate(&lm, &data);
        assert!(
            summary.mean > 0.1,
            "LM unexpectedly fit a product term: {}",
            summary.mean
        );
    }

    #[test]
    fn reports_kind() {
        let data = linear_data(50, 4);
        let lm = LinearModel::train(&data);
        assert_eq!(lm.kind(), ModelKind::Linear);
        assert!(lm.aic().is_finite());
    }
}
