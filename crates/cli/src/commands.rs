//! CLI subcommand implementations. Each returns `Ok(output)` to print or
//! `Err(message)` for usage/runtime errors, so the logic is unit-testable
//! without spawning processes.

use crate::args::Args;
use std::fmt::Write as _;
use tracon_core::{Characteristics, ModelKind, Objective};
use tracon_dcsim::arrival::{poisson_trace, WorkloadMix};
use tracon_dcsim::{SchedulerKind, Simulation, Testbed, TestbedConfig};
use tracon_vmsim::{Benchmark, HostConfig};

/// Top-level usage text.
pub const USAGE: &str = "\
tracon — interference-aware scheduling for data-intensive applications (SC'11)

USAGE:
  tracon <command> [options]

COMMANDS:
  profile    Run the profiling campaign and save a testbed snapshot
             --out FILE [--points N=125] [--time-scale F=0.25] [--seed N]
  inspect    Print a snapshot's pair-interference matrix and solo stats
             --testbed FILE
  predict    Predict runtime/IOPS of an app next to a neighbour
             --testbed FILE --app NAME [--neighbor NAME] [--model wmm|lm|nlm]
  schedule   Schedule a task list onto a cluster and show the placements
             --testbed FILE --tasks a,b,c --machines N
             [--scheduler fifo|mios|mibs|mix] [--objective rt|io]
  simulate   Run a dynamic data-center simulation
             --testbed FILE --machines N --lambda TASKS/MIN [--hours H=10]
             [--mix light|medium|heavy|uniform] [--scheduler ...] [--seed N]
             [--compare]  (run MIOS, MIBS, and MIX side by side instead of
                           the single --scheduler, normalized against FIFO)
  experiment Run a registered paper experiment end to end
             NAME... | --list   [--fidelity small|quick|full]  (default small;
             full matches the paper-scale figures and can take hours)
  serve      Run tracond, the online scheduling daemon, until drained
             [--port N=0] [--http-port N=0] [--machines N=4] [--slots N=2]
             [--shards N=1]  (scheduler shards behind one connection
                           reactor; each owns a machine slice and WAL file)
             [--scheduler mios|mibs[:W]|mix[:W]] [--objective rt|io]
             [--queue-cap N=64] [--rebuild-every N] [--batch-deadline-ms N=100]
             [--wal DIR]  (persist admissions to an fsync'd write-ahead log
                           and recover queue/counters on restart)
             [--replica-of HOST:PORT]  (boot as a warm follower of a running
                           leader: pull WAL frames, refuse mutations with
                           not_leader, and self-promote when the leader's
                           lease lapses; requires --wal)
             [--repl-ttl-ms N=1500] [--repl-poll-ms N=50]
             [--lease-ms N=30000] [--lease-per-s-ms N=2000]
             [--max-attempts N=5] [--backoff-ms N=100] [--backoff-cap-ms N=5000]
             [--testbed FILE | --points N=6 --time-scale F=0.05 --seed N]
  submit     Submit tasks to a running tracond and print the placements
             --addr HOST:PORT --app NAME [--count N=1]
  loadgen    Drive a running tracond with Poisson load, print latency stats
             --addr HOST:PORT[,HOST:PORT...]  (extra addresses are tried in
                           order when the first answers not_leader or a
                           failover promotes a replica mid-run)
             [--requests N=100] [--lambda TASKS/MIN=60]
             [--mix light|medium|heavy|uniform] [--mode open|closed]
             [--concurrency N=8] [--seed N] [--quick] [--idle-conns N=0]
             [--chaos]    (adversarial mode: killed connections, garbage and
                           oversized lines, partial frames, orphaned tasks;
                           asserts task conservation from daemon counters.
                           --addr takes a comma-separated failover list so a
                           restarted daemon may come back on another port;
                           [--settle-timeout-ms N=30000] bounds the final
                           wait for all work to reach a terminal state;
                           [--failpoints SPEC] arms server-side fault
                           injection over the fail verb for the run, e.g.
                           wal.append.sync=err%50;seed=7 — the report
                           pairs faults injected with faults observed)
  drain      Ask a running tracond to stop admitting work and exit when idle
             --addr HOST:PORT
  table1     Reproduce the paper's motivating interference table
  apps       List the benchmark suite
  help       Show this message
";

fn model_kind(name: &str) -> Result<ModelKind, String> {
    match name {
        "wmm" => Ok(ModelKind::Wmm),
        "lm" => Ok(ModelKind::Linear),
        "nlm" => Ok(ModelKind::Nonlinear),
        other => Err(format!("unknown model '{other}' (wmm, lm, nlm)")),
    }
}

fn scheduler_kind(name: &str, window: usize) -> Result<SchedulerKind, String> {
    match name {
        "fifo" => Ok(SchedulerKind::Fifo),
        "mios" => Ok(SchedulerKind::Mios),
        "mibs" => Ok(SchedulerKind::Mibs(window)),
        "mix" => Ok(SchedulerKind::Mix(window)),
        other => Err(format!(
            "unknown scheduler '{other}' (fifo, mios, mibs, mix)"
        )),
    }
}

fn mix(name: &str) -> Result<WorkloadMix, String> {
    match name {
        "light" => Ok(WorkloadMix::Light),
        "medium" => Ok(WorkloadMix::Medium),
        "heavy" => Ok(WorkloadMix::Heavy),
        "uniform" => Ok(WorkloadMix::Uniform),
        other => Err(format!(
            "unknown mix '{other}' (light, medium, heavy, uniform)"
        )),
    }
}

fn objective(name: &str) -> Result<Objective, String> {
    match name {
        "rt" => Ok(Objective::MinRuntime),
        "io" => Ok(Objective::MaxIops),
        other => Err(format!("unknown objective '{other}' (rt, io)")),
    }
}

fn load_testbed(args: &Args) -> Result<Testbed, String> {
    let path = args.require("testbed")?;
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read testbed '{path}': {e}"))?;
    let kind = model_kind(args.get_or("model", "nlm"))?;
    Testbed::from_snapshot_json(&json, kind)
}

/// `tracon profile`
pub fn profile(args: &Args) -> Result<String, String> {
    let out_path = args.require("out")?;
    let points: usize = args.num_or("points", 125)?;
    let time_scale: f64 = args.num_or("time-scale", 0.25)?;
    let seed: u64 = args.num_or("seed", 0x7EAC0)?;
    if time_scale <= 0.0 {
        return Err("--time-scale must be positive".into());
    }
    let cfg = TestbedConfig {
        host: HostConfig::testbed(),
        time_scale,
        model_kind: ModelKind::Nonlinear,
        calibration_points: points,
        seed,
    };
    eprintln!("profiling 8 benchmarks against {points} calibration workloads ...");
    let tb = Testbed::build(&cfg);
    std::fs::write(out_path, tb.snapshot_json())
        .map_err(|e| format!("cannot write '{out_path}': {e}"))?;
    Ok(format!(
        "saved testbed snapshot to {out_path} ({} apps, {} profile records)",
        tb.perf.n_apps(),
        tb.profiles.iter().map(|p| p.records.len()).sum::<usize>()
    ))
}

/// `tracon inspect`
pub fn inspect(args: &Args) -> Result<String, String> {
    let tb = load_testbed(args)?;
    let mut out = String::new();
    writeln!(out, "applications ({}):", tb.perf.n_apps()).unwrap();
    writeln!(
        out,
        "{:10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "name", "runtime(s)", "IOPS", "reads/s", "writes/s", "cpu"
    )
    .unwrap();
    for (i, name) in tb.perf.names.iter().enumerate() {
        let c = tb.app_chars[name];
        writeln!(
            out,
            "{:10} {:>10.1} {:>10.1} {:>8.1} {:>8.1} {:>8.2}",
            name,
            tb.perf.solo_runtime(i),
            tb.perf.solo_iops(i),
            c.read_rps,
            c.write_rps,
            c.cpu_util
        )
        .unwrap();
    }
    writeln!(out, "\npair slowdowns (row app next to column app):").unwrap();
    write!(out, "{:10}", "").unwrap();
    for name in &tb.perf.names {
        write!(out, " {:>8}", &name[..name.len().min(8)]).unwrap();
    }
    writeln!(out).unwrap();
    for (a, name) in tb.perf.names.iter().enumerate() {
        write!(out, "{name:10}").unwrap();
        for b in 0..tb.perf.n_apps() {
            write!(out, " {:>8.2}", tb.perf.slowdown(a, b)).unwrap();
        }
        writeln!(out).unwrap();
    }
    Ok(out)
}

/// `tracon predict`
pub fn predict(args: &Args) -> Result<String, String> {
    let tb = load_testbed(args)?;
    let app = args.require("app")?;
    if !tb.predictor.knows(app) {
        return Err(format!("unknown application '{app}' (see `tracon apps`)"));
    }
    let mut out = String::new();
    match args.options.get("neighbor") {
        Some(nb) => {
            if !tb.predictor.knows(nb) {
                return Err(format!("unknown neighbour '{nb}'"));
            }
            let rt = tb.predictor.predict_pair_runtime(app, nb);
            let io = tb.predictor.predict_pair_iops(app, nb);
            let solo_rt = tb.predictor.profile(app).solo_runtime;
            writeln!(
                out,
                "{app} next to {nb}: runtime {rt:.1} s ({:.2}x solo), IOPS {io:.1}",
                rt / solo_rt
            )
            .unwrap();
        }
        None => {
            writeln!(out, "predicted runtime of {app} next to each neighbour:").unwrap();
            let idle = Characteristics::idle();
            writeln!(
                out,
                "  {:10} {:>10.1} s (idle)",
                "-",
                tb.predictor.predict_runtime(app, &idle)
            )
            .unwrap();
            for nb in tb.perf.names.clone() {
                let rt = tb.predictor.predict_pair_runtime(app, &nb);
                writeln!(out, "  {nb:10} {rt:>10.1} s").unwrap();
            }
        }
    }
    Ok(out)
}

/// `tracon schedule`
pub fn schedule(args: &Args) -> Result<String, String> {
    let tb = load_testbed(args)?;
    let machines: usize = args.num_or("machines", 4)?;
    if machines == 0 {
        return Err("--machines must be positive".into());
    }
    let tasks_arg = args
        .options
        .get("tasks")
        .cloned()
        .or_else(|| {
            if args.positionals.is_empty() {
                None
            } else {
                Some(args.positionals.join(","))
            }
        })
        .ok_or("missing --tasks a,b,c")?;
    let names: Vec<&str> = tasks_arg.split(',').filter(|s| !s.is_empty()).collect();
    if names.is_empty() {
        return Err("empty task list".into());
    }
    for n in &names {
        if !tb.predictor.knows(n) {
            return Err(format!("unknown application '{n}' (see `tracon apps`)"));
        }
    }
    let kind = scheduler_kind(args.get_or("scheduler", "mibs"), names.len())?;
    let obj = objective(args.get_or("objective", "rt"))?;

    use std::collections::VecDeque;
    use tracon_core::{ClusterState, ScoringPolicy, Task};
    let scoring = ScoringPolicy::new(&tb.predictor, obj);
    let mut cluster = ClusterState::new(machines, 2, tb.app_chars.clone());
    let registry = cluster.registry().clone();
    let mut queue: VecDeque<Task> = names
        .iter()
        .enumerate()
        .map(|(i, n)| Task::new(i as u64, registry.expect_id(n)))
        .collect();
    let mut scheduler = kind.build();
    let assignments = scheduler.schedule(&mut queue, &mut cluster, &scoring);

    let mut out = String::new();
    writeln!(
        out,
        "{} placed {} of {} tasks:",
        scheduler.name(),
        assignments.len(),
        names.len()
    )
    .unwrap();
    let mut per_machine: Vec<Vec<String>> = vec![Vec::new(); machines];
    for a in &assignments {
        per_machine[a.vm.machine].push(registry.name(a.task.app).to_string());
    }
    for (m, apps) in per_machine.iter().enumerate() {
        if !apps.is_empty() {
            writeln!(out, "  machine {m:3}: {}", apps.join(" + ")).unwrap();
        }
    }
    if !queue.is_empty() {
        let left: Vec<&str> = queue.iter().map(|t| registry.name(t.app)).collect();
        writeln!(out, "  queued (cluster full): {}", left.join(", ")).unwrap();
    }
    Ok(out)
}

/// `tracon simulate`
pub fn simulate(args: &Args) -> Result<String, String> {
    let tb = load_testbed(args)?;
    let machines: usize = args.num_or("machines", 64)?;
    let lambda: f64 = args.num_or("lambda", 40.0)?;
    let hours: f64 = args.num_or("hours", 10.0)?;
    let seed: u64 = args.num_or("seed", 42)?;
    if machines == 0 || lambda <= 0.0 || hours <= 0.0 {
        return Err("--machines, --lambda, and --hours must be positive".into());
    }
    let window: usize = args.num_or("window", 8)?;
    let kind = scheduler_kind(args.get_or("scheduler", "mibs"), window)?;
    let obj = objective(args.get_or("objective", "rt"))?;
    let workload = mix(args.get_or("mix", "medium"))?;

    let horizon = hours * 3600.0;
    let trace = poisson_trace(lambda, horizon, workload, seed);
    let fifo = Simulation::new(&tb, machines, SchedulerKind::Fifo).run(&trace, Some(horizon));

    let mut out = String::new();
    writeln!(
        out,
        "{} machines, {} mix, lambda {lambda}/min, {hours} h, {} arrivals",
        machines,
        workload.name(),
        trace.len()
    )
    .unwrap();
    writeln!(
        out,
        "  {:10} completed {:6}  mean wait {:7.0} s",
        "FIFO", fifo.completed, fifo.mean_wait
    )
    .unwrap();
    // `--compare` runs every scheduler; otherwise just the chosen one.
    let kinds: Vec<SchedulerKind> = if args.flag("compare") {
        vec![
            SchedulerKind::Mios,
            SchedulerKind::Mibs(window),
            SchedulerKind::Mix(window),
        ]
    } else {
        vec![kind]
    };
    for k in kinds {
        let r = Simulation::new(&tb, machines, k)
            .with_objective(obj)
            .run(&trace, Some(horizon));
        writeln!(
            out,
            "  {:10} completed {:6}  mean wait {:7.0} s  (normalized throughput {:.3})",
            r.scheduler,
            r.completed,
            r.mean_wait,
            r.completed as f64 / fifo.completed.max(1) as f64
        )
        .unwrap();
    }
    Ok(out)
}

/// `tracon experiment`
pub fn experiment(args: &Args) -> Result<String, String> {
    use tracon_dcsim::experiments::registry::{find, TestbedCache, REGISTRY};
    use tracon_dcsim::experiments::ExperimentConfig;

    if args.flag("list") {
        let mut out = String::new();
        writeln!(out, "registered experiments ({}):", REGISTRY.len()).unwrap();
        for exp in REGISTRY {
            writeln!(out, "  {:12} {}", exp.name(), exp.description()).unwrap();
        }
        return Ok(out);
    }

    let cfg = match args.get_or("fidelity", "small") {
        "small" => ExperimentConfig::small(),
        "quick" => ExperimentConfig::quick(),
        "full" => ExperimentConfig::full(),
        other => return Err(format!("unknown fidelity '{other}' (small, quick, full)")),
    };
    if args.positionals.is_empty() {
        return Err("missing experiment name (try `tracon experiment --list`)".into());
    }
    let names: Vec<&str> = args
        .positionals
        .iter()
        .flat_map(|p| p.split(','))
        .filter(|s| !s.is_empty())
        .collect();

    // One cache for the whole invocation: the profiled testbed is built at
    // most once no matter how many experiments share it.
    let cache = TestbedCache::new(&cfg);
    let mut out = String::new();
    for (i, name) in names.into_iter().enumerate() {
        let exp = find(name).ok_or_else(|| {
            format!("unknown experiment '{name}' (try `tracon experiment --list`)")
        })?;
        if i > 0 {
            writeln!(out).unwrap();
        }
        writeln!(out, "==== {}: {} ====", exp.name(), exp.description()).unwrap();
        out.push_str(&exp.run(&cfg, &cache).rendered);
    }
    Ok(out)
}

/// Builds the testbed a daemon or client command runs against: a saved
/// snapshot when `--testbed` is given, otherwise a fast synthetic
/// profiling campaign (the e2e-test scale: 6 points at 0.05 time scale).
fn serve_testbed(args: &Args) -> Result<Testbed, String> {
    if args.options.contains_key("testbed") {
        return load_testbed(args);
    }
    let points: usize = args.num_or("points", 6)?;
    let time_scale: f64 = args.num_or("time-scale", 0.05)?;
    let seed: u64 = args.num_or("seed", 0x7EAC0)?;
    if points == 0 || time_scale <= 0.0 {
        return Err("--points and --time-scale must be positive".into());
    }
    eprintln!("profiling a synthetic testbed ({points} calibration points) ...");
    Ok(Testbed::build(&TestbedConfig {
        host: HostConfig::testbed(),
        time_scale,
        model_kind: ModelKind::Nonlinear,
        calibration_points: points,
        seed,
    }))
}

/// `tracon serve` — boot tracond and block until it drains or is shut
/// down over the protocol.
pub fn serve(args: &Args) -> Result<String, String> {
    use tracon_serve::{daemon, NetConfig, SchedKind, ServeConfig};

    let machines: usize = args.num_or("machines", 4)?;
    let slots: usize = args.num_or("slots", 2)?;
    if machines == 0 || slots == 0 {
        return Err("--machines and --slots must be positive".into());
    }
    let shards: usize = args.num_or("shards", 1)?;
    if shards == 0 || shards > machines {
        return Err(format!(
            "--shards must be 1..=--machines (got {shards} shards over {machines} machines)"
        ));
    }
    let sched = SchedKind::parse(args.get_or("scheduler", "mios"))
        .ok_or("unknown scheduler (mios, mibs[:W], mix[:W])")?;
    let obj = objective(args.get_or("objective", "rt"))?;
    let kind = model_kind(args.get_or("model", "wmm"))?;
    let queue_capacity: usize = args.num_or("queue-cap", 64)?;
    if queue_capacity == 0 {
        return Err("--queue-cap must be positive".into());
    }
    let mut monitor = tracon_core::MonitorConfig::default();
    monitor.rebuild_every = args.num_or("rebuild-every", monitor.rebuild_every)?;
    let max_attempts: u32 = args.num_or("max-attempts", 5)?;
    if max_attempts == 0 {
        return Err("--max-attempts must be positive".into());
    }
    let replica_of = args.options.get("replica-of").cloned();
    if replica_of.is_some() && !args.options.contains_key("wal") {
        return Err(
            "--replica-of requires --wal DIR (the follower persists shipped frames)".into(),
        );
    }
    let repl_ttl_ms: u64 = args.num_or("repl-ttl-ms", 1_500)?;
    let repl_poll_ms: u64 = args.num_or("repl-poll-ms", 50)?;
    if repl_ttl_ms == 0 || repl_poll_ms == 0 {
        return Err("--repl-ttl-ms and --repl-poll-ms must be positive".into());
    }
    if repl_poll_ms >= repl_ttl_ms {
        return Err(format!(
            "--repl-poll-ms ({repl_poll_ms}) must be below --repl-ttl-ms ({repl_ttl_ms}) \
             or the follower can never renew the lease"
        ));
    }
    let cfg = ServeConfig {
        machines,
        slots_per_machine: slots,
        scheduler: sched,
        objective: obj,
        model_kind: kind,
        queue_capacity,
        batch_deadline_ms: args.num_or("batch-deadline-ms", 100)?,
        retry_after_ms: args.num_or("retry-after-ms", 50)?,
        lease_base_ms: args.num_or("lease-ms", 30_000)?,
        lease_per_predicted_s_ms: args.num_or("lease-per-s-ms", 2_000)?,
        max_attempts,
        backoff_base_ms: args.num_or("backoff-ms", 100)?,
        backoff_cap_ms: args.num_or("backoff-cap-ms", 5_000)?,
        wal_dir: args.options.get("wal").map(std::path::PathBuf::from),
        wal_snapshot_every: args.num_or("wal-snapshot-every", 4_096)?,
        monitor,
        shards,
        replica_of,
        repl_ttl_ms,
        repl_poll_ms,
    };
    let net = NetConfig {
        addr: format!("127.0.0.1:{}", args.num_or::<u16>("port", 0)?),
        http_addr: format!("127.0.0.1:{}", args.num_or::<u16>("http-port", 0)?),
        ..NetConfig::default()
    };
    let tb = serve_testbed(args)?;
    let handle = daemon::start(&tb, cfg, net).map_err(|e| format!("cannot start daemon: {e}"))?;
    // Announce the resolved ports eagerly — scripts and tests read them
    // before the daemon exits.
    println!(
        "tracond listening on {} (protocol) and {} (http)",
        handle.addr, handle.http_addr
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let metrics = std::sync::Arc::clone(handle.metrics());
    handle.join();
    let relaxed = std::sync::atomic::Ordering::Relaxed;
    Ok(format!(
        "tracond stopped: {} admitted, {} rejected, {} completed, {} requeued, \
         {} dead-lettered, {} rebuilds, {} swaps\n",
        metrics.admissions.load(relaxed),
        metrics.rejections.load(relaxed),
        metrics.completions.load(relaxed),
        metrics.requeues.load(relaxed),
        metrics.dead_letters.load(relaxed),
        metrics.rebuilds.load(relaxed),
        metrics.predictor_swaps.load(relaxed),
    ))
}

/// `tracon submit`
pub fn submit(args: &Args) -> Result<String, String> {
    use tracon_serve::{Client, Reply, Request};

    let addr = args.require("addr")?;
    let app = args
        .options
        .get("app")
        .cloned()
        .or_else(|| args.positionals.first().cloned())
        .ok_or("missing --app NAME (see `tracon apps`)")?;
    let count: usize = args.num_or("count", 1)?;
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut out = String::new();
    for _ in 0..count.max(1) {
        let reply = client
            .request(Request::Submit {
                app: app.clone(),
                demand: None,
            })
            .map_err(|e| format!("submit failed: {e}"))?;
        match reply {
            Reply::Ok { result, .. } => {
                let task = result.get("task").and_then(|v| v.as_u64()).unwrap_or(0);
                match result.get("state").and_then(|v| v.as_str()) {
                    Some("placed") => {
                        let machine = result.get("machine").and_then(|v| v.as_u64()).unwrap_or(0);
                        let slot = result.get("slot").and_then(|v| v.as_u64()).unwrap_or(0);
                        let rt = result
                            .get("predicted_runtime")
                            .and_then(|v| v.as_f64())
                            .unwrap_or(f64::NAN);
                        writeln!(
                            out,
                            "task {task}: {app} placed on machine {machine} slot {slot} \
                             (predicted runtime {rt:.1} s)"
                        )
                        .unwrap();
                    }
                    _ => {
                        let depth = result.get("depth").and_then(|v| v.as_u64()).unwrap_or(0);
                        writeln!(out, "task {task}: {app} queued (depth {depth})").unwrap();
                    }
                }
            }
            Reply::Error {
                kind,
                message,
                retry_after_ms,
                ..
            } => {
                let hint = retry_after_ms
                    .map(|ms| format!(" (retry after {ms} ms)"))
                    .unwrap_or_default();
                return Err(format!(
                    "daemon rejected submit ({}): {message}{hint}",
                    kind.as_str()
                ));
            }
        }
    }
    Ok(out)
}

/// `tracon drain`
pub fn drain(args: &Args) -> Result<String, String> {
    use tracon_serve::{Client, Reply, Request};

    let addr = args.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match client
        .request(Request::Drain)
        .map_err(|e| format!("drain failed: {e}"))?
    {
        Reply::Ok { result, .. } => {
            let queued = result.get("queued").and_then(|v| v.as_u64()).unwrap_or(0);
            let running = result.get("running").and_then(|v| v.as_u64()).unwrap_or(0);
            Ok(format!(
                "draining: {queued} queued, {running} running; daemon exits when both reach 0\n"
            ))
        }
        Reply::Error { kind, message, .. } => Err(format!(
            "daemon rejected drain ({}): {message}",
            kind.as_str()
        )),
    }
}

/// `tracon loadgen`
pub fn loadgen(args: &Args) -> Result<String, String> {
    use tracon_serve::loadgen::{run as run_loadgen, LoadMode, LoadgenConfig};

    let addr = args.require("addr")?;
    if args.flag("chaos") {
        return chaos(args, addr);
    }
    let mode = match args.get_or("mode", "open") {
        "open" => LoadMode::Open,
        "closed" => LoadMode::Closed,
        other => return Err(format!("unknown mode '{other}' (open, closed)")),
    };
    let quick = args.flag("quick");
    // Like --chaos, --addr accepts a comma-separated failover list: the
    // first entry is the primary, the rest are tried in order when a
    // not_leader redirect (or a dead leader) forces a reconnect.
    let mut addr_list: Vec<String> = addr
        .split(',')
        .filter(|a| !a.is_empty())
        .map(str::to_string)
        .collect();
    if addr_list.is_empty() {
        return Err("--addr needs at least one HOST:PORT".into());
    }
    let primary = addr_list.remove(0);
    let cfg = LoadgenConfig {
        addr: primary,
        addrs: addr_list,
        requests: args.num_or("requests", 100)?,
        lambda_per_min: args.num_or("lambda", 60.0)?,
        mix: mix(args.get_or("mix", "medium"))?,
        mode,
        concurrency: args.num_or("concurrency", 8)?,
        seed: args.num_or("seed", 0x10AD)?,
        // Quick mode compresses the arrival schedule and the synthetic
        // execution delays so a 500-request run finishes in seconds.
        arrival_scale: args.num_or("arrival-scale", if quick { 0.002 } else { 0.05 })?,
        task_ms_per_s: args.num_or("task-ms-per-s", if quick { 2.0 } else { 5.0 })?,
        max_task_ms: args.num_or("max-task-ms", if quick { 40 } else { 60 })?,
        poll_ms: args.num_or("poll-ms", if quick { 5 } else { 10 })?,
        idle_conns: args.num_or("idle-conns", 0)?,
    };
    if cfg.requests == 0 || cfg.lambda_per_min <= 0.0 {
        return Err("--requests and --lambda must be positive".into());
    }
    let report = run_loadgen(&cfg)?;
    if report.lost > 0 {
        return Err(format!(
            "{} admitted tasks were never completed:\n{}",
            report.lost,
            report.render()
        ));
    }
    Ok(report.render())
}

/// `tracon loadgen --chaos`
fn chaos(args: &Args, addr: &str) -> Result<String, String> {
    use tracon_serve::{run_chaos, ChaosConfig};

    let addrs: Vec<String> = addr
        .split(',')
        .filter(|a| !a.is_empty())
        .map(str::to_string)
        .collect();
    if addrs.is_empty() {
        return Err("--addr needs at least one HOST:PORT".into());
    }
    let defaults = ChaosConfig::default();
    let cfg = ChaosConfig {
        addrs,
        requests: args.num_or("requests", defaults.requests)?,
        seed: args.num_or("seed", defaults.seed)?,
        kill_every: args.num_or("kill-every", defaults.kill_every)?,
        garbage_every: args.num_or("garbage-every", defaults.garbage_every)?,
        partial_every: args.num_or("partial-every", defaults.partial_every)?,
        oversized_every: args.num_or("oversized-every", defaults.oversized_every)?,
        orphan_every: args.num_or("orphan-every", defaults.orphan_every)?,
        settle_timeout_ms: args.num_or("settle-timeout-ms", defaults.settle_timeout_ms)?,
        reconnect_timeout_ms: args.num_or("reconnect-timeout-ms", defaults.reconnect_timeout_ms)?,
        failpoints: args.get("failpoints").map(str::to_string),
    };
    if cfg.requests == 0 {
        return Err("--requests must be positive".into());
    }
    let report = run_chaos(&cfg)?;
    if !report.passed() {
        return Err(format!("chaos run failed:\n{}", report.render()));
    }
    Ok(report.render())
}

/// `tracon table1`
pub fn table1(_args: &Args) -> Result<String, String> {
    use tracon_dcsim::experiments::table1;
    let t = table1::run(HostConfig::testbed(), 1);
    let mut out = String::new();
    writeln!(out, "normalized App1 runtime under App2 interference:").unwrap();
    write!(out, "{:10}", "App1\\App2").unwrap();
    for c in t.columns {
        write!(out, " {c:>14}").unwrap();
    }
    writeln!(out).unwrap();
    for row in &t.rows {
        write!(out, "{:10}", row.app1).unwrap();
        for v in row.cells {
            write!(out, " {v:14.2}").unwrap();
        }
        writeln!(out).unwrap();
    }
    Ok(out)
}

/// `tracon apps`
pub fn apps(_args: &Args) -> Result<String, String> {
    let mut out = String::new();
    writeln!(out, "benchmark suite (Table 3 of the paper):").unwrap();
    for b in Benchmark::ALL {
        let m = b.model();
        writeln!(
            out,
            "  {:10} rank {}  nominal runtime {:>5.0} s  nominal IOPS {:>5.0}",
            b.name(),
            b.io_rank(),
            m.nominal_runtime(),
            m.nominal_iops()
        )
        .unwrap();
    }
    Ok(out)
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> Result<String, String> {
    // `schedule` and `experiment` consume positionals (task/experiment
    // names); `submit` accepts a bare app name. Everything else must
    // reject stragglers so typos surface.
    match args.command.as_deref() {
        Some("schedule") | Some("experiment") | Some("submit") => {}
        _ => args.reject_positionals()?,
    }
    match args.command.as_deref() {
        Some("profile") => profile(args),
        Some("inspect") => inspect(args),
        Some("predict") => predict(args),
        Some("schedule") => schedule(args),
        Some("simulate") => simulate(args),
        Some("experiment") => experiment(args),
        Some("table1") => table1(args),
        Some("apps") => apps(args),
        Some("serve") => serve(args),
        Some("submit") => submit(args),
        Some("loadgen") => loadgen(args),
        Some("drain") => drain(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn parse_str(s: &str) -> Args {
        parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&parse_str("help")).unwrap().contains("USAGE"));
        assert!(run(&parse_str("")).unwrap().contains("USAGE"));
        let err = run(&parse_str("frobnicate")).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn apps_lists_all_eight() {
        let out = apps(&parse_str("apps")).unwrap();
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "missing {}", b.name());
        }
    }

    #[test]
    fn parser_helpers_reject_garbage() {
        assert!(model_kind("nlm").is_ok());
        assert!(model_kind("resnet").is_err());
        assert!(scheduler_kind("mibs", 8).is_ok());
        assert!(scheduler_kind("sjf", 8).is_err());
        assert!(mix("heavy").is_ok());
        assert!(mix("spicy").is_err());
        assert!(objective("io").is_ok());
        assert!(objective("latency").is_err());
    }

    #[test]
    fn predict_requires_testbed() {
        let err = predict(&parse_str("predict --app dedup")).unwrap_err();
        assert!(err.contains("testbed"), "{err}");
    }

    #[test]
    fn simulate_validates_numbers() {
        let err =
            simulate(&parse_str("simulate --testbed /nonexistent --machines 64")).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn experiment_list_names_every_driver() {
        let out = experiment(&parse_str("experiment --list")).unwrap();
        for exp in tracon_dcsim::experiments::registry::REGISTRY {
            assert!(out.contains(exp.name()), "missing {}", exp.name());
        }
    }

    #[test]
    fn experiment_rejects_unknowns() {
        let err = experiment(&parse_str("experiment fig99")).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        let err = experiment(&parse_str("experiment fig9 --fidelity huge")).unwrap_err();
        assert!(err.contains("unknown fidelity"), "{err}");
        let err = experiment(&parse_str("experiment")).unwrap_err();
        assert!(err.contains("missing experiment name"), "{err}");
    }

    #[test]
    fn experiment_runs_a_testbed_free_driver() {
        let out = experiment(&parse_str("experiment ext_storage")).unwrap();
        assert!(out.contains("==== ext_storage"), "{out}");
        assert!(out.contains("SATA disk"), "{out}");
    }

    #[test]
    fn table1_runs() {
        let out = table1(&parse_str("table1")).unwrap();
        assert!(out.contains("SeqRead"));
        assert!(out.contains("Calc"));
    }

    #[test]
    fn stray_positionals_are_rejected_not_ignored() {
        let err = run(&parse_str("simulate extra --machines 4")).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
        assert!(err.contains("'extra'"), "{err}");
        // Commands that consume positionals still work through run().
        assert!(run(&parse_str("experiment --list")).is_ok());
    }

    #[test]
    fn service_commands_validate_before_touching_the_network() {
        let err = submit(&parse_str("submit --app dedup")).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = submit(&parse_str("submit --addr 127.0.0.1:1")).unwrap_err();
        assert!(err.contains("--app"), "{err}");
        let err = loadgen(&parse_str("loadgen")).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = drain(&parse_str("drain")).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = serve(&parse_str("serve --scheduler sjf")).unwrap_err();
        assert!(err.contains("unknown scheduler"), "{err}");
        let err = serve(&parse_str("serve --queue-cap 0")).unwrap_err();
        assert!(err.contains("queue-cap"), "{err}");
        let err = loadgen(&parse_str("loadgen --addr 127.0.0.1:1 --mode bursty")).unwrap_err();
        assert!(err.contains("unknown mode"), "{err}");
        let err = serve(&parse_str("serve --max-attempts 0")).unwrap_err();
        assert!(err.contains("max-attempts"), "{err}");
        let err = serve(&parse_str("serve --shards 0")).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = serve(&parse_str("serve --machines 4 --shards 5")).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = loadgen(&parse_str(
            "loadgen --chaos --addr 127.0.0.1:1 --requests 0",
        ))
        .unwrap_err();
        assert!(err.contains("--requests"), "{err}");
    }

    #[test]
    fn replica_flags_validate_before_touching_the_network() {
        let err = serve(&parse_str("serve --replica-of 127.0.0.1:1")).unwrap_err();
        assert!(err.contains("--replica-of requires --wal"), "{err}");
        let err = serve(&parse_str(
            "serve --replica-of 127.0.0.1:1 --wal /tmp/x --repl-ttl-ms 0",
        ))
        .unwrap_err();
        assert!(err.contains("must be positive"), "{err}");
        let err = serve(&parse_str(
            "serve --replica-of 127.0.0.1:1 --wal /tmp/x --repl-ttl-ms 100 --repl-poll-ms 100",
        ))
        .unwrap_err();
        assert!(err.contains("below --repl-ttl-ms"), "{err}");
        // An empty --addr list is rejected before any connect.
        let err = loadgen(&parse_str("loadgen --addr ,")).unwrap_err();
        assert!(err.contains("at least one HOST:PORT"), "{err}");
    }

    #[test]
    fn drain_reports_connection_failures_as_errors() {
        // Port 1 is never listening; the error must be a message, not a
        // panic or a silent success.
        let err = drain(&parse_str("drain --addr 127.0.0.1:1")).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn end_to_end_profile_inspect_predict_schedule() {
        // A tiny campaign written to a temp file, then consumed by the
        // other subcommands.
        let dir = std::env::temp_dir().join(format!("tracon-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tb.json");
        let path_s = path.to_str().unwrap().to_string();

        let out = profile(&parse_str(&format!(
            "profile --out {path_s} --points 6 --time-scale 0.05 --seed 1"
        )))
        .unwrap();
        assert!(out.contains("saved testbed snapshot"), "{out}");

        let out = inspect(&parse_str(&format!("inspect --testbed {path_s}"))).unwrap();
        assert!(out.contains("pair slowdowns"));
        assert!(out.contains("video"));

        let out = predict(&parse_str(&format!(
            "predict --testbed {path_s} --app dedup --neighbor video"
        )))
        .unwrap();
        assert!(out.contains("dedup next to video"), "{out}");

        let out = schedule(&parse_str(&format!(
            "schedule --testbed {path_s} --tasks video,email,dedup,web --machines 2"
        )))
        .unwrap();
        assert!(out.contains("placed 4 of 4"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
