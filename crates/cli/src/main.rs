//! `tracon` — the command-line interface to the TRACON reproduction:
//! profile a virtualized testbed, inspect the measured interference,
//! query the prediction models, schedule task batches, and run dynamic
//! data-center simulations. Run `tracon help` for usage.

mod args;
mod commands;

fn main() {
    let parsed = args::parse(std::env::args().skip(1));
    match commands::run(&parsed) {
        Ok(output) => {
            use std::io::Write as _;
            let mut stdout = std::io::stdout().lock();
            let result = stdout
                .write_all(output.as_bytes())
                .and_then(|()| stdout.flush());
            if let Err(e) = result {
                // `tracon ... | head` closes the pipe early; that is not a
                // failure of the command itself.
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    std::process::exit(0);
                }
                eprintln!("error: cannot write output: {e}");
                std::process::exit(1);
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
