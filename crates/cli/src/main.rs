//! `tracon` — the command-line interface to the TRACON reproduction:
//! profile a virtualized testbed, inspect the measured interference,
//! query the prediction models, schedule task batches, and run dynamic
//! data-center simulations. Run `tracon help` for usage.

mod args;
mod commands;

fn main() {
    let parsed = args::parse(std::env::args().skip(1));
    match commands::run(&parsed) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
