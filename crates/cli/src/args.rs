//! Minimal command-line argument parsing: `--key value` pairs and
//! `--flag` switches after a subcommand. No external dependencies.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus its options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument), if any.
    pub command: Option<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Positional arguments after the subcommand, in order. Subcommands
    /// that take none must reject a non-empty list rather than silently
    /// ignoring it (see `commands::run`).
    pub positionals: Vec<String>,
}

/// Parses an argument list (without the program name).
///
/// Grammar: the first bare word is the subcommand; `--key value` binds the
/// next word unless it also starts with `--`, in which case `--key` is a
/// flag. Later duplicates overwrite earlier ones. Remaining bare words are
/// kept as positionals for the subcommand to consume or reject.
pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Args {
    let mut args = Args::default();
    let mut iter = argv.into_iter().peekable();
    while let Some(a) = iter.next() {
        if let Some(key) = a.strip_prefix("--") {
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = iter.next().unwrap_or_default();
                    args.options.insert(key.to_string(), v);
                }
                _ => args.flags.push(key.to_string()),
            }
        } else if args.command.is_none() {
            args.command = Some(a);
        } else {
            args.positionals.push(a);
        }
    }
    args
}

impl Args {
    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Required string option.
    ///
    /// # Errors
    /// Returns a usage message when missing.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric option with a default.
    ///
    /// # Errors
    /// Returns a message when the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("option --{key}: cannot parse '{v}'")),
        }
    }

    /// Whether a bare flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Errors when trailing positionals were given to a subcommand that
    /// takes none, naming them so typos surface instead of vanishing.
    pub fn reject_positionals(&self) -> Result<(), String> {
        if self.positionals.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unexpected argument{} '{}' — this command takes no positional arguments",
                if self.positionals.len() == 1 { "" } else { "s" },
                self.positionals.join("' '")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Args {
        parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = parse_str("simulate --machines 64 --lambda 40.5 --quick --mix medium");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get_or("machines", "0"), "64");
        assert_eq!(a.num_or::<f64>("lambda", 0.0).unwrap(), 40.5);
        assert_eq!(a.get_or("mix", "light"), "medium");
        assert!(a.flag("quick"));
        assert!(!a.flag("nope"));
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse_str("profile --quick --verbose");
        assert!(a.flag("quick") && a.flag("verbose"));
        assert!(a.options.is_empty());
    }

    #[test]
    fn positional_args_collected() {
        let a = parse_str("schedule video dedup email");
        assert_eq!(a.command.as_deref(), Some("schedule"));
        assert_eq!(a.positionals, vec!["video", "dedup", "email"]);
        assert!(a.reject_positionals().is_err());
    }

    #[test]
    fn reject_positionals_names_the_stragglers() {
        let a = parse_str("apps extra junk");
        let err = a.reject_positionals().unwrap_err();
        assert!(err.contains("'extra' 'junk'"), "{err}");
        assert!(parse_str("apps").reject_positionals().is_ok());
    }

    #[test]
    fn require_and_defaults() {
        let a = parse_str("predict --app dedup");
        assert_eq!(a.require("app").unwrap(), "dedup");
        assert!(a.require("neighbor").is_err());
        assert_eq!(a.num_or::<usize>("machines", 16).unwrap(), 16);
        assert!(a.num_or::<usize>("app", 1).is_err());
    }

    #[test]
    fn empty_input() {
        let a = parse_str("");
        assert!(a.command.is_none());
    }
}
