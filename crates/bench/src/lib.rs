//! # tracon-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! TRACON paper. Each `src/bin/<experiment>.rs` binary builds the
//! full-fidelity testbed (profiling campaign + model training + pair
//! matrix), runs one experiment driver from `tracon_dcsim::experiments`,
//! and prints the same rows/series the paper reports:
//!
//! ```text
//! cargo run --release -p tracon-bench --bin table1
//! cargo run --release -p tracon-bench --bin fig3
//! ...
//! cargo run --release -p tracon-bench --bin all      # everything
//! ```
//!
//! Pass `--quick` to any binary for a reduced sweep (fewer repetitions
//! and smaller machine counts). The `benches/` directory holds criterion
//! microbenchmarks of the core algorithms (model training, prediction,
//! scheduling) exercised by those experiments.

use std::time::Instant;
use tracon_dcsim::experiments::ExperimentConfig;
use tracon_dcsim::Testbed;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Reduced sweep for quick runs.
    pub quick: bool,
}

/// Parses the (tiny) shared command line.
pub fn parse_args() -> Options {
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q");
    Options { quick }
}

/// The experiment configuration for the chosen mode.
pub fn config(opts: Options) -> ExperimentConfig {
    if opts.quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    }
}

/// Builds the testbed, reporting the build time.
pub fn build_testbed(cfg: &ExperimentConfig) -> Testbed {
    eprintln!(
        "building testbed: {} calibration workloads, time scale {} ...",
        cfg.testbed.calibration_points, cfg.testbed.time_scale
    );
    let t0 = Instant::now();
    let tb = Testbed::build(&cfg.testbed);
    eprintln!("testbed ready in {:.1?}", t0.elapsed());
    tb
}

/// Machine-count sweep for the scalability figures (the mode's
/// [`ExperimentConfig`] grid).
pub fn machine_counts(opts: Options) -> Vec<usize> {
    config(opts).machine_counts
}

/// λ sweep for the dynamic figures, tasks/minute (the mode's
/// [`ExperimentConfig`] grid).
pub fn lambdas(opts: Options) -> Vec<f64> {
    config(opts).lambdas
}

/// Times a closure and prints the elapsed wall clock to stderr.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    eprintln!("{label} finished in {:.1?}", t0.elapsed());
    out
}
