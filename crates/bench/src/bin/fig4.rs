//! Regenerates Fig 4: MIBS scheduling with WMM / LM / NLM models.
use tracon_dcsim::experiments::fig4;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let fig = tracon_bench::timed("fig4", || fig4::run(&tb, cfg.repetitions * 3, cfg.seed));
    fig.print();
    println!("\npaper shape: NLM best on both Speedup and IOBoost");
}
