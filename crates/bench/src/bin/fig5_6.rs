//! Regenerates Figs 5 and 6: NLM predicted extremes vs measured.
use tracon_dcsim::experiments::fig5_6;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let fig = tracon_bench::timed("fig5_6", || fig5_6::run(&tb));
    fig.print();
    println!("\npaper shape: predicted min runtime ~ measured min, never above avg;");
    println!("             predicted max IOPS close to measured max");
}
