//! Regenerates Fig 9: dynamic normalized throughput vs arrival rate.
use tracon_dcsim::experiments::fig9;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let fig = tracon_bench::timed("fig9", || {
        fig9::run(
            &tb,
            &cfg.lambdas,
            cfg.machines,
            cfg.sweep_repetitions,
            cfg.seed,
        )
    });
    fig.print();
    println!(
        "\npaper shape: ~1 at low lambda; MIX_8 >= MIBS_8 > MIOS as lambda grows; medium best"
    );
}
