//! Regenerates Fig 9: dynamic normalized throughput vs arrival rate.
use tracon_dcsim::experiments::fig9;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let lambdas = tracon_bench::lambdas(opts);
    let reps = if opts.quick { 2 } else { 3 };
    let fig = tracon_bench::timed("fig9", || {
        fig9::run(&tb, &lambdas, fig9::MACHINES, reps, cfg.seed)
    });
    fig.print();
    println!(
        "\npaper shape: ~1 at low lambda; MIX_8 >= MIBS_8 > MIOS as lambda grows; medium best"
    );
}
