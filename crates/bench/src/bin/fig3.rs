//! Regenerates Fig 3: model prediction errors (runtime and IOPS).
use tracon_dcsim::experiments::fig3;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let fig = tracon_bench::timed("fig3", || fig3::run(&tb));
    fig.print();
    println!("\npaper shape: NLM ~10%, LM/WMM >= 20%, NLM w/o Dom0 ~2x NLM");
}
