//! Regenerates Fig 8: static-workload speedups across cluster sizes.
use tracon_dcsim::experiments::fig8;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let machines = tracon_bench::machine_counts(opts);
    let fig = tracon_bench::timed("fig8", || {
        fig8::run(&tb, &machines, cfg.repetitions, cfg.seed)
    });
    fig.print();
    println!("\npaper shape: medium best (>40%), light ~30%, heavy limited");
}
