//! Extension: the full TRACON control loop — the monitor's realized
//! observations retrain the prediction models while the data center runs.
use tracon_dcsim::experiments::ext_adaptive;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = if opts.quick {
        ext_adaptive::ExtAdaptiveConfig::small()
    } else {
        ext_adaptive::ExtAdaptiveConfig::full()
    };
    let fig = tracon_bench::timed("ext_adaptive", || ext_adaptive::run(&cfg));
    fig.print();
}
