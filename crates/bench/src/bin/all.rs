//! Runs every registered experiment in sequence (the full reproduction),
//! driven by the experiment registry — adding a driver to
//! `tracon_dcsim::experiments::registry` is enough to include it here.
use tracon_dcsim::experiments::registry::{TestbedCache, REGISTRY};

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let cache = TestbedCache::new(&cfg);
    for (i, exp) in REGISTRY.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("==== {}: {} ====", exp.name(), exp.description());
        let report = tracon_bench::timed(exp.name(), || exp.run(&cfg, &cache));
        report.print();
    }
}
