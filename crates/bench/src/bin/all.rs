//! Runs every table/figure experiment in sequence (the full reproduction).
use tracon_dcsim::experiments::*;
use tracon_vmsim::HostConfig;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);

    println!("==== Table 1 ====");
    table1::run(HostConfig::testbed(), 1).print();

    let tb = tracon_bench::build_testbed(&cfg);

    println!("\n==== Fig 3 ====");
    fig3::run(&tb).print();

    println!("\n==== Fig 4 ====");
    fig4::run(&tb, cfg.repetitions * 3, cfg.seed).print();

    println!("\n==== Figs 5 & 6 ====");
    fig5_6::run(&tb).print();

    println!("\n==== Fig 7 ====");
    let f7cfg = if opts.quick {
        fig7::Fig7Config {
            initial_points: 200,
            stream_points: 200,
            ..fig7::Fig7Config::full()
        }
    } else {
        fig7::Fig7Config::full()
    };
    fig7::run(&f7cfg).print();

    let machines = tracon_bench::machine_counts(opts);
    let lambdas = tracon_bench::lambdas(opts);
    let reps = if opts.quick { 2 } else { 3 };

    println!("\n==== Fig 8 ====");
    fig8::run(&tb, &machines, cfg.repetitions, cfg.seed).print();

    println!("\n==== Fig 9 ====");
    fig9::run(&tb, &lambdas, fig9::MACHINES, reps, cfg.seed).print();

    println!("\n==== Fig 10 ====");
    fig10::run(&tb, &lambdas, fig9::MACHINES, reps, cfg.seed).print();

    println!("\n==== Fig 11 ====");
    fig11::run(&tb, &machines, fig11::LAMBDA, reps, cfg.seed).print();

    println!("\n==== Fig 12 ====");
    fig12::run(&tb, &machines, fig11::LAMBDA, reps, cfg.seed).print();

    let ext_scale = if opts.quick { 0.1 } else { 0.25 };
    println!("\n==== Extension: storage devices ====");
    ext_storage::run(ext_scale, 7).print();

    println!("\n==== Extension: consolidation density ====");
    ext_density::run(ext_scale, 7).print();

    println!("\n==== Extension: scheduler ablation ====");
    ext_ablation::run(&tb, cfg.repetitions * 3, cfg.seed).print();

    println!("\n==== Extension: adaptation in the loop ====");
    let adaptive_cfg = if opts.quick {
        ext_adaptive::ExtAdaptiveConfig::small()
    } else {
        ext_adaptive::ExtAdaptiveConfig::full()
    };
    ext_adaptive::run(&adaptive_cfg).print();
}
